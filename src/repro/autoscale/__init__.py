"""Autoscaling: a sim-clock control loop over the fleet's own metrics."""

from repro.autoscale.controller import (
    CONSUMERS,
    DOWN,
    HOLD,
    UP,
    WORKERS,
    Autoscaler,
    AutoscalerConfig,
    ControllerInputs,
    ScaleDecision,
)

__all__ = [
    "CONSUMERS",
    "DOWN",
    "HOLD",
    "UP",
    "WORKERS",
    "Autoscaler",
    "AutoscalerConfig",
    "ControllerInputs",
    "ScaleDecision",
]
