"""The autoscaling control loop.

m.Site's adaptation cost is bursty — cold renders are orders of
magnitude dearer than warm fast-path hits — so a fleet sized for the
steady state rejects under a flash crowd and a fleet sized for the
crowd idles the rest of the day.  The :class:`Autoscaler` closes that
loop: on every tick it samples the fleet's own metrics registry (queue
depth, render-farm backlog and lane depths, breaker states, the
degraded-serve rate, and request p99), compares them against a target
band with **hysteresis** (scale up above the high water mark, down only
below the much lower low water mark), and moves the fleet one step at a
time within hard ``[min, max]`` bounds.

Discipline over reflexes:

* **Cooldowns** — after any action the controller holds still: a scale
  *up* needs ``cooldown_up_s`` since the last action, a scale *down*
  needs the (longer) ``cooldown_down_s``.  The asymmetry is deliberate:
  adding capacity under pressure should be fast, removing it should
  wait out the burst.  The property suite pins that an up and a down
  can never land within one cooldown window of each other.
* **Graceful drain** — scaling workers down never drops a request:
  the victim stops admission, the router remap spills its shards to
  the survivors (rendezvous hashing moves *only* its keys), in-flight
  work finishes, and only then does the worker detach.
* **Determinism** — all state lives in the controller and its inputs.
  The same config and the same metric trace produce the identical
  decision sequence, which is what makes the controller testable on
  the sim clock and the decision log trustworthy in production.

Every action is appended to the fleet's :class:`OpsEventLog
<repro.ops.OpsEventLog>` as a ``scale_decision`` event, so operators
(and the chaos suites) read the scaling history from ``/ops/events``
instead of inferring it from gauge wiggles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.observability.metrics import MetricsRegistry
from repro.ops import SCALE_DECISION, OpsEventLog

#: Decision directions.
UP = "up"
DOWN = "down"
HOLD = "hold"

#: Scaling targets.
WORKERS = "workers"
CONSUMERS = "consumers"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Target bands, bounds, and cadence for one control loop."""

    min_workers: int = 1
    max_workers: int = 4
    min_consumers: int = 1
    max_consumers: int = 8
    #: Minimum spacing between ticks (maybe_tick coalesces callers).
    interval_s: float = 0.25
    #: Queued requests per worker above which the fleet scales up, and
    #: below which (queue_low) it becomes a scale-down candidate.  The
    #: gap between the two is the hysteresis band.
    queue_high: float = 4.0
    queue_low: float = 0.5
    #: Render-farm backlog per consumer: same band shape.
    backlog_high: float = 4.0
    backlog_low: float = 0.5
    #: Request p99 budget; 0 disables the signal.
    p99_budget_s: float = 0.0
    #: Fraction of recent requests served degraded above which the
    #: fleet scales up.
    degraded_high: float = 0.25
    #: Fraction of workers whose render breaker is open.
    breaker_high: float = 0.5
    cooldown_up_s: float = 0.5
    cooldown_down_s: float = 3.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.min_consumers < 0:
            raise ValueError("min_consumers must be >= 0")
        if self.max_consumers < self.min_consumers:
            raise ValueError("max_consumers must be >= min_consumers")
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must be <= queue_high")
        if self.backlog_low > self.backlog_high:
            raise ValueError("backlog_low must be <= backlog_high")
        if self.cooldown_up_s < 0 or self.cooldown_down_s < 0:
            raise ValueError("cooldowns must be non-negative")


@dataclass(frozen=True)
class ControllerInputs:
    """One sample of everything the controller reads."""

    workers: int
    queue_depth: int
    consumers: int = 0
    farm_backlog: int = 0
    breakers_open: int = 0
    degraded_rate: float = 0.0
    p99_s: float = 0.0

    @property
    def queue_per_worker(self) -> float:
        return self.queue_depth / self.workers if self.workers else 0.0

    @property
    def backlog_per_consumer(self) -> float:
        if self.consumers <= 0:
            return float(self.farm_backlog)
        return self.farm_backlog / self.consumers

    @property
    def breaker_fraction(self) -> float:
        return self.breakers_open / self.workers if self.workers else 0.0


@dataclass(frozen=True)
class ScaleDecision:
    """One controller verdict (only non-hold ones are applied/logged)."""

    action: str  # up | down | hold
    target: str  # workers | consumers | ""
    reason: str
    at: float
    inputs: ControllerInputs


class Autoscaler:
    """Scale a :class:`ClusterDeployment` (and its render farm) to load.

    ``sampler`` is injectable — the property suite drives :meth:`tick`
    from synthetic :class:`ControllerInputs` traces without any fleet
    behind it (pass ``cluster=None``); the real deployment uses the
    default sampler over the fleet's registries.
    """

    def __init__(
        self,
        cluster: Optional[Any] = None,
        config: Optional[AutoscalerConfig] = None,
        clock: Optional[Any] = None,
        ops: Optional[OpsEventLog] = None,
        sampler: Optional[Callable[[], ControllerInputs]] = None,
    ) -> None:
        if cluster is None and sampler is None:
            raise ValueError("need a cluster or an injected sampler")
        self.cluster = cluster
        self.farm = cluster.renderfarm if cluster is not None else None
        self.config = config or AutoscalerConfig()
        self.clock = clock
        if ops is not None:
            self.ops = ops
        elif cluster is not None:
            self.ops = cluster.ops
        else:
            self.ops = OpsEventLog(clock=clock)
        self._sampler = sampler or self._sample_cluster
        self._last_tick_at: Optional[float] = None
        self._last_action_at: Optional[float] = None
        self._prev_degraded = 0.0
        self._prev_requests = 0.0
        #: Applied (non-hold) decisions, in order.
        self.decisions: list[ScaleDecision] = []

    # -- time ------------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else time.monotonic()

    # -- sampling --------------------------------------------------------

    @staticmethod
    def _sum_counter(registry: MetricsRegistry, name: str) -> float:
        total = 0.0
        for family in registry.collect():
            if family.name == name:
                for child in family.sorted_children():
                    total += child.value
        return total

    def _sample_cluster(self) -> ControllerInputs:
        cluster = self.cluster
        workers = cluster.workers
        queue_depth = sum(w.executor.queue_depth for w in workers)
        breakers_open = sum(1 for w in workers if w.render_breaker_open)
        # Degraded-serve rate over the window since the last sample:
        # both totals are cumulative, so the deltas give the recent mix.
        degraded = sum(
            self._sum_counter(w.registry, "msite_degraded_serves_total")
            for w in workers
        )
        requests = self._sum_counter(
            cluster.registry, "msite_cluster_requests_total"
        )
        degraded_delta = degraded - self._prev_degraded
        requests_delta = requests - self._prev_requests
        self._prev_degraded = degraded
        self._prev_requests = requests
        degraded_rate = (
            degraded_delta / requests_delta if requests_delta > 0 else 0.0
        )
        p99_s = 0.0
        latency = cluster.registry.get("msite_cluster_request_seconds")
        if latency is not None and latency.count:
            p99_s = latency.quantile(0.99)
        consumers = 0
        farm_backlog = 0
        if self.farm is not None:
            consumers = self.farm.consumers_alive
            farm_backlog = self.farm.queue.depth
        return ControllerInputs(
            workers=cluster.fleet_size,
            queue_depth=queue_depth,
            consumers=consumers,
            farm_backlog=farm_backlog,
            breakers_open=breakers_open,
            degraded_rate=degraded_rate,
            p99_s=p99_s,
        )

    # -- the decision function (pure in inputs + controller state) -------

    def _cooldown_ok(self, direction: str, now: float) -> bool:
        if self._last_action_at is None:
            return True
        cooldown = (
            self.config.cooldown_up_s
            if direction == UP
            else self.config.cooldown_down_s
        )
        return now - self._last_action_at >= cooldown

    def decide(
        self, inputs: ControllerInputs, now: float
    ) -> ScaleDecision:
        """Map one sample to one decision.  Deterministic: the same
        inputs against the same controller state always produce the
        same verdict, so a replayed metric trace replays the exact
        decision sequence."""
        cfg = self.config

        up_reasons = []
        if inputs.queue_per_worker >= cfg.queue_high:
            up_reasons.append(
                f"queue {inputs.queue_per_worker:.1f}/worker"
            )
        if cfg.p99_budget_s and inputs.p99_s > cfg.p99_budget_s:
            up_reasons.append(f"p99 {inputs.p99_s * 1000:.0f}ms")
        if inputs.degraded_rate >= cfg.degraded_high:
            up_reasons.append(f"degraded {inputs.degraded_rate:.0%}")
        if inputs.workers and inputs.breaker_fraction >= cfg.breaker_high:
            up_reasons.append(
                f"breakers open on {inputs.breakers_open} workers"
            )
        farm_pressure = (
            self._farm_enabled(inputs)
            and inputs.backlog_per_consumer >= cfg.backlog_high
        )

        if up_reasons and self._cooldown_ok(UP, now):
            if inputs.workers < cfg.max_workers:
                return ScaleDecision(
                    UP, WORKERS, "; ".join(up_reasons), now, inputs
                )
        if farm_pressure and self._cooldown_ok(UP, now):
            if inputs.consumers < cfg.max_consumers:
                return ScaleDecision(
                    UP,
                    CONSUMERS,
                    f"farm backlog {inputs.backlog_per_consumer:.1f}"
                    "/consumer",
                    now,
                    inputs,
                )

        calm = (
            not up_reasons
            and inputs.queue_per_worker <= cfg.queue_low
        )
        if calm and self._cooldown_ok(DOWN, now):
            if inputs.workers > cfg.min_workers:
                return ScaleDecision(
                    DOWN,
                    WORKERS,
                    f"queue {inputs.queue_per_worker:.1f}/worker below "
                    f"{cfg.queue_low}",
                    now,
                    inputs,
                )
            farm_calm = (
                self._farm_enabled(inputs)
                and inputs.backlog_per_consumer <= cfg.backlog_low
                and inputs.consumers > cfg.min_consumers
            )
            if farm_calm:
                return ScaleDecision(
                    DOWN,
                    CONSUMERS,
                    f"farm backlog {inputs.backlog_per_consumer:.1f}"
                    f"/consumer below {cfg.backlog_low}",
                    now,
                    inputs,
                )
        return ScaleDecision(HOLD, "", "within band", now, inputs)

    def _farm_enabled(self, inputs: ControllerInputs) -> bool:
        return self.farm is not None or inputs.consumers > 0

    # -- actuation -------------------------------------------------------

    def _apply(self, decision: ScaleDecision) -> None:
        if self.cluster is None:
            return  # decide-only mode (property tests)
        if decision.target == WORKERS:
            if decision.action == UP:
                self.cluster.add_worker()
            else:
                # Drain the newest worker: LIFO keeps the long-lived
                # shard owners (and their warm memos) stable.
                victim = max(
                    self.cluster.router.worker_ids,
                    key=lambda wid: (len(wid), wid),
                )
                self.cluster.drain_worker(victim)
        elif decision.target == CONSUMERS and self.farm is not None:
            if decision.action == UP:
                self.farm.add_consumer()
            else:
                self.farm.retire_consumer()

    # -- the loop --------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> ScaleDecision:
        """Sample, decide, apply, log.  Returns the decision (possibly
        a hold)."""
        at = self._now() if now is None else now
        self._last_tick_at = at
        inputs = self._sampler()
        decision = self.decide(inputs, at)
        if decision.action != HOLD:
            self._apply(decision)
            self._last_action_at = at
            self.decisions.append(decision)
            self.ops.emit(
                SCALE_DECISION,
                action=decision.action,
                target=decision.target,
                reason=decision.reason,
                workers=inputs.workers,
                queue_depth=inputs.queue_depth,
                consumers=inputs.consumers,
                farm_backlog=inputs.farm_backlog,
                degraded_rate=round(inputs.degraded_rate, 4),
                p99_ms=round(inputs.p99_s * 1000, 3),
            )
        return decision

    def maybe_tick(self, now: Optional[float] = None):
        """Tick only if ``interval_s`` has passed since the last tick.

        The workload pacing loop calls this per request batch; the
        interval turns that into a steady control cadence.
        """
        at = self._now() if now is None else now
        if (
            self._last_tick_at is not None
            and at - self._last_tick_at < self.config.interval_s
        ):
            return None
        return self.tick(now=at)

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        return {
            "decisions": len(self.decisions),
            "last_tick_at": self._last_tick_at,
            "last_action_at": self._last_action_at,
            "config": {
                "min_workers": self.config.min_workers,
                "max_workers": self.config.max_workers,
                "min_consumers": self.config.min_consumers,
                "max_consumers": self.config.max_consumers,
            },
        }
