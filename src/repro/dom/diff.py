"""Stable-identity DOM diffing: change-sets between two parsed trees.

The delta fast path (``repro.core.delta``) and the proxy's session
deltas both need the same primitive: given the tree a client (or the
bundle cache) already holds and the tree we just produced, compute a
*change-set* that is small when the trees are close and that can be
applied to the old tree to reproduce the new one exactly.

Children are aligned by **stable identity keys** rather than raw
position, so an inserted sibling does not cascade into "everything
after it changed":

* an element with an ``id`` attribute is keyed ``(tag, #id)`` — ids are
  how specs name objects, so they are the strongest identity we have;
* an element carrying the ``data-msite-key`` attribute (assigned by
  identify-time annotations) is keyed by that value;
* any other element falls back to ``(tag, class, ordinal)`` — its
  position among same-shaped siblings;
* text, comment, and doctype nodes are keyed by their ordinal among
  nodes of the same kind, so an edited text run pairs with its old self
  and diffs to a single data patch.

Aligned pairs recurse; unmatched children become remove/insert
operations whose payloads are *structural* node encodings (not
serialized HTML), so applying a change-set never round-trips through
the parser and is exact by construction.  The whole change-set
round-trips through JSON — that JSON is the patch manifest the proxy
ships to returning sessions.

The invariant the property suite enforces:

    apply(old, changeset(old, new));  serialize(old) == serialize(new)

Per-parent operation lists apply in three phases — data/attr patches on
matched pairs (old indices), then removals in descending old order,
then insertions in ascending new order.  ``difflib.SequenceMatcher``
opcodes are monotonic in both sequences, so the surviving matched
children already sit in new-relative order and index arithmetic stays
valid throughout.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Optional, Union

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Comment, Doctype, Node, Text

Root = Union[Document, Element]

#: Elements whose removal or insertion means the page was rebuilt, not
#: edited — callers should fall back to a full response.
_STRUCTURAL_TAGS = frozenset({"html", "head", "body"})

#: Attribute an annotator may assign to give an element an explicit
#: identity across renders (the "identify-assigned key" tier).
IDENTITY_ATTRIBUTE = "data-msite-key"


# ---------------------------------------------------------------------------
# identity keys


def child_keys(children: list[Node]) -> list[tuple]:
    """Stable identity keys for one sibling list, in document order."""
    keys: list[tuple] = []
    ordinals: dict[tuple, int] = {}

    def _next(bucket: tuple) -> int:
        ordinal = ordinals.get(bucket, 0)
        ordinals[bucket] = ordinal + 1
        return ordinal

    for child in children:
        if isinstance(child, Element):
            element_id = child.attributes.get("id")
            if element_id is not None:
                keys.append(("e", child.tag, "#", element_id))
                continue
            assigned = child.attributes.get(IDENTITY_ATTRIBUTE)
            if assigned is not None:
                keys.append(("e", child.tag, "@", assigned))
                continue
            shape = (child.tag, child.attributes.get("class", ""))
            keys.append(("e", *shape, _next(("e", *shape))))
        elif isinstance(child, Text):
            keys.append(("t", _next(("t",))))
        elif isinstance(child, Comment):
            keys.append(("c", _next(("c",))))
        elif isinstance(child, Doctype):
            keys.append(("d", child.name))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot key {child!r}")
    return keys


# ---------------------------------------------------------------------------
# structural node payloads


def encode_node(node: Node) -> dict:
    """A JSON-safe structural encoding of one subtree."""
    if isinstance(node, Element):
        return {
            "k": "e",
            "tag": node.tag,
            "attrs": [[name, value] for name, value in node.attributes.items()],
            "ch": [encode_node(child) for child in node.children],
        }
    if isinstance(node, Text):
        return {"k": "t", "data": node.data}
    if isinstance(node, Comment):
        return {"k": "c", "data": node.data}
    if isinstance(node, Doctype):
        return {"k": "d", "name": node.name}
    raise TypeError(f"cannot encode {node!r}")


def decode_node(payload: dict) -> Node:
    """Rebuild a detached subtree from :func:`encode_node` output."""
    kind = payload.get("k")
    if kind == "e":
        element = Element(
            payload["tag"], dict(payload.get("attrs") or [])
        )
        # Attribute order matters to the serializer; dict() over the
        # pair list preserves it (insertion order).
        for child in payload.get("ch") or []:
            element.append(decode_node(child))
        return element
    if kind == "t":
        return Text(payload["data"])
    if kind == "c":
        return Comment(payload["data"])
    if kind == "d":
        return Doctype(payload["name"])
    raise ValueError(f"unknown node payload kind {kind!r}")


def subtree_size(node: Node) -> int:
    """Node count of a subtree (the change-magnitude unit)."""
    if isinstance(node, Element):
        return 1 + sum(subtree_size(child) for child in node.children)
    return 1


# ---------------------------------------------------------------------------
# change-sets


@dataclass
class ChangeStats:
    """Magnitude accounting for one change-set."""

    old_nodes: int = 0
    new_nodes: int = 0
    removed_nodes: int = 0
    inserted_nodes: int = 0
    patched_nodes: int = 0
    #: An ``html``/``head``/``body`` element was removed or inserted —
    #: the page was rebuilt, not edited.
    structural: bool = False

    @property
    def touched_nodes(self) -> int:
        return self.removed_nodes + self.inserted_nodes + self.patched_nodes

    @property
    def changed_fraction(self) -> float:
        basis = max(self.old_nodes, self.new_nodes, 1)
        return self.touched_nodes / basis

    def to_dict(self) -> dict:
        return {
            "old_nodes": self.old_nodes,
            "new_nodes": self.new_nodes,
            "removed_nodes": self.removed_nodes,
            "inserted_nodes": self.inserted_nodes,
            "patched_nodes": self.patched_nodes,
            "structural": self.structural,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChangeStats":
        return cls(
            old_nodes=int(payload.get("old_nodes", 0)),
            new_nodes=int(payload.get("new_nodes", 0)),
            removed_nodes=int(payload.get("removed_nodes", 0)),
            inserted_nodes=int(payload.get("inserted_nodes", 0)),
            patched_nodes=int(payload.get("patched_nodes", 0)),
            structural=bool(payload.get("structural", False)),
        )


MANIFEST_VERSION = 1


@dataclass
class ChangeSet:
    """A recursive patch taking the old tree to the new tree."""

    ops: dict = field(default_factory=dict)
    stats: ChangeStats = field(default_factory=ChangeStats)

    @property
    def is_empty(self) -> bool:
        return not self.ops

    def upheaval(self, fraction: float = 0.5) -> bool:
        """Did the page change too much to be worth patching?"""
        return (
            self.stats.structural
            or self.stats.changed_fraction > fraction
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": MANIFEST_VERSION,
                "ops": self.ops,
                "stats": self.stats.to_dict(),
            }
        )

    @classmethod
    def from_json(cls, raw: str) -> Optional["ChangeSet"]:
        try:
            payload = json.loads(raw)
        except (ValueError, TypeError):
            return None
        if payload.get("version") != MANIFEST_VERSION:
            return None
        return cls(
            ops=payload.get("ops") or {},
            stats=ChangeStats.from_dict(payload.get("stats") or {}),
        )


def changeset(old: Root, new: Root) -> ChangeSet:
    """Diff two trees of the same kind into an applicable change-set."""
    if type(old) is not type(new):
        raise TypeError(
            f"cannot diff {type(old).__name__} against {type(new).__name__}"
        )
    stats = ChangeStats(
        old_nodes=_tree_size(old), new_nodes=_tree_size(new)
    )
    ops = _diff_node(old, new, stats)
    return ChangeSet(ops=ops, stats=stats)


def _tree_size(root: Root) -> int:
    if isinstance(root, Document):
        return sum(subtree_size(child) for child in root.children)
    return subtree_size(root)


def _diff_node(old: Node, new: Node, stats: ChangeStats) -> dict:
    """The patch dict for one matched pair; ``{}`` when identical."""
    patch: dict = {}
    if isinstance(old, Element) and isinstance(new, Element):
        if old.tag != new.tag:
            patch["tag"] = new.tag
        old_attrs = list(old.attributes.items())
        new_attrs = list(new.attributes.items())
        if old_attrs != new_attrs:
            patch["attrs"] = [[name, value] for name, value in new_attrs]
        child_ops = _diff_children(old.children, new.children, stats)
        if child_ops:
            patch["ch"] = child_ops
    elif isinstance(old, Document) and isinstance(new, Document):
        child_ops = _diff_children(old.children, new.children, stats)
        if child_ops:
            patch["ch"] = child_ops
    elif isinstance(old, Text) and isinstance(new, Text):
        if old.data != new.data:
            patch["data"] = new.data
    elif isinstance(old, Comment) and isinstance(new, Comment):
        if old.data != new.data:
            patch["data"] = new.data
    elif isinstance(old, Doctype) and isinstance(new, Doctype):
        if old.name != new.name:
            patch["name"] = new.name
    else:  # pragma: no cover - pairs are kind-checked before recursion
        raise TypeError(f"cannot pair {old!r} with {new!r}")
    if patch and not (len(patch) == 1 and "ch" in patch):
        stats.patched_nodes += 1
    return patch


def _pairable(old: Node, new: Node) -> bool:
    """May a replace-block pair be patched rather than swap out?"""
    if isinstance(old, Element) and isinstance(new, Element):
        # Same tag: patch attributes and recurse.  Different tags are
        # different objects; swapping keeps intent (and stats) honest.
        return old.tag == new.tag
    return type(old) is type(new)


def _record_removed(node: Node, stats: ChangeStats) -> None:
    stats.removed_nodes += subtree_size(node)
    if isinstance(node, Element) and node.tag in _STRUCTURAL_TAGS:
        stats.structural = True


def _record_inserted(node: Node, stats: ChangeStats) -> None:
    stats.inserted_nodes += subtree_size(node)
    if isinstance(node, Element) and node.tag in _STRUCTURAL_TAGS:
        stats.structural = True


def _diff_children(
    old_children: list[Node],
    new_children: list[Node],
    stats: ChangeStats,
) -> list[dict]:
    old_keys = child_keys(old_children)
    new_keys = child_keys(new_children)
    matcher = SequenceMatcher(
        a=old_keys, b=new_keys, autojunk=False
    )
    ops: list[dict] = []

    def _remove(index: int) -> None:
        _record_removed(old_children[index], stats)
        ops.append({"op": "remove", "at": index})

    def _insert(index: int) -> None:
        _record_inserted(new_children[index], stats)
        ops.append(
            {
                "op": "insert",
                "at": index,
                "node": encode_node(new_children[index]),
            }
        )

    def _pair(old_index: int, new_index: int) -> None:
        old_child = old_children[old_index]
        new_child = new_children[new_index]
        if not _pairable(old_child, new_child):
            _remove(old_index)
            _insert(new_index)
            return
        patch = _diff_node(old_child, new_child, stats)
        if patch:
            ops.append({"op": "patch", "at": old_index, "p": patch})

    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            for offset in range(i2 - i1):
                _pair(i1 + offset, j1 + offset)
        elif tag == "delete":
            for index in range(i1, i2):
                _remove(index)
        elif tag == "insert":
            for index in range(j1, j2):
                _insert(index)
        else:  # replace
            paired = min(i2 - i1, j2 - j1)
            for offset in range(paired):
                _pair(i1 + offset, j1 + offset)
            for index in range(i1 + paired, i2):
                _remove(index)
            for index in range(j1 + paired, j2):
                _insert(index)
    return ops


# ---------------------------------------------------------------------------
# application


def apply(old: Root, cs: ChangeSet) -> Root:
    """Mutate ``old`` in place so it serializes identically to ``new``."""
    _apply_patch(old, cs.ops)
    return old


def _apply_patch(node: Node, patch: dict) -> None:
    if not patch:
        return
    if "tag" in patch:
        node.tag = patch["tag"]  # type: ignore[attr-defined]
    if "attrs" in patch:
        attrs = node.attributes  # type: ignore[attr-defined]
        attrs.clear()
        attrs.update({name: value for name, value in patch["attrs"]})
    if "data" in patch:
        node.data = patch["data"]  # type: ignore[attr-defined]
    if "name" in patch:
        node.name = patch["name"]  # type: ignore[attr-defined]
    if "ch" in patch:
        _apply_child_ops(node, patch["ch"])


def _append_child(parent: Node, child: Node, index: int) -> None:
    if isinstance(parent, Element):
        parent.insert_child(index, child)
    elif isinstance(parent, Document):
        parent.children.insert(index, child)
        child.parent = parent
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot insert into {parent!r}")


def _apply_child_ops(parent: Node, ops: list[dict]) -> None:
    children = parent.children
    # Phase 1: data/attr patches address the original old indices.
    for op in ops:
        if op["op"] == "patch":
            _apply_patch(children[op["at"]], op["p"])
    # Phase 2: removals, deepest index first so shallower stay valid.
    removals = sorted(
        (op["at"] for op in ops if op["op"] == "remove"), reverse=True
    )
    for index in removals:
        child = children[index]
        child.parent = None
        del children[index]
    # Phase 3: insertions at ascending new-tree indices.  The matched
    # survivors already sit in new-relative order (SequenceMatcher
    # opcodes are monotonic), so each insert lands exactly where the
    # new tree has it.
    inserts = sorted(
        (op for op in ops if op["op"] == "insert"),
        key=lambda op: op["at"],
    )
    for op in inserts:
        _append_child(parent, decode_node(op["node"]), op["at"])
