"""The document node: root of a parsed page."""

from __future__ import annotations

from typing import Optional

from repro.dom.element import Element
from repro.dom.node import Doctype, Node


class Document(Node):
    """Root node holding the doctype and the ``<html>`` element."""

    __slots__ = ("_children",)

    def __init__(self) -> None:
        super().__init__()
        self._children: list[Node] = []

    @property
    def node_name(self) -> str:
        return "#document"

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, child: Node) -> Node:
        child.detach()
        self._children.append(child)
        child.parent = self
        return child

    # -- well-known children -----------------------------------------------

    @property
    def doctype(self) -> Optional[Doctype]:
        for child in self._children:
            if isinstance(child, Doctype):
                return child
        return None

    @property
    def document_element(self) -> Optional[Element]:
        """The ``<html>`` element (first element child)."""
        for child in self._children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def head(self) -> Optional[Element]:
        html = self.document_element
        if html is None:
            return None
        for child in html.child_elements():
            if child.tag == "head":
                return child
        return None

    @property
    def body(self) -> Optional[Element]:
        html = self.document_element
        if html is None:
            return None
        for child in html.child_elements():
            if child.tag == "body":
                return child
        return None

    @property
    def title(self) -> str:
        head = self.head
        if head is None:
            return ""
        title = head.find(lambda el: el.tag == "title")
        return title.text_content.strip() if title is not None else ""

    # -- lookup helpers ------------------------------------------------------

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        html = self.document_element
        return html.get_element_by_id(element_id) if html is not None else None

    def get_elements_by_tag(self, tag: str) -> list[Element]:
        html = self.document_element
        if html is None:
            return []
        tag = tag.lower()
        result = [html] if html.tag == tag else []
        result.extend(html.get_elements_by_tag(tag))
        return result

    def get_elements_by_class(self, class_name: str) -> list[Element]:
        return [
            element
            for element in self.all_elements()
            if element.has_class(class_name)
        ]

    def all_elements(self) -> list[Element]:
        """Every element in the document, document order."""
        html = self.document_element
        if html is None:
            return []
        return [html, *html.descendant_elements()]

    def clone(self) -> "Document":
        copy = Document()
        for child in self._children:
            copy.append(child.clone())
        return copy

    def __repr__(self) -> str:
        return f"Document(title={self.title!r})"


def new_document(title: str = "", doctype: str = "html") -> Document:
    """Build a minimal empty document with html/head/title/body scaffolding."""
    from repro.dom.node import Text

    document = Document()
    document.append(Doctype(doctype))
    html = Element("html")
    head = Element("head")
    title_el = Element("title")
    title_el.append(Text(title))
    head.append(title_el)
    body = Element("body")
    html.append(head)
    html.append(body)
    document.append(html)
    return document
