"""XPath subset engine for object identification.

The paper supports DOM-based object identification using XPath (§3.2), the
same mechanism client-side customization tools rely on.  This engine covers
the location-path subset those tools emit:

* absolute (``/html/body/div``) and relative paths,
* the descendant axis ``//``,
* name tests, ``*``, ``.`` and ``..``,
* positional predicates ``[3]`` (1-based, per step),
* attribute predicates ``[@id='x']``, ``[@checked]``,
* top-level unions ``a | b``.

Evaluation returns elements in document order without duplicates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.dom.document import Document
from repro.dom.element import Element
from repro.errors import ParseError

_STEP_RE = re.compile(
    r"^(?P<axis>\.\.|\.|\*|[a-zA-Z][-_a-zA-Z0-9]*)(?P<predicates>(\[[^\]]*\])*)$"
)
_PREDICATE_RE = re.compile(r"\[([^\]]*)\]")
_ATTR_PRED_RE = re.compile(
    r"^@(?P<name>[-_a-zA-Z][-_a-zA-Z0-9]*)"
    r"(?:\s*=\s*(?P<value>\"[^\"]*\"|'[^']*'))?$"
)


@dataclass
class _Step:
    descendant: bool  # preceded by '//' rather than '/'
    name: str  # tag name, '*', '.', '..'
    predicates: list[str]


def _parse_path(path: str) -> tuple[bool, list[_Step]]:
    """Split one location path into (absolute, steps)."""
    path = path.strip()
    if not path:
        raise ParseError("empty XPath expression")
    absolute = path.startswith("/")
    steps: list[_Step] = []
    pos = 0
    descendant = False
    if absolute:
        if path.startswith("//"):
            descendant = True
            pos = 2
        else:
            pos = 1
    while pos < len(path):
        next_sep = _find_separator(path, pos)
        raw = path[pos:next_sep] if next_sep != -1 else path[pos:]
        match = _STEP_RE.match(raw.strip())
        if match is None:
            raise ParseError(f"bad XPath step {raw!r}")
        predicates = _PREDICATE_RE.findall(match.group("predicates") or "")
        steps.append(
            _Step(
                descendant=descendant,
                name=match.group("axis"),
                predicates=[pred.strip() for pred in predicates],
            )
        )
        if next_sep == -1:
            break
        if path.startswith("//", next_sep):
            descendant = True
            pos = next_sep + 2
        else:
            descendant = False
            pos = next_sep + 1
    if not steps:
        raise ParseError(f"XPath has no steps: {path!r}")
    return absolute, steps


def _find_separator(path: str, start: int) -> int:
    """Next '/' outside a predicate bracket, or -1."""
    depth = 0
    for index in range(start, len(path)):
        char = path[index]
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == "/" and depth == 0:
            return index
    return -1


def xpath(root, expression: str) -> list[Element]:
    """Evaluate ``expression`` against a document or element root."""
    paths = _split_union(expression)
    if not paths:
        raise ParseError(f"empty XPath expression {expression!r}")
    results: list[Element] = []
    seen: set[int] = set()
    for path in paths:
        for element in _evaluate_path(root, path):
            if id(element) not in seen:
                seen.add(id(element))
                results.append(element)
    return _document_order(root, results)


def _split_union(expression: str) -> list[str]:
    parts, depth, current = [], 0, []
    for char in expression:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "|" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]


def _evaluate_path(root, path: str) -> list[Element]:
    absolute, steps = _parse_path(path)
    if isinstance(root, Document):
        current: list = [root]
    elif isinstance(root, Element):
        document = root.owner_document
        if absolute and document is not None:
            current = [document]
        else:
            current = [root]
    else:
        raise TypeError(f"cannot evaluate XPath against {root!r}")

    for step in steps:
        current = _apply_step(current, step)
        if not current:
            return []
    return [node for node in current if isinstance(node, Element)]


def _apply_step(context: list, step: _Step) -> list:
    output: list = []
    for node in context:
        if step.name == ".":
            candidates = [node]
        elif step.name == "..":
            candidates = [node.parent] if node.parent is not None else []
        elif step.descendant:
            candidates = _descendant_elements(node, step.name)
        else:
            candidates = _child_elements(node, step.name)
        candidates = _filter_predicates(candidates, step.predicates)
        output.extend(candidates)
    # Deduplicate while preserving order ('//' from nested contexts overlaps).
    seen: set[int] = set()
    unique = []
    for node in output:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    return unique


def _child_elements(node, name: str) -> list[Element]:
    children = [
        child for child in getattr(node, "children", []) if isinstance(child, Element)
    ]
    if name == "*":
        return children
    return [child for child in children if child.tag == name]


def _descendant_elements(node, name: str) -> list[Element]:
    result: list[Element] = []
    if isinstance(node, Element):
        pool = [node, *node.descendant_elements()]
    elif isinstance(node, Document):
        pool = node.all_elements()
    else:
        return []
    for element in pool:
        if name == "*" or element.tag == name:
            result.append(element)
    return result


def _filter_predicates(candidates: list[Element], predicates: list[str]) -> list:
    current = candidates
    for predicate in predicates:
        if predicate.isdigit():
            index = int(predicate)
            current = [current[index - 1]] if 1 <= index <= len(current) else []
            continue
        match = _ATTR_PRED_RE.match(predicate)
        if match is None:
            raise ParseError(f"unsupported XPath predicate [{predicate}]")
        name = match.group("name")
        value = match.group("value")
        if value is not None:
            value = value[1:-1]
            current = [el for el in current if el.get(name) == value]
        else:
            current = [el for el in current if el.has_attribute(name)]
    return current


def _document_order(root, elements: list[Element]) -> list[Element]:
    """Sort results into document order using a single traversal."""
    if len(elements) <= 1:
        return elements
    if isinstance(root, Document):
        ordering = root.all_elements()
    elif isinstance(root, Element):
        top = root.owner_document
        if top is not None:
            ordering = top.all_elements()
        else:
            ordering = [root, *root.descendant_elements()]
    else:
        return elements
    rank = {id(element): index for index, element in enumerate(ordering)}
    return sorted(elements, key=lambda el: rank.get(id(el), len(rank)))
