"""Element nodes: tags, attributes, and tree-shaping helpers."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.dom.node import Node, Text

# Elements that never have children in serialized HTML.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# Elements whose content is raw text (no nested markup).
RAW_TEXT_ELEMENTS = frozenset({"script", "style", "textarea", "title"})


class Element(Node):
    """An HTML element with an ordered attribute map and child list."""

    __slots__ = ("tag", "attributes", "_children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[list[Node]] = None,
    ) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attributes: dict[str, str] = dict(attributes or {})
        self._children: list[Node] = []
        for child in children or []:
            self.append(child)

    # -- identity ------------------------------------------------------

    @property
    def node_name(self) -> str:
        return self.tag

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def id(self) -> Optional[str]:
        return self.attributes.get("id")

    @property
    def classes(self) -> list[str]:
        return self.attributes.get("class", "").split()

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def add_class(self, name: str) -> None:
        names = self.classes
        if name not in names:
            names.append(name)
            self.attributes["class"] = " ".join(names)

    def remove_class(self, name: str) -> None:
        names = [cls for cls in self.classes if cls != name]
        if names:
            self.attributes["class"] = " ".join(names)
        else:
            self.attributes.pop("class", None)

    # -- attributes ------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(name.lower(), default)

    def set(self, name: str, value: str) -> None:
        self.attributes[name.lower()] = value

    def remove_attribute(self, name: str) -> None:
        self.attributes.pop(name.lower(), None)

    def has_attribute(self, name: str) -> bool:
        return name.lower() in self.attributes

    # -- child mutation ---------------------------------------------------

    def append(self, child: Node) -> Node:
        child.detach()
        self._children.append(child)
        child.parent = self
        return child

    def prepend(self, child: Node) -> Node:
        child.detach()
        self._children.insert(0, child)
        child.parent = self
        return child

    def insert_child(self, index: int, child: Node) -> Node:
        child.detach()
        self._children.insert(index, child)
        child.parent = self
        return child

    def append_text(self, data: str) -> Text:
        """Append character data, merging with a trailing text node."""
        if self._children and isinstance(self._children[-1], Text):
            last = self._children[-1]
            last.data += data
            return last
        text = Text(data)
        return self.append(text)  # type: ignore[return-value]

    def clear_children(self) -> None:
        for child in self._children:
            child.parent = None
        self._children.clear()

    # -- traversal -------------------------------------------------------

    def child_elements(self) -> list["Element"]:
        return [child for child in self._children if isinstance(child, Element)]

    def descendants(self) -> Iterator[Node]:
        """All descendant nodes, document order, self excluded."""
        stack = list(reversed(self._children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node._children))

    def descendant_elements(self) -> Iterator["Element"]:
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def find(self, predicate: Callable[["Element"], bool]) -> Optional["Element"]:
        """First descendant element matching ``predicate``, document order."""
        for element in self.descendant_elements():
            if predicate(element):
                return element
        return None

    def find_all(self, predicate: Callable[["Element"], bool]) -> list["Element"]:
        return [el for el in self.descendant_elements() if predicate(el)]

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        if self.id == element_id:
            return self
        return self.find(lambda el: el.id == element_id)

    def get_elements_by_tag(self, tag: str) -> list["Element"]:
        tag = tag.lower()
        return self.find_all(lambda el: el.tag == tag)

    def get_elements_by_class(self, class_name: str) -> list["Element"]:
        return self.find_all(lambda el: el.has_class(class_name))

    # -- content ---------------------------------------------------------

    @property
    def text_content(self) -> str:
        parts = []
        for node in self.descendants():
            if isinstance(node, Text):
                parts.append(node.data)
        return "".join(parts)

    def set_text(self, data: str) -> None:
        """Replace all children with a single text node."""
        self.clear_children()
        self.append(Text(data))

    @property
    def is_void(self) -> bool:
        return self.tag in VOID_ELEMENTS

    @property
    def is_raw_text(self) -> bool:
        return self.tag in RAW_TEXT_ELEMENTS

    def clone(self) -> "Element":
        copy = Element(self.tag, dict(self.attributes))
        for child in self._children:
            copy.append(child.clone())
        return copy

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        cls = "." + ".".join(self.classes) if self.classes else ""
        return f"<{self.tag}{ident}{cls} children={len(self._children)}>"
