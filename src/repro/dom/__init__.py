"""Document object model built from scratch for the reproduction.

The m.Site proxy does most of its adaptation work on a parsed DOM tree
(§3.2 of the paper), identified via XPath or CSS3 selectors and manipulated
through a server-side jQuery port.  This package provides all three:

* :mod:`repro.dom.node` / :mod:`repro.dom.element` / :mod:`repro.dom.document`
  — the tree itself,
* :mod:`repro.dom.xpath` — an XPath subset engine,
* :mod:`repro.dom.selectors` — a CSS3 selector engine,
* :mod:`repro.dom.query` — the jQuery-style manipulation API.
"""

from repro.dom.node import Node, Text, Comment, Doctype
from repro.dom.element import Element
from repro.dom.document import Document
from repro.dom.selectors import select, matches, parse_selector
from repro.dom.xpath import xpath
from repro.dom.query import Query

__all__ = [
    "Node",
    "Text",
    "Comment",
    "Doctype",
    "Element",
    "Document",
    "select",
    "matches",
    "parse_selector",
    "xpath",
    "Query",
]
