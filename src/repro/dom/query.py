"""Server-side jQuery analog.

The paper integrates "a server-side port of the popular jQuery DOM
manipulation library" (§3.2) and uses it both in the attribute system and
in generated proxy code (the AJAX link rewriting of §4.4 is expressed as
jQuery calls).  This module provides the fluent wrapper: a :class:`Query`
holds an ordered set of elements and every mutator returns a query so calls
chain.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Node, Text
from repro.dom.selectors import matches as _matches, select as _select

Root = Union[Document, Element]


class Query:
    """An ordered, duplicate-free set of elements with chainable operations."""

    def __init__(
        self,
        target: Union[str, Element, Document, Iterable[Element], None] = None,
        root: Optional[Root] = None,
    ) -> None:
        self._root = root
        elements: list[Element] = []
        if target is None:
            pass
        elif isinstance(target, str):
            if root is None:
                raise ValueError("selector queries need a root document")
            elements = _select(root, target)
        elif isinstance(target, Document):
            self._root = target
            doc_el = target.document_element
            elements = [doc_el] if doc_el is not None else []
        elif isinstance(target, Element):
            elements = [target]
        else:
            elements = list(target)
        self._elements = _unique(elements)

    # -- set plumbing ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> Element:
        return self._elements[index]

    def __bool__(self) -> bool:
        return bool(self._elements)

    @property
    def elements(self) -> list[Element]:
        """The matched elements as a plain list (copy)."""
        return list(self._elements)

    def _wrap(self, elements: Iterable[Element]) -> "Query":
        query = Query(root=self._root)
        query._elements = _unique(list(elements))
        return query

    # -- traversal ---------------------------------------------------------

    def find(self, selector: str) -> "Query":
        """Descendants of each element matching ``selector``."""
        found: list[Element] = []
        for element in self._elements:
            for hit in _select(element, selector):
                if hit is not element:
                    found.append(hit)
        return self._wrap(found)

    def filter(
        self, test: Union[str, Callable[[Element], bool]]
    ) -> "Query":
        if callable(test):
            return self._wrap(el for el in self._elements if test(el))
        return self._wrap(el for el in self._elements if _matches(el, test))

    def not_(self, selector: str) -> "Query":
        return self._wrap(
            el for el in self._elements if not _matches(el, selector)
        )

    def eq(self, index: int) -> "Query":
        try:
            return self._wrap([self._elements[index]])
        except IndexError:
            return self._wrap([])

    def first(self) -> "Query":
        return self.eq(0)

    def last(self) -> "Query":
        return self.eq(-1)

    def parent(self) -> "Query":
        parents = [
            el.parent for el in self._elements if isinstance(el.parent, Element)
        ]
        return self._wrap(parents)

    def closest(self, selector: str) -> "Query":
        found = []
        for element in self._elements:
            node: Optional[Node] = element
            while isinstance(node, Element):
                if _matches(node, selector):
                    found.append(node)
                    break
                node = node.parent
        return self._wrap(found)

    def children(self, selector: Optional[str] = None) -> "Query":
        found: list[Element] = []
        for element in self._elements:
            for child in element.child_elements():
                if selector is None or _matches(child, selector):
                    found.append(child)
        return self._wrap(found)

    def siblings(self) -> "Query":
        found: list[Element] = []
        for element in self._elements:
            parent = element.parent
            if not isinstance(parent, Element):
                continue
            for child in parent.child_elements():
                if child is not element:
                    found.append(child)
        return self._wrap(found)

    def each(self, fn: Callable[[int, Element], None]) -> "Query":
        for index, element in enumerate(self._elements):
            fn(index, element)
        return self

    def map(self, fn: Callable[[Element], object]) -> list:
        return [fn(element) for element in self._elements]

    def is_(self, selector: str) -> bool:
        return any(_matches(el, selector) for el in self._elements)

    # -- attributes ----------------------------------------------------------

    def attr(
        self, name: str, value: Optional[str] = None
    ) -> Union[str, None, "Query"]:
        """Get the first element's attribute, or set it on all elements."""
        if value is None:
            if not self._elements:
                return None
            return self._elements[0].get(name)
        for element in self._elements:
            element.set(name, value)
        return self

    def remove_attr(self, name: str) -> "Query":
        for element in self._elements:
            element.remove_attribute(name)
        return self

    def add_class(self, name: str) -> "Query":
        for element in self._elements:
            element.add_class(name)
        return self

    def remove_class(self, name: str) -> "Query":
        for element in self._elements:
            element.remove_class(name)
        return self

    def toggle_class(self, name: str) -> "Query":
        for element in self._elements:
            if element.has_class(name):
                element.remove_class(name)
            else:
                element.add_class(name)
        return self

    def css(
        self, prop: str, value: Optional[str] = None
    ) -> Union[str, None, "Query"]:
        """Read or write a declaration in the inline ``style`` attribute."""
        if value is None:
            if not self._elements:
                return None
            return _style_get(self._elements[0], prop)
        for element in self._elements:
            _style_set(element, prop, value)
        return self

    # -- content -------------------------------------------------------------

    def text(self, value: Optional[str] = None) -> Union[str, "Query"]:
        if value is None:
            return "".join(el.text_content for el in self._elements)
        for element in self._elements:
            element.set_text(value)
        return self

    def html(self, markup: Optional[str] = None) -> Union[str, "Query"]:
        from repro.html.parser import parse_fragment
        from repro.html.serializer import inner_html

        if markup is None:
            if not self._elements:
                return ""
            return inner_html(self._elements[0])
        for element in self._elements:
            element.clear_children()
            for node in parse_fragment(markup):
                element.append(node)
        return self

    def val(self, value: Optional[str] = None) -> Union[str, None, "Query"]:
        """Form-control value (the ``value`` attribute)."""
        if value is None:
            if not self._elements:
                return None
            return self._elements[0].get("value")
        for element in self._elements:
            element.set("value", value)
        return self

    # -- structure -------------------------------------------------------------

    def append(self, content: Union[str, Node, "Query"]) -> "Query":
        for element, nodes in self._content_per_target(content):
            for node in nodes:
                element.append(node)
        return self

    def prepend(self, content: Union[str, Node, "Query"]) -> "Query":
        for element, nodes in self._content_per_target(content):
            for node in reversed(nodes):
                element.prepend(node)
        return self

    def before(self, content: Union[str, Node, "Query"]) -> "Query":
        for element, nodes in self._content_per_target(content):
            for node in nodes:
                element.insert_before(node)
        return self

    def after(self, content: Union[str, Node, "Query"]) -> "Query":
        for element, nodes in self._content_per_target(content):
            for node in reversed(nodes):
                element.insert_after(node)
        return self

    def remove(self) -> "Query":
        for element in self._elements:
            element.detach()
        return self

    def empty(self) -> "Query":
        for element in self._elements:
            element.clear_children()
        return self

    def replace_with(self, content: Union[str, Node, "Query"]) -> "Query":
        for element, nodes in self._content_per_target(content):
            if not nodes:
                element.detach()
                continue
            element.replace_with(nodes[0])
            anchor = nodes[0]
            for node in nodes[1:]:
                anchor.insert_after(node)
                anchor = node
        return self

    def wrap(self, markup: str) -> "Query":
        """Wrap each element in the (single-element) structure ``markup``."""
        from repro.html.parser import parse_fragment

        for element in self._elements:
            wrappers = [
                node for node in parse_fragment(markup) if isinstance(node, Element)
            ]
            if not wrappers:
                raise ValueError(f"wrap() markup has no element: {markup!r}")
            wrapper = wrappers[0]
            # Descend to the innermost element of the wrapper.
            inner = wrapper
            while inner.child_elements():
                inner = inner.child_elements()[0]
            if element.parent is not None:
                element.replace_with(wrapper)
            inner.append(element)
        return self

    def clone(self) -> "Query":
        return self._wrap([element.clone() for element in self._elements])

    # -- internals ---------------------------------------------------------------

    def _content_per_target(
        self, content: Union[str, Node, "Query"]
    ) -> Iterator[tuple[Element, list[Node]]]:
        """Pair every target element with fresh content nodes.

        jQuery semantics: the first target consumes the original nodes,
        subsequent targets get deep clones.
        """
        from repro.html.parser import parse_fragment

        if isinstance(content, str):
            originals: list[Node] = parse_fragment(content)
        elif isinstance(content, Node):
            originals = [content]
        else:
            originals = list(content.elements)
        for index, element in enumerate(self._elements):
            if index == 0:
                yield element, originals
            else:
                yield element, [node.clone() for node in originals]

    def __repr__(self) -> str:
        return f"Query({self._elements!r})"


# ---------------------------------------------------------------------------
# inline-style helpers

_DECL_RE = re.compile(r"([-a-zA-Z]+)\s*:\s*([^;]+)")


def _style_decls(element: Element) -> list[tuple[str, str]]:
    style = element.get("style") or ""
    return [
        (name.strip().lower(), value.strip())
        for name, value in _DECL_RE.findall(style)
    ]


def _style_get(element: Element, prop: str) -> Optional[str]:
    prop = prop.lower()
    for name, value in _style_decls(element):
        if name == prop:
            return value
    return None


def _style_set(element: Element, prop: str, value: str) -> None:
    prop = prop.lower()
    decls = [(name, val) for name, val in _style_decls(element) if name != prop]
    decls.append((prop, value))
    element.set("style", "; ".join(f"{name}: {val}" for name, val in decls))


def _unique(elements: list[Element]) -> list[Element]:
    seen: set[int] = set()
    unique: list[Element] = []
    for element in elements:
        if id(element) not in seen:
            seen.add(id(element))
            unique.append(element)
    return unique
