"""CSS3 selector engine.

Implements the selector subset the paper relies on ("objects can be
identified using new CSS 3 selector support", §3.2): type, universal, id,
class, attribute matchers (= ~= |= ^= $= *=), the structural pseudo-classes
(:first-child, :last-child, :only-child, :nth-child, :first-of-type,
:last-of-type, :empty, :root, :not), the jQuery ``:contains`` extension,
and all four combinators (descendant, ``>``, ``+``, ``~``), with comma
groups.

Matching proceeds right-to-left, the standard strategy for engines that
evaluate against candidate elements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.dom.element import Element
from repro.errors import ParseError

_IDENT = r"[-_a-zA-Z][-_a-zA-Z0-9]*"
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<combinator>[>+~])
  | (?P<comma>,)
  | (?P<hash>\#(?P<hash_name>{ident}))
  | (?P<class>\.(?P<class_name>{ident}))
  | (?P<attr>\[\s*(?P<attr_name>{ident})
        (?:\s*(?P<attr_op>[~|^$*]?=)\s*
            (?P<attr_val>"[^"]*"|'[^']*'|[^\]\s]+))?\s*\])
  | (?P<pseudo>:(?P<pseudo_name>[-a-zA-Z]+)(?:\((?P<pseudo_arg>[^)]*)\))?)
  | (?P<type>{ident}|\*)
    """.format(ident=_IDENT),
    re.VERBOSE,
)


@dataclass
class AttributeTest:
    name: str
    operator: Optional[str] = None  # '=', '~=', '|=', '^=', '$=', '*='
    value: Optional[str] = None

    def matches(self, element: Element) -> bool:
        actual = element.get(self.name)
        if actual is None:
            return False
        if self.operator is None:
            return True
        expected = self.value or ""
        if self.operator == "=":
            return actual == expected
        if self.operator == "~=":
            return expected in actual.split()
        if self.operator == "|=":
            return actual == expected or actual.startswith(expected + "-")
        if self.operator == "^=":
            return bool(expected) and actual.startswith(expected)
        if self.operator == "$=":
            return bool(expected) and actual.endswith(expected)
        if self.operator == "*=":
            return bool(expected) and expected in actual
        raise ParseError(f"unknown attribute operator {self.operator!r}")


@dataclass
class PseudoTest:
    name: str
    argument: Optional[str] = None
    # :not() holds a parsed simple selector
    inner: Optional["CompoundSelector"] = None

    def matches(self, element: Element) -> bool:
        name = self.name
        if name == "first-child":
            return _element_index(element) == 0
        if name == "last-child":
            siblings = _element_siblings(element)
            return bool(siblings) and siblings[-1] is element
        if name == "only-child":
            return len(_element_siblings(element)) == 1
        if name == "nth-child":
            return _match_nth(self.argument or "", _element_index(element) + 1)
        if name == "nth-last-child":
            position = (
                len(_element_siblings(element)) - _element_index(element)
            )
            return _match_nth(self.argument or "", position)
        if name == "nth-of-type":
            return _match_nth(self.argument or "", _type_index(element) + 1)
        if name == "nth-last-of-type":
            same = [
                el for el in _element_siblings(element)
                if el.tag == element.tag
            ]
            position = len(same) - _type_index(element)
            return _match_nth(self.argument or "", position)
        if name == "first-of-type":
            return _type_index(element) == 0
        if name == "last-of-type":
            same = [
                el for el in _element_siblings(element) if el.tag == element.tag
            ]
            return bool(same) and same[-1] is element
        if name == "empty":
            return not element.children
        if name == "root":
            from repro.dom.document import Document

            return isinstance(element.parent, Document)
        if name == "not":
            return self.inner is not None and not self.inner.matches(element)
        if name == "contains":
            return (self.argument or "") in element.text_content
        if name == "link":
            # Static rendering: every hyperlink is unvisited.
            return element.tag == "a" and element.has_attribute("href")
        if name in ("visited", "hover", "active", "focus", "checked"):
            # Dynamic states never hold in a server-side snapshot.
            return False
        raise ParseError(f"unsupported pseudo-class :{name}")


@dataclass
class CompoundSelector:
    """A sequence of simple selectors applying to one element."""

    tag: Optional[str] = None  # None means universal
    element_id: Optional[str] = None
    class_names: list[str] = field(default_factory=list)
    attribute_tests: list[AttributeTest] = field(default_factory=list)
    pseudo_tests: list[PseudoTest] = field(default_factory=list)

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        if self.element_id is not None and element.id != self.element_id:
            return False
        for class_name in self.class_names:
            if not element.has_class(class_name):
                return False
        for test in self.attribute_tests:
            if not test.matches(element):
                return False
        for pseudo in self.pseudo_tests:
            if not pseudo.matches(element):
                return False
        return True


@dataclass
class ComplexSelector:
    """Compounds joined by combinators, stored left-to-right."""

    compounds: list[CompoundSelector]
    combinators: list[str]  # len == len(compounds) - 1; ' ', '>', '+', '~'

    def matches(self, element: Element) -> bool:
        return self._match_from(element, len(self.compounds) - 1)

    def _match_from(self, element: Element, index: int) -> bool:
        if not self.compounds[index].matches(element):
            return False
        if index == 0:
            return True
        combinator = self.combinators[index - 1]
        if combinator == " ":
            for ancestor in element.ancestors():
                if isinstance(ancestor, Element) and self._match_from(
                    ancestor, index - 1
                ):
                    return True
            return False
        if combinator == ">":
            parent = element.parent
            return isinstance(parent, Element) and self._match_from(
                parent, index - 1
            )
        if combinator == "+":
            sibling = _previous_element(element)
            return sibling is not None and self._match_from(sibling, index - 1)
        if combinator == "~":
            sibling = _previous_element(element)
            while sibling is not None:
                if self._match_from(sibling, index - 1):
                    return True
                sibling = _previous_element(sibling)
            return False
        raise ParseError(f"unknown combinator {combinator!r}")


@dataclass
class SelectorGroup:
    """Comma-separated alternatives."""

    alternatives: list[ComplexSelector]

    def matches(self, element: Element) -> bool:
        return any(alt.matches(element) for alt in self.alternatives)


# ---------------------------------------------------------------------------
# parsing


@lru_cache(maxsize=2048)
def parse_selector(source: str) -> SelectorGroup:
    """Parse a selector group; raises :class:`ParseError` on bad syntax.

    Memoized on the source string: specs and jQuery-style scripts re-use
    a handful of selector strings on every request, so the parse happens
    once per deployment rather than once per match.  The returned
    structures are shared — matching never mutates them, which is what
    makes the cache safe across threads.  (``lru_cache`` does not cache
    raising calls, so bad syntax raises every time.)
    """
    return parse_selector_uncached(source)


def parse_selector_uncached(source: str) -> SelectorGroup:
    """The actual parser; exposed for memoization-equivalence tests."""
    source = source.strip()
    if not source:
        raise ParseError("empty selector")
    alternatives: list[ComplexSelector] = []
    compounds: list[CompoundSelector] = []
    combinators: list[str] = []
    current: Optional[CompoundSelector] = None
    pending_combinator: Optional[str] = None
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"bad selector syntax at {source[pos:]!r}")
        pos = match.end()
        kind = match.lastgroup  # set by the last group matched
        if match.group("ws"):
            if current is not None:
                pending_combinator = pending_combinator or " "
            continue
        if match.group("comma"):
            if current is None:
                raise ParseError("selector alternative is empty")
            compounds.append(current)
            alternatives.append(ComplexSelector(compounds, combinators))
            compounds, combinators, current = [], [], None
            pending_combinator = None
            continue
        if match.group("combinator"):
            if current is None:
                raise ParseError(
                    f"combinator {match.group('combinator')!r} with no left side"
                )
            pending_combinator = match.group("combinator")
            continue
        # A simple-selector token: open a new compound if needed.
        if current is None:
            current = CompoundSelector()
        elif pending_combinator is not None:
            compounds.append(current)
            combinators.append(pending_combinator)
            current = CompoundSelector()
            pending_combinator = None
        _apply_token(current, match)
    if current is None:
        raise ParseError(f"selector ends unexpectedly: {source!r}")
    if pending_combinator is not None and pending_combinator != " ":
        raise ParseError(
            f"selector ends with dangling combinator: {source!r}"
        )
    compounds.append(current)
    alternatives.append(ComplexSelector(compounds, combinators))
    return SelectorGroup(alternatives)


def _apply_token(compound: CompoundSelector, match: re.Match) -> None:
    if match.group("type"):
        token = match.group("type")
        if compound.tag is not None:
            raise ParseError("duplicate type selector")
        compound.tag = None if token == "*" else token.lower()
    elif match.group("hash"):
        compound.element_id = match.group("hash_name")
    elif match.group("class"):
        compound.class_names.append(match.group("class_name"))
    elif match.group("attr"):
        value = match.group("attr_val")
        if value is not None and value[:1] in "\"'":
            value = value[1:-1]
        compound.attribute_tests.append(
            AttributeTest(
                name=match.group("attr_name").lower(),
                operator=match.group("attr_op"),
                value=value,
            )
        )
    elif match.group("pseudo"):
        name = match.group("pseudo_name").lower()
        argument = match.group("pseudo_arg")
        inner = None
        if name == "not":
            if not argument:
                raise ParseError(":not() requires an argument")
            inner_group = parse_selector(argument)
            only = inner_group.alternatives[0]
            if len(inner_group.alternatives) != 1 or len(only.compounds) != 1:
                raise ParseError(":not() accepts a single compound selector")
            inner = only.compounds[0]
        if argument is not None and argument[:1] in "\"'":
            argument = argument[1:-1]
        compound.pseudo_tests.append(PseudoTest(name, argument, inner))


# ---------------------------------------------------------------------------
# evaluation helpers


def _element_siblings(element: Element) -> list[Element]:
    parent = element.parent
    if parent is None:
        return [element]
    return [child for child in parent.children if isinstance(child, Element)]


def _element_index(element: Element) -> int:
    siblings = _element_siblings(element)
    for index, sibling in enumerate(siblings):
        if sibling is element:
            return index
    return 0


def _type_index(element: Element) -> int:
    same = [el for el in _element_siblings(element) if el.tag == element.tag]
    for index, sibling in enumerate(same):
        if sibling is element:
            return index
    return 0


def _previous_element(element: Element) -> Optional[Element]:
    node = element.previous_sibling
    while node is not None:
        if isinstance(node, Element):
            return node
        node = node.previous_sibling
    return None


_NTH_RE = re.compile(
    r"^\s*(?:(?P<odd>odd)|(?P<even>even)"
    r"|(?P<a>[+-]?\d*)n\s*(?:(?P<sign>[+-])\s*(?P<b>\d+))?"
    r"|(?P<index>[+-]?\d+))\s*$"
)


def _match_nth(expression: str, position: int) -> bool:
    """Evaluate an An+B expression against a 1-based position."""
    match = _NTH_RE.match(expression)
    if match is None:
        raise ParseError(f"bad :nth-child() argument {expression!r}")
    if match.group("odd"):
        return position % 2 == 1
    if match.group("even"):
        return position % 2 == 0
    if match.group("index"):
        return position == int(match.group("index"))
    a_text = match.group("a")
    if a_text in ("", "+"):
        a = 1
    elif a_text == "-":
        a = -1
    else:
        a = int(a_text)
    b = int(match.group("b") or 0)
    if match.group("sign") == "-":
        b = -b
    if a == 0:
        return position == b
    quotient, remainder = divmod(position - b, a)
    return remainder == 0 and quotient >= 0


# ---------------------------------------------------------------------------
# public API


def matches(element: Element, selector: str | SelectorGroup) -> bool:
    """Does ``element`` match the selector?"""
    group = (
        selector if isinstance(selector, SelectorGroup) else parse_selector(selector)
    )
    return group.matches(element)


def select(root, selector: str | SelectorGroup) -> list[Element]:
    """All elements under ``root`` (document or element) matching the selector.

    ``root`` itself is included as a candidate when it is an element.
    Results are in document order with no duplicates.
    """
    from repro.dom.document import Document

    group = (
        selector if isinstance(selector, SelectorGroup) else parse_selector(selector)
    )
    if isinstance(root, Document):
        candidates = root.all_elements()
    elif isinstance(root, Element):
        candidates = [root, *root.descendant_elements()]
    else:
        raise TypeError(f"cannot select within {root!r}")
    return [element for element in candidates if group.matches(element)]
