"""Per-document query index: tag/id/class maps for fast selection.

``selectors.select`` scans every element in the tree for every selector
— fine for a one-shot script, wasteful on the adaptation hot path where
a spec applies a dozen selectors to the same document.  ``QueryIndex``
walks the tree once, buckets elements by tag name, id, and class, and
answers ``select`` by pruning candidates from the *rightmost* compound
of each selector alternative (the compound that must match the subject
element itself), then verifying the survivors with the real matcher.

The index is a snapshot: it does not observe later tree mutations.
Callers that mutate the document must drop the index and rebuild (the
pipeline invalidates its index after every attribute applier).  Matches
are verified both against the full selector semantics and against
attachment to the indexed root, so an element detached *and re-queried
through a stale index* can never be returned — staleness can only cause
a rebuild-sized cost, never a wrong result for detached nodes.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.selectors import (
    ComplexSelector,
    SelectorGroup,
    matches,
    parse_selector,
)

Root = Union[Document, Element]


class QueryIndex:
    """Tag/id/class buckets over one snapshot of a document tree."""

    __slots__ = ("root", "elements", "by_tag", "by_id", "by_class",
                 "_positions")

    def __init__(self, root: Root) -> None:
        self.root = root
        if isinstance(root, Document):
            elements: List[Element] = list(root.all_elements())
        else:
            elements = [root, *root.descendant_elements()]
        self.elements = elements
        self.by_tag: Dict[str, List[Element]] = {}
        self.by_id: Dict[str, List[Element]] = {}
        self.by_class: Dict[str, List[Element]] = {}
        self._positions: Dict[int, int] = {}
        for position, element in enumerate(elements):
            self._positions[id(element)] = position
            self.by_tag.setdefault(element.tag, []).append(element)
            element_id = element.attributes.get("id")
            if element_id is not None:
                self.by_id.setdefault(element_id, []).append(element)
            class_attr = element.attributes.get("class")
            if class_attr:
                for name in class_attr.split():
                    bucket = self.by_class.setdefault(name, [])
                    if not bucket or bucket[-1] is not element:
                        bucket.append(element)

    # -- candidate pruning ----------------------------------------------

    def _compound_candidates(self,
                             alternative: ComplexSelector) -> List[Element]:
        """Smallest bucket implied by the rightmost compound.

        The rightmost compound describes the subject element directly,
        so any feature it names (id, class, tag) is a sound filter.  We
        pick the most selective available bucket; a bare ``*``-style
        compound falls back to every element.
        """
        compound = alternative.compounds[-1]
        if compound.element_id is not None:
            return self.by_id.get(compound.element_id, [])
        if compound.class_names:
            best: List[Element] = []
            chosen = False
            for name in compound.class_names:
                bucket = self.by_class.get(name, [])
                if not chosen or len(bucket) < len(best):
                    best, chosen = bucket, True
            return best
        if compound.tag is not None:
            return self.by_tag.get(compound.tag, [])
        return self.elements

    def candidates_for(self, group: SelectorGroup) -> List[Element]:
        """Union of per-alternative candidate buckets, document order."""
        if len(group.alternatives) == 1:
            picked = self._compound_candidates(group.alternatives[0])
            return list(picked)
        seen: Dict[int, Element] = {}
        for alternative in group.alternatives:
            for element in self._compound_candidates(alternative):
                seen.setdefault(id(element), element)
        ordered = sorted(
            seen.values(),
            key=lambda element: self._positions.get(id(element), 1 << 30),
        )
        return ordered

    # -- selection ------------------------------------------------------

    def _attached(self, element: Element) -> bool:
        """Is ``element`` still under the indexed root?"""
        if element is self.root:
            return True
        node = element.parent
        while node is not None:
            if node is self.root:
                return True
            node = getattr(node, "parent", None)
        return False

    def select(self,
               selector: Union[str, SelectorGroup]) -> List[Element]:
        """Index-accelerated ``selectors.select`` over the snapshot.

        Candidates come from the buckets; every survivor is verified
        with the full matcher plus an attachment check, so the result
        equals ``selectors.select(root, selector)`` for any tree that
        has only *lost* nodes since the snapshot.
        """
        group = (parse_selector(selector)
                 if isinstance(selector, str) else selector)
        return [
            element
            for element in self.candidates_for(group)
            if self._attached(element) and matches(element, group)
        ]
