"""Base node types for the DOM tree.

The tree is intentionally simple: every node knows its parent and elements
keep an ordered child list.  All mutation goes through methods that keep
parent pointers consistent, because the adaptation pipeline moves objects
between pages constantly (page splitting, dependency copying, relocation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.dom.document import Document
    from repro.dom.element import Element


class Node:
    """Common behaviour for every node in the tree."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Node] = None

    # -- identity ------------------------------------------------------

    @property
    def node_name(self) -> str:
        raise NotImplementedError

    # -- tree navigation -------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        """Child list; leaf nodes expose an immutable empty list."""
        return []

    @property
    def owner_document(self) -> Optional["Document"]:
        """The document at the root of this node's tree, if any."""
        from repro.dom.document import Document

        node: Optional[Node] = self
        while node is not None:
            if isinstance(node, Document):
                return node
            node = node.parent
        return None

    def ancestors(self) -> Iterator["Node"]:
        """Parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Topmost ancestor (self if detached)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def index_in_parent(self) -> int:
        """Position among siblings; raises if detached."""
        if self.parent is None:
            raise ValueError("node has no parent")
        return self.parent.children.index(self)

    @property
    def previous_sibling(self) -> Optional["Node"]:
        if self.parent is None:
            return None
        index = self.index_in_parent
        if index == 0:
            return None
        return self.parent.children[index - 1]

    @property
    def next_sibling(self) -> Optional["Node"]:
        if self.parent is None:
            return None
        siblings = self.parent.children
        index = self.index_in_parent
        if index + 1 >= len(siblings):
            return None
        return siblings[index + 1]

    # -- mutation ------------------------------------------------------

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op when detached)."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def replace_with(self, replacement: "Node") -> "Node":
        """Swap this node for ``replacement`` in the parent's child list."""
        if self.parent is None:
            raise ValueError("cannot replace a detached node")
        parent = self.parent
        index = self.index_in_parent
        replacement.detach()
        parent.children[index] = replacement
        replacement.parent = parent
        self.parent = None
        return replacement

    def insert_before(self, sibling: "Node") -> "Node":
        """Insert ``sibling`` immediately before this node."""
        if self.parent is None:
            raise ValueError("cannot insert beside a detached node")
        sibling.detach()
        index = self.index_in_parent
        self.parent.children.insert(index, sibling)
        sibling.parent = self.parent
        return sibling

    def insert_after(self, sibling: "Node") -> "Node":
        """Insert ``sibling`` immediately after this node."""
        if self.parent is None:
            raise ValueError("cannot insert beside a detached node")
        sibling.detach()
        index = self.index_in_parent
        self.parent.children.insert(index + 1, sibling)
        sibling.parent = self.parent
        return sibling

    # -- content -------------------------------------------------------

    @property
    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        return ""

    def clone(self) -> "Node":
        """Deep copy, detached from any parent."""
        raise NotImplementedError


class Text(Node):
    """A run of character data."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    @property
    def node_name(self) -> str:
        return "#text"

    @property
    def text_content(self) -> str:
        return self.data

    def clone(self) -> "Text":
        return Text(self.data)

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 24 else self.data[:21] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An HTML comment; preserved because templates hide markers in them."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    @property
    def node_name(self) -> str:
        return "#comment"

    def clone(self) -> "Comment":
        return Comment(self.data)

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class Doctype(Node):
    """A document type declaration (the doctype-rewrite attribute targets it)."""

    __slots__ = ("name",)

    def __init__(self, name: str = "html") -> None:
        super().__init__()
        self.name = name

    @property
    def node_name(self) -> str:
        return "#doctype"

    def clone(self) -> "Doctype":
        return Doctype(self.name)

    def __repr__(self) -> str:
        return f"Doctype({self.name!r})"
