"""CSS engine: parsing, specificity, cascade, and computed style.

The server-side renderer needs real CSS handling to lay out pages the way
the paper's embedded WebKit does: the snapshot geometry that drives
image-map generation (§4.3) comes from laid-out boxes, which in turn come
from cascaded styles.  The partial-CSS-prerender attribute also manipulates
stylesheets directly.
"""

from repro.css.model import Declaration, Rule, Stylesheet
from repro.css.parser import parse_stylesheet, parse_declarations
from repro.css.specificity import specificity
from repro.css.cascade import StyleResolver, ComputedStyle

__all__ = [
    "Declaration",
    "Rule",
    "Stylesheet",
    "parse_stylesheet",
    "parse_declarations",
    "specificity",
    "StyleResolver",
    "ComputedStyle",
]
