"""Object model for parsed stylesheets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dom.selectors import SelectorGroup


@dataclass
class Declaration:
    """A single ``property: value`` pair."""

    name: str
    value: str
    important: bool = False

    def __str__(self) -> str:
        bang = " !important" if self.important else ""
        return f"{self.name}: {self.value}{bang}"


@dataclass
class Rule:
    """A style rule: selector group plus declaration block."""

    selector_text: str
    selectors: Optional[SelectorGroup]  # None when the selector didn't parse
    declarations: list[Declaration] = field(default_factory=list)
    source_order: int = 0

    def declaration(self, name: str) -> Optional[Declaration]:
        """Last declaration of ``name`` in the block (CSS last-wins)."""
        result = None
        for decl in self.declarations:
            if decl.name == name:
                result = decl
        return result

    def __str__(self) -> str:
        body = "; ".join(str(decl) for decl in self.declarations)
        return f"{self.selector_text} {{ {body} }}"


@dataclass
class AtRule:
    """An at-rule kept verbatim (``@media``, ``@import``, ``@font-face``)."""

    name: str
    prelude: str
    body: str = ""


@dataclass
class Stylesheet:
    """An ordered list of rules from one source (file or <style> block)."""

    rules: list[Rule] = field(default_factory=list)
    at_rules: list[AtRule] = field(default_factory=list)
    href: Optional[str] = None

    def __len__(self) -> int:
        return len(self.rules)

    def rules_for_property(self, name: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.declaration(name)]

    def to_css(self) -> str:
        """Serialize back to CSS source."""
        parts = []
        for at_rule in self.at_rules:
            if at_rule.body:
                parts.append(f"@{at_rule.name} {at_rule.prelude} {{{at_rule.body}}}")
            else:
                parts.append(f"@{at_rule.name} {at_rule.prelude};")
        for rule in self.rules:
            body = "; ".join(str(decl) for decl in rule.declarations)
            parts.append(f"{rule.selector_text} {{ {body} }}")
        return "\n".join(parts)
