"""Selector specificity per the CSS cascade rules."""

from __future__ import annotations

from repro.dom.selectors import ComplexSelector, CompoundSelector


def specificity(selector: ComplexSelector) -> tuple[int, int, int]:
    """(id-count, class/attr/pseudo-count, type-count) for one selector."""
    ids = classes = types = 0
    for compound in selector.compounds:
        a, b, c = _compound_specificity(compound)
        ids += a
        classes += b
        types += c
    return ids, classes, types


def _compound_specificity(compound: CompoundSelector) -> tuple[int, int, int]:
    ids = 1 if compound.element_id is not None else 0
    classes = (
        len(compound.class_names)
        + len(compound.attribute_tests)
        + sum(1 for pseudo in compound.pseudo_tests if pseudo.name != "not")
    )
    types = 1 if compound.tag is not None else 0
    # :not() adds its inner selector's specificity, not its own.
    for pseudo in compound.pseudo_tests:
        if pseudo.name == "not" and pseudo.inner is not None:
            inner_ids, inner_classes, inner_types = _compound_specificity(
                pseudo.inner
            )
            ids += inner_ids
            classes += inner_classes
            types += inner_types
    return ids, classes, types
