"""Tolerant CSS parser.

Real sites ship CSS with vendor hacks and occasional syntax errors; per the
CSS error-recovery rules, an unparseable selector drops the whole rule and
an unparseable declaration drops only that declaration.
"""

from __future__ import annotations

import re

from repro.css.model import AtRule, Declaration, Rule, Stylesheet
from repro.dom.selectors import parse_selector
from repro.errors import ParseError

_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def parse_stylesheet(source: str, href: str | None = None) -> Stylesheet:
    """Parse CSS source into a :class:`Stylesheet`; never raises."""
    source = _COMMENT_RE.sub(" ", source)
    sheet = Stylesheet(href=href)
    pos = 0
    order = 0
    length = len(source)
    while pos < length:
        while pos < length and source[pos] in " \t\r\n":
            pos += 1
        if pos >= length:
            break
        if source[pos] == "@":
            pos = _parse_at_rule(source, pos, sheet)
            continue
        brace = source.find("{", pos)
        if brace == -1:
            break  # trailing garbage
        selector_text = source[pos:brace].strip()
        end = _find_block_end(source, brace)
        body = source[brace + 1 : end]
        try:
            selectors = parse_selector(selector_text) if selector_text else None
        except ParseError:
            selectors = None
        rule = Rule(
            selector_text=selector_text,
            selectors=selectors,
            declarations=parse_declarations(body),
            source_order=order,
        )
        order += 1
        sheet.rules.append(rule)
        pos = end + 1
    return sheet


def parse_declarations(body: str) -> list[Declaration]:
    """Parse a declaration block body (text between braces)."""
    declarations: list[Declaration] = []
    for piece in _split_declarations(body):
        if ":" not in piece:
            continue
        name, _, value = piece.partition(":")
        name = name.strip().lower()
        value = value.strip()
        if not name or not value:
            continue
        important = False
        lowered = value.lower()
        if lowered.endswith("!important"):
            important = True
            value = value[: -len("!important")].rstrip().rstrip("!").rstrip()
        declarations.append(Declaration(name, value, important))
    return declarations


def _split_declarations(body: str) -> list[str]:
    """Split on ';' while respecting parentheses (url(), rgb())."""
    pieces, depth, current = [], 0, []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == ";" and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    return [piece.strip() for piece in pieces if piece.strip()]


def _find_block_end(source: str, brace: int) -> int:
    """Index of the '}' closing the block opened at ``brace``."""
    depth = 0
    for index in range(brace, len(source)):
        if source[index] == "{":
            depth += 1
        elif source[index] == "}":
            depth -= 1
            if depth == 0:
                return index
    return len(source)


def _parse_at_rule(source: str, pos: int, sheet: Stylesheet) -> int:
    """Consume one at-rule starting at ``pos``; returns the new position."""
    semicolon = source.find(";", pos)
    brace = source.find("{", pos)
    name_match = re.match(r"@([-a-zA-Z]+)", source[pos:])
    name = name_match.group(1).lower() if name_match else ""
    if brace != -1 and (semicolon == -1 or brace < semicolon):
        end = _find_block_end(source, brace)
        prelude = source[pos + 1 + len(name) : brace].strip()
        body = source[brace + 1 : end]
        sheet.at_rules.append(AtRule(name=name, prelude=prelude, body=body))
        return end + 1
    if semicolon == -1:
        return len(source)
    prelude = source[pos + 1 + len(name) : semicolon].strip()
    sheet.at_rules.append(AtRule(name=name, prelude=prelude))
    return semicolon + 1
