"""The cascade: match rules to elements and compute final styles.

Rule precedence follows the CSS 2.1 cascade for a single origin: important
declarations beat normal ones, then specificity, then source order; inline
``style`` attributes beat everything non-important.  A small user-agent
default sheet gives HTML elements their customary display types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.css.model import Declaration, Stylesheet
from repro.css.parser import parse_declarations, parse_stylesheet
from repro.css.specificity import specificity
from repro.dom.element import Element

# Properties that inherit from the parent element.
INHERITED_PROPERTIES = frozenset(
    {
        "color",
        "font-size",
        "font-family",
        "font-weight",
        "font-style",
        "line-height",
        "text-align",
        "visibility",
        "white-space",
        "list-style-type",
    }
)

# User-agent defaults for display and basic typography.
UA_SHEET = """
html, body, div, p, h1, h2, h3, h4, h5, h6, ul, ol, li, dl, dt, dd,
form, fieldset, blockquote, pre, hr, address, center, noscript {
  display: block;
}
table { display: table; }
tr { display: table-row; }
td, th { display: table-cell; }
thead, tbody, tfoot { display: table-row-group; }
caption { display: table-caption; }
head, script, style, meta, link, title, base { display: none; }
h1 { font-size: 32px; font-weight: bold; margin: 21px 0; }
h2 { font-size: 24px; font-weight: bold; margin: 19px 0; }
h3 { font-size: 19px; font-weight: bold; margin: 18px 0; }
h4 { font-size: 16px; font-weight: bold; margin: 21px 0; }
p { margin: 16px 0; }
ul, ol { margin: 16px 0; padding-left: 40px; }
b, strong, th { font-weight: bold; }
i, em { font-style: italic; }
a { color: #0000ee; }
body { margin: 8px; font-size: 16px; color: #000000; }
input, select, textarea, button { display: inline-block; }
img { display: inline-block; }
pre { white-space: pre; }
hr { margin: 8px 0; }
"""


@dataclass
class ComputedStyle:
    """Final property map for one element."""

    properties: dict[str, str] = field(default_factory=dict)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.properties.get(name, default)

    @property
    def display(self) -> str:
        return self.properties.get("display", "inline")

    @property
    def visible(self) -> bool:
        return (
            self.display != "none"
            and self.properties.get("visibility", "visible") != "hidden"
        )


@dataclass(order=True)
class _Candidate:
    important: bool
    origin: int  # 0 = UA, 1 = author, 2 = inline style
    spec: tuple[int, int, int]
    order: int
    declaration: Declaration = field(compare=False)


class StyleResolver:
    """Computes styles for a document given its stylesheets."""

    def __init__(self, stylesheets: Optional[list[Stylesheet]] = None) -> None:
        self._ua_sheet = parse_stylesheet(UA_SHEET)
        self.stylesheets = stylesheets or []
        self._cache: dict[int, ComputedStyle] = {}

    def add_stylesheet(self, sheet: Stylesheet) -> None:
        self.stylesheets.append(sheet)
        self._cache.clear()

    def computed_style(self, element: Element) -> ComputedStyle:
        """Compute the final style for ``element`` (memoized per element)."""
        cached = self._cache.get(id(element))
        if cached is not None:
            return cached
        candidates: list[_Candidate] = []
        order = 0
        for origin, sheet in self._sheets():
            for rule in sheet.rules:
                if rule.selectors is None:
                    continue
                matched = None
                for alternative in rule.selectors.alternatives:
                    if alternative.matches(element):
                        spec = specificity(alternative)
                        if matched is None or spec > matched:
                            matched = spec
                if matched is None:
                    continue
                for decl in rule.declarations:
                    candidates.append(
                        _Candidate(decl.important, origin, matched, order, decl)
                    )
                    order += 1
        inline = element.get("style")
        if inline:
            for decl in parse_declarations(inline):
                candidates.append(
                    _Candidate(decl.important, 2, (1, 0, 0), order, decl)
                )
                order += 1
        candidates.sort()
        winning: dict[str, str] = {}
        for candidate in candidates:  # later (higher-precedence) overwrite
            winning[_expand_name(candidate.declaration.name)] = (
                candidate.declaration.value
            )
            for name, value in _expand_shorthand(candidate.declaration):
                winning[name] = value
        style = self._apply_inheritance(element, winning)
        self._cache[id(element)] = style
        return style

    def _sheets(self):
        yield 0, self._ua_sheet
        for sheet in self.stylesheets:
            yield 1, sheet

    def _apply_inheritance(
        self, element: Element, winning: dict[str, str]
    ) -> ComputedStyle:
        properties = dict(winning)
        parent = element.parent
        if isinstance(parent, Element):
            parent_style = self.computed_style(parent)
            for name in INHERITED_PROPERTIES:
                if name not in properties and name in parent_style.properties:
                    properties[name] = parent_style.properties[name]
                elif properties.get(name) == "inherit":
                    properties[name] = parent_style.properties.get(name, "")
        if "display" not in properties:
            properties["display"] = "inline"
        return ComputedStyle(properties)

    def invalidate(self) -> None:
        """Drop memoized styles after DOM mutation."""
        self._cache.clear()


_SHORTHAND_SIDES = ("top", "right", "bottom", "left")


def _expand_name(name: str) -> str:
    return name.strip().lower()


def _expand_shorthand(declaration: Declaration) -> list[tuple[str, str]]:
    """Expand margin/padding shorthands into per-side longhands."""
    name = declaration.name.lower()
    if name not in ("margin", "padding"):
        if name == "border":
            width = _border_width(declaration.value)
            if width is not None:
                return [
                    (f"border-{side}-width", width) for side in _SHORTHAND_SIDES
                ]
        return []
    parts = declaration.value.split()
    if not parts:
        return []
    if len(parts) == 1:
        values = [parts[0]] * 4
    elif len(parts) == 2:
        values = [parts[0], parts[1], parts[0], parts[1]]
    elif len(parts) == 3:
        values = [parts[0], parts[1], parts[2], parts[1]]
    else:
        values = parts[:4]
    return [
        (f"{name}-{side}", value)
        for side, value in zip(_SHORTHAND_SIDES, values)
    ]


def _border_width(value: str) -> Optional[str]:
    for part in value.split():
        if part and (part[0].isdigit() or part.startswith(".")):
            return part
        if part in ("thin", "medium", "thick"):
            return {"thin": "1px", "medium": "3px", "thick": "5px"}[part]
    return None
