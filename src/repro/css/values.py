"""CSS value parsing: lengths and colors.

The layout and paint stages consume these parsed values.  Lengths resolve
against a font size (for ``em``) or a containing dimension (for ``%``);
colors resolve to RGB triples for the rasterizer.
"""

from __future__ import annotations

import re
from typing import Optional

NAMED_COLORS: dict[str, tuple[int, int, int]] = {
    "black": (0, 0, 0),
    "white": (255, 255, 255),
    "red": (255, 0, 0),
    "green": (0, 128, 0),
    "blue": (0, 0, 255),
    "yellow": (255, 255, 0),
    "orange": (255, 165, 0),
    "purple": (128, 0, 128),
    "gray": (128, 128, 128),
    "grey": (128, 128, 128),
    "silver": (192, 192, 192),
    "maroon": (128, 0, 0),
    "navy": (0, 0, 128),
    "teal": (0, 128, 128),
    "olive": (128, 128, 0),
    "lime": (0, 255, 0),
    "aqua": (0, 255, 255),
    "cyan": (0, 255, 255),
    "fuchsia": (255, 0, 255),
    "magenta": (255, 0, 255),
    "brown": (165, 42, 42),
    "tan": (210, 180, 140),
    "beige": (245, 245, 220),
    "ivory": (255, 255, 240),
    "wheat": (245, 222, 179),
    "transparent": (255, 255, 255),
}

_HEX_RE = re.compile(r"^#([0-9a-fA-F]{3}|[0-9a-fA-F]{6})$")
_RGB_RE = re.compile(
    r"^rgba?\(\s*(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*(?:,\s*[\d.]+\s*)?\)$"
)
_LENGTH_RE = re.compile(r"^(-?[\d.]+)(px|pt|em|ex|%|in|cm|mm)?$")

_PX_PER_UNIT = {
    "px": 1.0,
    "pt": 96.0 / 72.0,
    "in": 96.0,
    "cm": 96.0 / 2.54,
    "mm": 96.0 / 25.4,
}


def parse_color(value: str) -> Optional[tuple[int, int, int]]:
    """Parse a CSS color to an RGB triple; ``None`` when unrecognized."""
    value = value.strip().lower()
    named = NAMED_COLORS.get(value)
    if named is not None:
        return named
    match = _HEX_RE.match(value)
    if match:
        digits = match.group(1)
        if len(digits) == 3:
            digits = "".join(char * 2 for char in digits)
        return (
            int(digits[0:2], 16),
            int(digits[2:4], 16),
            int(digits[4:6], 16),
        )
    match = _RGB_RE.match(value)
    if match:
        return tuple(min(255, int(part)) for part in match.groups())  # type: ignore
    return None


def parse_length(
    value: str,
    font_size: float = 16.0,
    percent_base: Optional[float] = None,
) -> Optional[float]:
    """Resolve a CSS length to pixels; ``None`` for keywords like ``auto``."""
    value = value.strip().lower()
    if value in ("auto", "inherit", "initial", "normal", ""):
        return None
    match = _LENGTH_RE.match(value)
    if match is None:
        return None
    try:
        number = float(match.group(1))
    except ValueError:
        return None
    unit = match.group(2)
    if unit is None or unit == "px":
        return number
    if unit in _PX_PER_UNIT:
        return number * _PX_PER_UNIT[unit]
    if unit == "em":
        return number * font_size
    if unit == "ex":
        return number * font_size * 0.5
    if unit == "%":
        if percent_base is None:
            return None
        return number * percent_base / 100.0
    return None


def parse_font_size(value: str, parent_size: float = 16.0) -> float:
    """Font sizes support keywords and relative units."""
    keywords = {
        "xx-small": 9.0,
        "x-small": 10.0,
        "small": 13.0,
        "medium": 16.0,
        "large": 18.0,
        "x-large": 24.0,
        "xx-large": 32.0,
        "smaller": parent_size / 1.2,
        "larger": parent_size * 1.2,
    }
    value = value.strip().lower()
    if value in keywords:
        return keywords[value]
    resolved = parse_length(value, font_size=parent_size, percent_base=parent_size)
    return resolved if resolved is not None else parent_size
