"""NDJSON and SSE framings for the ops event log.

Two wire shapes over the same history (the run-event streaming spec the
design follows — SNIPPETS.md Snippet 3 — uses both):

* ``GET /ops/events.ndjson`` — the historical record: one JSON object
  per line, in sequence order.  Newline-delimited JSON is trivially
  greppable and trivially parseable back to the exact emitted events.
* ``GET /ops/events?stream=true&after_sequence=N`` — the live feed:
  ``text/event-stream`` frames (``id:``/``event:``/``data:``), each
  frame's ``id`` the event's sequence number.  A client that
  disconnects resumes by passing the last ``id`` it saw as
  ``after_sequence``; because sequences are gap-free, the reply is
  exactly the missed suffix — no duplicates, no holes.

Both framings round-trip: :func:`parse_ndjson` and :func:`parse_sse`
reconstruct the precise :class:`OpsEvent` objects that were emitted,
which is what the golden tests in ``tests/ops/`` pin.
"""

from __future__ import annotations

import json

from repro.net.messages import Request, Response
from repro.ops.events import OpsEvent, OpsEventLog

NDJSON_CONTENT_TYPE = "application/x-ndjson"
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"


# -- NDJSON ----------------------------------------------------------------

def event_to_json(event: OpsEvent) -> str:
    """One event as a canonical (sorted-key) JSON object, no newline."""
    return json.dumps(
        {
            "sequence": event.sequence,
            "type": event.type,
            "created_at": event.created_at,
            "payload": event.payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def event_from_json(text: str) -> OpsEvent:
    data = json.loads(text)
    return OpsEvent(
        sequence=data["sequence"],
        type=data["type"],
        created_at=data["created_at"],
        payload=data.get("payload", {}),
    )


def render_ndjson(events: list[OpsEvent]) -> str:
    """The events as NDJSON, one line each (trailing newline included)."""
    return "".join(event_to_json(event) + "\n" for event in events)


def parse_ndjson(text: str) -> list[OpsEvent]:
    return [
        event_from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]


# -- SSE -------------------------------------------------------------------

def render_sse(events: list[OpsEvent]) -> str:
    """The events as ``text/event-stream`` frames.

    Each frame carries the sequence as its ``id`` (what a real
    ``EventSource`` would hand back as ``Last-Event-ID``), the event
    type as the ``event`` field, and the full canonical JSON object as
    ``data`` — so an SSE consumer reconstructs the identical event the
    NDJSON consumer would.
    """
    frames = []
    for event in events:
        frames.append(
            f"id: {event.sequence}\n"
            f"event: {event.type}\n"
            f"data: {event_to_json(event)}\n"
            "\n"
        )
    return "".join(frames)


def parse_sse(text: str) -> list[OpsEvent]:
    """Parse ``text/event-stream`` frames back to the emitted events.

    Tolerates the parts of the SSE grammar we never emit but a proxy
    might inject: comment lines (``:``), ``retry:`` fields, and extra
    blank lines between frames.
    """
    events: list[OpsEvent] = []
    data_lines: list[str] = []
    for line in text.split("\n"):
        if line.startswith(":"):
            continue  # SSE comment / keep-alive
        if line == "":
            if data_lines:
                events.append(event_from_json("\n".join(data_lines)))
                data_lines = []
            continue
        field, _, value = line.partition(":")
        if field == "data":
            data_lines.append(value.removeprefix(" "))
    if data_lines:
        events.append(event_from_json("\n".join(data_lines)))
    return events


# -- the /ops endpoints ----------------------------------------------------

def ops_events_response(log: OpsEventLog, request: Request) -> Response:
    """Serve one ``/ops/events`` request off the log.

    * ``…/events.ndjson`` → the full retained history as NDJSON.
    * ``…/events?stream=true[&after_sequence=N]`` → SSE frames for
      every retained event after ``N`` (default 0).  The in-process
      request/response model has no long-lived connection to hold open,
      so "live" means *the suffix available right now*; a client
      resumes by re-requesting with the last ``id`` it saw, and the
      gap-free sequence guarantees the reply is exactly what it missed.
    * ``…/events`` (no stream) → a JSON snapshot: log status plus the
      retained events.
    """
    if request.url.path.endswith(".ndjson"):
        events, _ = log.events_after(0)
        return Response.binary(
            render_ndjson(events).encode("utf-8"), NDJSON_CONTENT_TYPE
        )
    if request.params.get("stream") in ("true", "1"):
        try:
            after = int(request.params.get("after_sequence") or 0)
        except ValueError:
            return Response.text(
                "after_sequence must be an integer", status=400
            )
        events, truncated = log.events_after(after)
        body = ""
        if truncated:
            # The client's offset predates retention: tell it so (an
            # SSE comment keeps the stream parseable) — it should
            # restart from 0 and accept the missing prefix.
            body += ": truncated — events before "
            body += f"{events[0].sequence if events else log.head_seq + 1} "
            body += "aged out of retention\n\n"
        body += render_sse(events)
        return Response.binary(body.encode("utf-8"), SSE_CONTENT_TYPE)
    events, _ = log.events_after(0)
    snapshot = {
        "status": log.status(),
        "events": [json.loads(event_to_json(event)) for event in events],
    }
    return Response.binary(
        json.dumps(snapshot, indent=2, sort_keys=True).encode("utf-8"),
        "application/json; charset=utf-8",
    )
