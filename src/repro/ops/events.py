"""The fleet-wide operations event log.

``/cluster`` and ``/regions`` are point-in-time snapshots: a test (or
an operator) polling them sees only the state that happens to hold at
the scrape instant, and transient facts — a breaker that opened and
closed between two polls, a worker that drained away, the exact order
of a failover — are simply invisible.  The ops log replaces polling
with **history**: every operationally meaningful state change appends
one :class:`OpsEvent` with a strictly monotonic, gap-free sequence
number, and consumers assert on *what happened* instead of what is.

The log follows the same discipline as the CDC
:class:`InvalidationLog <repro.regions.cdclog.InvalidationLog>`:
append-only, bounded retention, and :meth:`OpsEventLog.events_after`
returning ``(suffix, truncated)`` so a consumer that fell behind the
retention window knows it cannot reconstruct the gap.  That contract is
what makes the SSE ``after_sequence`` resume semantics (see
:mod:`repro.ops.stream`) exact: reconnecting with the last sequence you
saw replays precisely the missed suffix — no duplicates, no holes.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability.metrics import MetricsRegistry

# -- event taxonomy --------------------------------------------------------

#: The autoscaler changed (or declined to change) the fleet size.
SCALE_DECISION = "scale_decision"
#: A worker joined the routed fleet.
WORKER_ATTACHED = "worker_attached"
#: A worker stopped admission and left the router (shards remapped).
WORKER_DRAINING = "worker_draining"
#: A drained worker finished its in-flight work and left the fleet.
WORKER_DETACHED = "worker_detached"
#: A circuit breaker moved between closed/open/half_open.
BREAKER_TRANSITION = "breaker_transition"
#: A request was served through a degradation-ladder rung.
DEGRADATION = "degradation"
#: A cache invalidation was published on the fleet bus.
INVALIDATION = "invalidation"
#: A render-farm consumer was added by the autoscaler.
CONSUMER_STARTED = "consumer_started"
#: A render-farm consumer was retired by the autoscaler.
CONSUMER_RETIRED = "consumer_retired"
#: A render-farm consumer died to an injected mid-render crash.
CONSUMER_CRASHED = "consumer_crashed"
#: A render key was quarantined in the dead-letter lane.
DEAD_LETTER = "dead_letter"
#: Region lifecycle (multi-region deployments).
REGION_KILLED = "region_killed"
REGION_REVIVED = "region_revived"
REGION_PARTITIONED = "region_partitioned"
REGION_HEALED = "region_healed"
REGION_FAILOVER = "region_failover"
REGION_RESYNC = "region_resync"

EVENT_TYPES = frozenset({
    SCALE_DECISION,
    WORKER_ATTACHED,
    WORKER_DRAINING,
    WORKER_DETACHED,
    BREAKER_TRANSITION,
    DEGRADATION,
    INVALIDATION,
    CONSUMER_STARTED,
    CONSUMER_RETIRED,
    CONSUMER_CRASHED,
    DEAD_LETTER,
    REGION_KILLED,
    REGION_REVIVED,
    REGION_PARTITIONED,
    REGION_HEALED,
    REGION_FAILOVER,
    REGION_RESYNC,
})


@dataclass(frozen=True)
class OpsEvent:
    """One entry in the ops event log.

    ``payload`` holds JSON-primitive values only (str/int/float/bool/
    None), so an event round-trips exactly through the NDJSON and SSE
    framings in :mod:`repro.ops.stream`.
    """

    sequence: int
    type: str
    created_at: float
    payload: dict[str, Any] = field(default_factory=dict)


class OpsEventLog:
    """Append-only, bounded, strictly-sequenced operations stream."""

    def __init__(
        self,
        retention: int = 8192,
        clock: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if retention < 1:
            raise ValueError("retention must be at least 1 event")
        self.retention = retention
        self.clock = clock
        self._lock = threading.Lock()
        self._events: deque[OpsEvent] = deque()
        self._seq = 0
        registry = metrics or MetricsRegistry()
        self._registry = registry
        self._head_gauge = registry.gauge(
            "msite_ops_head_seq",
            "Highest sequence number appended to the ops event log.",
        )
        self._retained_gauge = registry.gauge(
            "msite_ops_retained_events",
            "Events currently retained by the ops event log.",
        )
        self._dropped = registry.counter(
            "msite_ops_dropped_total",
            "Ops events aged out of the log by the retention bound.",
        )
        self._truncated_reads = registry.counter(
            "msite_ops_truncated_reads_total",
            "events_after() calls from an offset older than retention.",
        )

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def emit(self, type: str, **payload: Any) -> OpsEvent:
        """Append one event; sequence numbers are gap-free under races.

        The sequence is assigned and the event stored under one lock,
        so sixteen threads emitting concurrently still produce a
        strictly monotonic, hole-free stream — the property the chaos
        suites and the SSE resume contract both lean on.
        """
        with self._lock:
            self._seq += 1
            event = OpsEvent(
                sequence=self._seq,
                type=type,
                created_at=self._now,
                payload=payload,
            )
            self._events.append(event)
            while len(self._events) > self.retention:
                self._events.popleft()
                self._dropped.inc()
            self._head_gauge.set(self._seq)
            self._retained_gauge.set(len(self._events))
        self._registry.counter(
            "msite_ops_events_total",
            "Ops events appended, by type.",
            labels={"type": type},
        ).inc()
        return event

    @property
    def head_seq(self) -> int:
        with self._lock:
            return self._seq

    @property
    def earliest_seq(self) -> Optional[int]:
        """Sequence of the oldest retained event, or ``None`` if empty."""
        with self._lock:
            return self._events[0].sequence if self._events else None

    def events_after(self, offset: int) -> tuple[list[OpsEvent], bool]:
        """``(events with sequence > offset, truncated)``.

        ``truncated=True`` means events between ``offset`` and the
        oldest retained one have aged out; the consumer cannot
        reconstruct the gap and should restart from ``events_after(0)``
        (accepting that the prefix is history it can no longer see).
        """
        with self._lock:
            earliest = (
                self._events[0].sequence if self._events else self._seq + 1
            )
            truncated = offset < earliest - 1
            events = [e for e in self._events if e.sequence > offset]
        if truncated:
            self._truncated_reads.inc()
        return events, truncated

    def events_of(self, *types: str) -> list[OpsEvent]:
        """Every retained event whose type is in ``types``, in order."""
        wanted = frozenset(types)
        with self._lock:
            return [e for e in self._events if e.type in wanted]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def status(self) -> dict:
        with self._lock:
            return {
                "head_seq": self._seq,
                "retained": len(self._events),
                "earliest_seq": (
                    self._events[0].sequence if self._events else None
                ),
                "retention": self.retention,
            }

    def __repr__(self) -> str:
        return (
            f"OpsEventLog(head={self.head_seq}, "
            f"retained={len(self)}/{self.retention})"
        )
