"""Exception hierarchy shared across the m.Site reproduction.

Every error raised by this package derives from :class:`MSiteError`, so
callers embedding the proxy can catch one base class at the integration
boundary.
"""


class MSiteError(Exception):
    """Base class for all errors raised by this package."""


class AdaptationError(MSiteError):
    """An attribute or transform could not be applied to a page."""


class IdentificationError(AdaptationError):
    """An object selector failed to identify its target on the page."""


class FetchError(MSiteError):
    """The proxy could not download the originating page."""


class TransientFetchError(FetchError):
    """A transport-level fetch failure that is worth retrying.

    Refused connections, hangs killed by a watchdog, and corrupt
    payloads land here; a *definitive* origin answer (an HTTP 4xx/5xx
    status, a redirect loop) stays a plain :class:`FetchError` — the
    origin spoke, and repeating the question would not change the
    answer.  :class:`repro.resilience.RetryPolicy` retries only this
    subclass by default.
    """


class RetryExhaustedError(FetchError):
    """Every retry attempt against the origin failed.

    Raised by :class:`repro.resilience.RetryPolicy` once the bounded
    attempt count (or the retry budget) is spent; ``__cause__`` carries
    the last underlying failure.  The proxy maps it to **504 Gateway
    Timeout** — the origin was given every chance and never answered.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class DegradedServeError(MSiteError):
    """The graceful-degradation ladder ran out of rungs.

    Raised when a failed fetch/render could not be papered over with a
    stale snapshot or an HTML-only fallback.  The proxy maps it to
    **503 Service Unavailable** with a ``Retry-After`` header — an
    honest "come back later" rather than a misleading 5xx stack trace.
    Successful degraded serves are *not* errors: they go out as 200 with
    an ``X-MSite-Degraded`` marker header (the 206-style partial-service
    signal).
    """


class RenderError(MSiteError):
    """The server-side rendering engine failed to produce output."""


class SessionError(MSiteError):
    """A mobile session is missing, expired, or otherwise invalid."""


class ParseError(MSiteError):
    """Input (HTML, CSS, XPath, selector, URL) could not be parsed."""


class CodegenError(MSiteError):
    """The proxy code generator was given an inconsistent spec."""


class ConcurrencyError(MSiteError):
    """The concurrent runtime rejected or could not complete a request."""


class AdmissionError(ConcurrencyError):
    """The executor's bounded admission queue is full."""


class PoolTimeoutError(ConcurrencyError):
    """Waiting for a pooled browser instance exceeded the timeout."""


class RenderFarmError(ConcurrencyError):
    """The render farm could not produce the requested render.

    Base class for every farm-side refusal.  The pipeline treats a farm
    refusal exactly like a failed render: it degrades down the ladder
    (stale snapshot, then HTML-only) instead of surfacing a 5xx — the
    farm sheds load, the ladder absorbs it.
    """


class FarmSaturatedError(RenderFarmError):
    """The farm's bounded queue is full (or the wait deadline passed).

    Backpressure, not failure: the queue refused to grow without bound.
    Callers fall back to stale/HTML-only output rather than parking a
    request thread behind an unbounded render backlog.
    """


class DeadLetterError(RenderFarmError):
    """The render key is parked in the dead-letter lane.

    Jobs that fail repeatedly (or poison a browser instance) are
    quarantined; further submissions for the same key are refused
    immediately until the dead-letter TTL expires, at which point a
    single speculative-lane probe is allowed back in.
    """


class CircuitOpenError(ConcurrencyError):
    """A circuit breaker is open and short-circuited the call.

    Raised *before* any expensive work happens (no pool slot is
    consumed, no origin connection is attempted).  ``retry_after_s``
    estimates when the breaker will admit a half-open probe; the proxy
    maps this to **503 Service Unavailable** with a ``Retry-After``
    header carrying that estimate.
    """

    def __init__(
        self, message: str, retry_after_s: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
