"""Exception hierarchy shared across the m.Site reproduction.

Every error raised by this package derives from :class:`MSiteError`, so
callers embedding the proxy can catch one base class at the integration
boundary.
"""


class MSiteError(Exception):
    """Base class for all errors raised by this package."""


class AdaptationError(MSiteError):
    """An attribute or transform could not be applied to a page."""


class IdentificationError(AdaptationError):
    """An object selector failed to identify its target on the page."""


class FetchError(MSiteError):
    """The proxy could not download the originating page."""


class RenderError(MSiteError):
    """The server-side rendering engine failed to produce output."""


class SessionError(MSiteError):
    """A mobile session is missing, expired, or otherwise invalid."""


class ParseError(MSiteError):
    """Input (HTML, CSS, XPath, selector, URL) could not be parsed."""


class CodegenError(MSiteError):
    """The proxy code generator was given an inconsistent spec."""


class ConcurrencyError(MSiteError):
    """The concurrent runtime rejected or could not complete a request."""


class AdmissionError(ConcurrencyError):
    """The executor's bounded admission queue is full."""


class PoolTimeoutError(ConcurrencyError):
    """Waiting for a pooled browser instance exceeded the timeout."""
