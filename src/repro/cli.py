"""Command-line interface for the m.Site tooling.

The admin-facing entry points a deployment actually uses:

* ``attributes`` — print the attribute menu (name + description),
* ``validate``   — check a spec JSON for consistency,
* ``generate``   — emit proxy shell source from a spec JSON,
* ``demo``       — run the built-in forum mobilization end to end and
  print what the proxy produced,
* ``metrics``    — drive the forum demo and print the deployment's
  Prometheus exposition (``GET /metrics``),
* ``trace``      — drive the forum demo and print the JSON dump of
  recent request traces (``GET /traces``),
* ``scalability`` — the Figure 7 sweep: the discrete-event model by
  default, or ``--real`` to drive actual threads through the concurrent
  runtime and report queue-wait / stampede-suppression metrics,
* ``chaos``      — drive the forum demo through a seeded fault schedule
  (failed/hung renders and origin fetches) and print the degradation
  report; exits non-zero if any request leaked a 500.

Run as ``python -m repro.cli <command>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.attributes import attribute_menu
from repro.core.codegen import generate_proxy_source
from repro.core.spec import AdaptationSpec
from repro.errors import MSiteError


def _cmd_attributes(args: argparse.Namespace) -> int:
    menu = attribute_menu()
    width = max(len(name) for name, __ in menu)
    for name, description in menu:
        print(f"{name:<{width}}  {description}")
    return 0


def _load_spec(path: str) -> AdaptationSpec:
    with open(path, "r", encoding="utf-8") as handle:
        return AdaptationSpec.from_json(handle.read())


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
        spec.validate()
    except (OSError, ValueError, KeyError, MSiteError) as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 1
    print(
        f"ok: {spec.site} ({len(spec.bindings)} bindings, "
        f"entry http://{spec.origin_host}{spec.page_path})"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
        source = generate_proxy_source(spec, proxy_base=args.proxy_base)
    except (OSError, ValueError, KeyError, MSiteError) as exc:
        print(f"generation failed: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({len(source)} bytes)")
    else:
        print(source)
    return 0


def _build_forum_spec():
    """The built-in SawmillCreek spec plus its origin map.

    The single-proxy demo, the chaos harness, and the multi-region
    deployments all mobilize this same site.
    """
    from repro.core.spec import ObjectSelector
    from repro.sites.forum.app import ForumApplication

    origins = {"www.sawmillcreek.org": ForumApplication()}
    spec = AdaptationSpec(site="SawmillCreek",
                          origin_host="www.sawmillcreek.org")
    spec.add("prerender")
    spec.add("cacheable", ttl_s=3600)
    spec.add("subpage", ObjectSelector.css("#loginform"),
             subpage_id="login", title="Log in")
    spec.add("subpage", ObjectSelector.css("#forumbits"),
             subpage_id="forums", title="Forums")
    return spec, origins


def _build_forum_proxy():
    """The built-in SawmillCreek mobilization, plus a mobile client.

    Shared by ``demo``, ``metrics``, and ``trace`` so each subcommand
    observes the same deployment the demo exercises.
    """
    from repro.core.codegen import load_generated_proxy
    from repro.core.pipeline import ProxyServices
    from repro.net.client import HttpClient
    from repro.net.cookies import CookieJar

    spec, origins = _build_forum_spec()
    proxy = load_generated_proxy(generate_proxy_source(spec)).create_proxy(
        ProxyServices(origins=origins)
    )
    mobile = HttpClient({"m.sawmillcreek.org": proxy}, jar=CookieJar())
    return proxy, mobile


def _cmd_demo(args: argparse.Namespace) -> int:
    proxy, mobile = _build_forum_proxy()
    entry = mobile.get("http://m.sawmillcreek.org/proxy.php")
    snapshot = mobile.get(
        "http://m.sawmillcreek.org/proxy.php?file=snapshot.jpg"
    )
    print("m.Site demo: mobilized the synthetic SawmillCreek forum")
    print(f"  entry page:     {len(entry.body):>7,} bytes "
          f"(original: 224,477)")
    print(f"  snapshot image: {len(snapshot.body):>7,} bytes")
    print(f"  map regions:    {entry.text_body.count('<area'):>7}")
    print(f"  counters:       {proxy.counters}")
    return 0


def _drive_forum(proxy, mobile, requests: int) -> None:
    """Issue a small representative workload against the forum proxy."""
    paths = ["", "?page=forums", "?file=snapshot.jpg", "?page=login"]
    for index in range(max(1, requests)):
        mobile.get(
            "http://m.sawmillcreek.org/proxy.php"
            + paths[index % len(paths)]
        )


def _cmd_metrics(args: argparse.Namespace) -> int:
    proxy, mobile = _build_forum_proxy()
    _drive_forum(proxy, mobile, args.requests)
    response = mobile.get("http://m.sawmillcreek.org/metrics")
    print(response.text_body, end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    proxy, mobile = _build_forum_proxy()
    _drive_forum(proxy, mobile, args.requests)
    response = mobile.get("http://m.sawmillcreek.org/traces")
    print(response.text_body)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.region_faults:
        return _cmd_region_chaos(args)
    from repro.resilience.chaos import format_report, run_chaos

    try:
        report = run_chaos(
            seed=args.seed,
            requests=args.requests,
            render_failure_rate=args.render_fail,
            origin_failure_rate=args.origin_fail,
            garbage_rate=args.garbage,
            warm=not args.cold,
            farm_faults=args.farm_faults,
            farm_consumers=args.farm_consumers,
        )
    except (ValueError, MSiteError) as exc:
        print(f"chaos run failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    if report.internal_errors:
        print(
            f"FAIL: {report.internal_errors} requests leaked a 500",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_region_chaos(args: argparse.Namespace) -> int:
    """``msite chaos --region-faults [--smoke]``: kill one of two
    regions mid-workload and hold the run to zero non-degraded 5xx plus
    a fully-replayed invalidation log."""
    from repro.regions.chaos import format_region_report, run_region_chaos

    requests = min(args.requests, 60) if args.smoke else args.requests
    try:
        report = run_region_chaos(seed=args.seed, requests=requests)
    except (ValueError, MSiteError) as exc:
        print(f"region chaos run failed: {exc}", file=sys.stderr)
        return 1
    print(format_region_report(report))
    failed = False
    if report.non_degraded_5xx:
        print(
            f"FAIL: {report.non_degraded_5xx} non-degraded 5xx leaked "
            "through the failover",
            file=sys.stderr,
        )
        failed = True
    if not report.replay_caught_up:
        print(
            f"FAIL: healed region did not replay to the live offset "
            f"(head {report.log_head}, acked {report.acked})",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_bench_regions(args: argparse.Namespace) -> int:
    """``msite bench-regions``: measure warm-failover latency and the
    disk warm-start fraction; upsert the ``region_failover`` row."""
    from repro.bench.regions import format_report, run_region_failover_bench

    try:
        report = run_region_failover_bench(smoke=args.smoke)
    except (ValueError, MSiteError) as exc:
        print(f"bench-regions run failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    failed = False
    if report.warm_start_fraction < 0.9:
        print(
            f"FAIL: warm restart recovered only "
            f"{report.warm_start_fraction * 100:.0f}% of the working set "
            "from disk (need >= 90%)",
            file=sys.stderr,
        )
        failed = True
    if not args.smoke and report.wrong_over_owner_p99 > 25.0:
        print(
            f"FAIL: wrong-region p99 is {report.wrong_over_owner_p99:.1f}x "
            "the owner-region p99 — failover is not warm",
            file=sys.stderr,
        )
        failed = True
    if args.output and not args.smoke:
        from repro.bench.store import upsert_row

        upsert_row(
            args.output, "region_failover", report.key, report.bench_row()
        )
        print(f"wrote {args.output} (region_failover.{report.key})")
    return 1 if failed else 0


def _cmd_bench_adapt(args: argparse.Namespace) -> int:
    import json

    from repro.bench.hotpath import format_report, run_hotpath_bench

    try:
        results = run_hotpath_bench(requests=args.requests)
    except (ValueError, MSiteError) as exc:
        print(f"bench-adapt run failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(results))
    if args.output:
        _merge_json_report(args.output, results)
        print(f"wrote {args.output}")
    if args.require_hits and results["warm"]["fastpath_hit_ratio"] <= 0:
        print(
            "FAIL: warm forum workload never hit the fast path",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_delta(args: argparse.Namespace) -> int:
    from repro.bench.delta import format_report, run_delta_bench

    requests = 60 if args.smoke else args.requests
    try:
        results = run_delta_bench(requests=requests, churn=args.churn)
    except (RuntimeError, ValueError, MSiteError) as exc:
        print(f"bench-delta run failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(results))
    delta = results["delta"]
    failed = False
    if delta.get("delta_applied", 0) <= 0:
        print(
            "FAIL: the churn workload never took the delta patch path",
            file=sys.stderr,
        )
        failed = True
    if not args.smoke and results["readapt_speedup"] < args.min_speedup:
        print(
            f"FAIL: re-adaptation p50 speedup is "
            f"{results['readapt_speedup']:.1f}x "
            f"(need >= {args.min_speedup:.1f}x over full replay)",
            file=sys.stderr,
        )
        failed = True
    if args.output and not args.smoke:
        from repro.bench.store import upsert_row

        key = f"churn{round(args.churn * 100)}pct@{requests}"
        row = {
            "requests": requests,
            "churn": args.churn,
            "byte_identical": results["byte_identical"],
            "readapt_speedup": round(results["readapt_speedup"], 2),
            "delta_readapt_p50_ms": round(delta["readapt_p50_ms"], 3),
            "full_readapt_p50_ms": round(
                results["full"]["readapt_p50_ms"], 3
            ),
            "delta_applied": delta.get("delta_applied", 0),
            "delta_fallbacks": delta.get("delta_fallbacks", 0),
            "patched_segments": delta.get("delta_patched_segments", 0),
            "session_wire_fraction": round(
                results["session"]["wire_fraction"], 4
            ),
        }
        upsert_row(args.output, "delta_churn", key, row)
        print(f"wrote {args.output} (delta_churn.{key})")
    return 1 if failed else 0


def _cmd_bench_autoscale(args: argparse.Namespace) -> int:
    from repro.bench.autoscale import (
        AutoscaleBenchConfig,
        format_comparison,
        run_autoscale_comparison,
        smoke_config,
    )

    config = smoke_config() if args.smoke else AutoscaleBenchConfig()
    try:
        comparison = run_autoscale_comparison(config)
    except (RuntimeError, ValueError, MSiteError) as exc:
        print(f"bench-autoscale run failed: {exc}", file=sys.stderr)
        return 1
    print(format_comparison(comparison))
    auto = comparison.autoscaled
    failed = False
    if auto.non_degraded_5xx:
        print(
            f"FAIL: autoscaled fleet returned {auto.non_degraded_5xx} "
            f"non-degraded 5xx under the crowd",
            file=sys.stderr,
        )
        failed = True
    if auto.p99_ms > config.p99_budget_ms:
        print(
            f"FAIL: autoscaled p99 {auto.p99_ms:.1f} ms over the "
            f"{config.p99_budget_ms:.0f} ms budget",
            file=sys.stderr,
        )
        failed = True
    if auto.peak_workers <= config.start_workers:
        print(
            "FAIL: the controller never scaled the fleet above its "
            f"starting size ({config.start_workers})",
            file=sys.stderr,
        )
        failed = True
    if not args.smoke and comparison.static.non_degraded_5xx <= 0:
        print(
            "FAIL: the static fleet absorbed the crowd without "
            "rejecting — the flash crowd is not saturating",
            file=sys.stderr,
        )
        failed = True
    if args.output and not args.smoke:
        _merge_json_report(args.output, comparison.bench_record())
        print(f"wrote {args.output} (autoscale_flashcrowd)")
    return 1 if failed else 0


def _cmd_autoscale_demo(args: argparse.Namespace) -> int:
    """A deterministic, sim-clock tour of the control loop.

    No threads, no fleet: a scripted flash-crowd metric trace drives
    the controller in decide-only mode while the demo book-keeps the
    simulated fleet size, then dumps the resulting ops event log as
    NDJSON — the same lines ``/ops/events.ndjson`` serves.
    """
    from repro.autoscale import Autoscaler, AutoscalerConfig, ControllerInputs
    from repro.ops import OpsEventLog
    from repro.ops.stream import render_ndjson
    from repro.sim.clock import Clock

    # Queue depth / farm backlog per tick: calm, crowd, calm.
    queue_trace = [0, 1, 9, 24, 40, 36, 22, 9, 2, 1, 0, 0, 0, 0, 0, 0]
    backlog_trace = [0, 0, 3, 8, 12, 10, 6, 3, 1, 0, 0, 0, 0, 0, 0, 0]

    clock = Clock()
    ops = OpsEventLog(clock=clock)
    config = AutoscalerConfig(
        min_workers=1,
        max_workers=4,
        min_consumers=1,
        max_consumers=4,
        interval_s=0.25,
        cooldown_up_s=0.25,
        cooldown_down_s=1.0,
    )
    fleet = {"workers": 1, "consumers": 1}
    step = [0]

    def sample() -> ControllerInputs:
        index = min(step[0], len(queue_trace) - 1)
        return ControllerInputs(
            workers=fleet["workers"],
            queue_depth=queue_trace[index],
            consumers=fleet["consumers"],
            farm_backlog=backlog_trace[index],
        )

    scaler = Autoscaler(
        config=config, clock=clock, ops=ops, sampler=sample
    )
    print(
        f"{'t':>5}  {'queue':>5}  {'backlog':>7}  {'fleet':>7}  decision"
    )
    for tick in range(args.ticks):
        step[0] = tick
        inputs = sample()
        decision = scaler.tick()
        if decision.action != "hold":
            delta = 1 if decision.action == "up" else -1
            fleet[decision.target] += delta
        print(
            f"{clock.now:>5.2f}  {inputs.queue_depth:>5}  "
            f"{inputs.farm_backlog:>7}  "
            f"{fleet['workers']}w/{fleet['consumers']}c".rjust(7)
            + f"  {decision.action:<4} {decision.target:<9} "
            f"{decision.reason}"
        )
        clock.advance(config.interval_s)
    events, _ = ops.events_after(0)
    print(f"\nops event log ({len(events)} events, NDJSON):")
    print(render_ndjson(events), end="")
    return 0


def _merge_json_report(path: str, updates: dict) -> None:
    """Update ``path`` with ``updates``, preserving other top-level keys.

    BENCH_pipeline.json is shared by ``bench-adapt``, the cluster
    scalability sweep, and every workload scenario; the store module
    locks the file, merges keyed rows recursively, and replaces it
    atomically so concurrent or repeated runs never duplicate or
    clobber each other's entries.
    """
    from repro.bench.store import merge_report

    merge_report(path, updates)


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload import format_report, run_scenario, scenario_names
    from repro.workload.scenarios import get_scenario

    if args.list:
        for name in scenario_names():
            scenario = get_scenario(name)
            print(f"{name:<16} [{scenario.site}] {scenario.description}")
        return 0
    if not args.scenario:
        print("workload: --scenario NAME or --list required", file=sys.stderr)
        return 2
    try:
        report = run_scenario(
            args.scenario,
            workers=args.workers,
            seed=args.seed,
            smoke=args.smoke,
            client_threads=args.clients,
            autoscale=args.autoscale,
            min_workers=args.min_workers,
        )
    except (KeyError, ValueError, MSiteError) as exc:
        print(f"workload run failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    if args.output:
        from repro.bench.store import upsert_row

        key = f"{report.scenario}@{report.fingerprint}"
        upsert_row(args.output, "workload", key, report.bench_row())
        print(f"wrote {args.output} (workload.{key})")
    failed = False
    if report.non_degraded_5xx:
        print(
            f"FAIL: {report.non_degraded_5xx} non-degraded 5xx at warm "
            f"cache",
            file=sys.stderr,
        )
        failed = True
    if args.p99_budget_ms > 0 and report.p99_ms > args.p99_budget_ms:
        print(
            f"FAIL: p99 {report.p99_ms:.1f} ms over the "
            f"{args.p99_budget_ms:.0f} ms budget",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    try:
        return _run_scalability(args)
    except (ValueError, MSiteError) as exc:
        print(f"scalability run failed: {exc}", file=sys.stderr)
        return 1


def _run_scalability(args: argparse.Namespace) -> int:
    if args.farm:
        return _run_farm_burst(args)
    percentages = (
        [float(p) for p in args.percentages.split(",")]
        if args.percentages
        else None
    )
    if args.workers is not None and not args.real:
        return _run_cluster_scalability(args, percentages)
    if args.real:
        from repro.bench.scalability import run_real_threadpool_sweep

        results = run_real_threadpool_sweep(
            percentages,
            workers=args.workers or 8,
            client_threads=args.clients,
            total_requests=args.requests,
            browser_service_s=args.browser_service_s,
        )
        print(
            "Figure 7 (real thread pool): "
            f"{args.workers or 8} workers, {args.clients} clients, "
            f"{args.requests} requests per point"
        )
        print(
            f"{'browser%':>8}  {'req/min':>12}  {'renders':>7}  "
            f"{'collapsed':>9}  {'q-wait ms':>9}  {'pool waits':>10}"
        )
        for result in results:
            print(
                f"{result.browser_fraction * 100:>7.0f}%  "
                f"{result.requests_per_minute:>12,.0f}  "
                f"{result.renders:>7}  "
                f"{result.stampedes_suppressed:>9}  "
                f"{result.queue_wait_mean_s * 1e3:>9.3f}  "
                f"{result.pool_queue_waits:>10}"
            )
        return 0

    from repro.bench.scalability import run_browser_percentage_sweep

    results = run_browser_percentage_sweep(percentages, use_pool=args.pool)
    print(
        "Figure 7 (discrete-event model): 2 cores, "
        f"pool={'on' if args.pool else 'off'}"
    )
    print(f"{'browser%':>8}  {'req/min':>12}  {'browser':>8}  {'light':>8}")
    for result in results:
        print(
            f"{result.browser_fraction * 100:>7.0f}%  "
            f"{result.mean_requests_per_minute:>12,.0f}  "
            f"{result.browser_requests:>8}  "
            f"{result.lightweight_requests:>8}"
        )
    return 0


def _run_farm_burst(args: argparse.Namespace) -> int:
    """The bursty (open-loop) Figure 7 variant: ``--farm [--smoke]``.

    Replays one seeded flash crowd against the inline-render seed
    architecture and against the render farm, and holds the farm side
    to zero non-degraded 5xx.  The full run additionally requires the
    inline baseline to saturate admission under the identical schedule
    (otherwise the burst was not a burst) and merge-writes the
    ``renderfarm_burst`` record into BENCH_pipeline.json.
    """
    from repro.bench.burst import (
        format_comparison,
        run_burst_comparison,
        smoke_config,
    )

    smoke = getattr(args, "smoke", False)
    comparison = run_burst_comparison(smoke_config() if smoke else None)
    print(format_comparison(comparison))
    failed = False
    if comparison.farm.non_degraded_5xx:
        print(
            f"FAIL: farm served {comparison.farm.non_degraded_5xx} "
            "non-degraded 5xx under the burst",
            file=sys.stderr,
        )
        failed = True
    if not smoke and comparison.inline.non_degraded_5xx == 0:
        print(
            "FAIL: inline baseline absorbed the burst without refusals — "
            "the schedule is not saturating; raise the peak rate",
            file=sys.stderr,
        )
        failed = True
    if args.output and not smoke:
        _merge_json_report(args.output, comparison.bench_record())
        print(f"wrote {args.output}")
    return 1 if failed else 0


def _run_cluster_scalability(
    args: argparse.Namespace, percentages: Optional[list[float]]
) -> int:
    """The Figure 7 sweep per fleet size (``--workers N`` cluster mode)."""
    from dataclasses import asdict

    from repro.bench.scalability import run_cluster_sweep

    smoke = getattr(args, "smoke", False)
    if percentages is None:
        percentages = [1.0, 0.0] if smoke else [1.0, 0.50, 0.25, 0.10, 0.0]
    total_requests = 200 if smoke else args.requests
    fleet_sizes = (
        (1,) if args.workers == 1 else (1, args.workers)
    )
    sweep = run_cluster_sweep(
        percentages,
        fleet_sizes=fleet_sizes,
        client_threads=args.clients if args.clients != 8 else 16,
        total_requests=total_requests,
    )
    print(
        f"Figure 7 (cluster): fleet sizes {list(fleet_sizes)}, "
        f"{total_requests} requests per point, shared render cache"
    )
    failed = False
    for fleet in fleet_sizes:
        print(f"-- {fleet} worker{'s' if fleet != 1 else ''}")
        print(
            f"{'browser%':>8}  {'req/min':>12}  {'renders':>7}  "
            f"{'unique':>6}  {'collapsed':>9}  {'spill':>6}  {'offshard':>8}"
        )
        for result in sweep[fleet]:
            print(
                f"{result.browser_fraction * 100:>7.0f}%  "
                f"{result.requests_per_minute:>12,.0f}  "
                f"{result.renders:>7}  "
                f"{result.unique_render_keys:>6}  "
                f"{result.stampedes_suppressed:>9}  "
                f"{result.spillovers:>6}  "
                f"{result.offshard:>8}"
            )
            if result.renders != result.unique_render_keys:
                failed = True
                print(
                    f"FAIL: {result.renders} renders for "
                    f"{result.unique_render_keys} unique (page, device) "
                    f"pairs — duplicate renders in the fleet",
                    file=sys.stderr,
                )
    speedup = None
    if len(fleet_sizes) > 1:
        base = {r.browser_fraction: r for r in sweep[1]}
        top = {r.browser_fraction: r for r in sweep[fleet_sizes[-1]]}
        zero = min(base)  # the lowest browser fraction measured
        if base[zero].requests_per_minute:
            speedup = (
                top[zero].requests_per_minute
                / base[zero].requests_per_minute
            )
            print(
                f"speedup at {zero * 100:.0f}% browser: "
                f"{speedup:.2f}x ({fleet_sizes[-1]} workers vs 1)"
            )
    if args.output and not smoke:
        record = {
            "cluster_scalability": {
                "fleet_workers": args.workers,
                "percentages": percentages,
                "requests_per_point": total_requests,
                "speedup_at_lowest_browser_fraction": speedup,
                "sweep": {
                    str(fleet): [asdict(result) for result in sweep[fleet]]
                    for fleet in fleet_sizes
                },
            }
        }
        _merge_json_report(args.output, record)
        print(f"wrote {args.output}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="msite",
        description="m.Site content-adaptation tooling (Middleware 2012 "
        "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "attributes", help="list the attribute menu"
    ).set_defaults(fn=_cmd_attributes)

    validate = commands.add_parser(
        "validate", help="validate a spec JSON file"
    )
    validate.add_argument("spec", help="path to the spec JSON")
    validate.set_defaults(fn=_cmd_validate)

    generate = commands.add_parser(
        "generate", help="generate proxy shell source from a spec"
    )
    generate.add_argument("spec", help="path to the spec JSON")
    generate.add_argument("-o", "--output", help="write source here")
    generate.add_argument(
        "--proxy-base", default="proxy.php",
        help="entry URL of the generated proxy (default proxy.php)",
    )
    generate.set_defaults(fn=_cmd_generate)

    commands.add_parser(
        "demo", help="mobilize the built-in forum end to end"
    ).set_defaults(fn=_cmd_demo)

    metrics = commands.add_parser(
        "metrics",
        help="drive the forum demo and print the Prometheus exposition",
    )
    metrics.add_argument(
        "--requests", type=int, default=8,
        help="requests to issue before scraping /metrics (default 8)",
    )
    metrics.set_defaults(fn=_cmd_metrics)

    bench = commands.add_parser(
        "bench-adapt",
        help="benchmark the adaptation hot path (fast path vs full runs)",
    )
    bench.add_argument(
        "--requests", type=int, default=60,
        help="requests per configuration (default 60)",
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="write the JSON results here (default BENCH_pipeline.json; "
        "empty string to skip)",
    )
    bench.add_argument(
        "--require-hits", action="store_true",
        help="exit 1 if the warm workload's fast-path hit ratio is 0 "
        "(the tier-1 gate uses this)",
    )
    bench.set_defaults(fn=_cmd_bench_adapt)

    bench_delta = commands.add_parser(
        "bench-delta",
        help="benchmark incremental re-adaptation under content churn "
        "(delta patch vs full replay)",
    )
    bench_delta.add_argument(
        "--requests", type=int, default=220,
        help="requests per configuration (default 220)",
    )
    bench_delta.add_argument(
        "--churn", type=float, default=0.1,
        help="fraction of requests that coincide with an origin "
        "revision (default 0.1)",
    )
    bench_delta.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail below this re-adaptation p50 speedup over full "
        "replay (default 3.0; not enforced with --smoke)",
    )
    bench_delta.add_argument(
        "--smoke", action="store_true",
        help="small run for the tier-1 gate: checks byte equality and "
        "that deltas apply, skips the speedup gate and the BENCH write",
    )
    bench_delta.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="merge the delta_churn row here (default "
        "BENCH_pipeline.json; empty string to skip)",
    )
    bench_delta.set_defaults(fn=_cmd_bench_delta)

    trace = commands.add_parser(
        "trace",
        help="drive the forum demo and print the JSON trace dump",
    )
    trace.add_argument(
        "--requests", type=int, default=4,
        help="requests to issue before dumping /traces (default 4)",
    )
    trace.set_defaults(fn=_cmd_trace)

    chaos = commands.add_parser(
        "chaos",
        help="drive the forum demo through a seeded fault schedule and "
        "print the degradation report",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="fault schedule seed (default 7)",
    )
    chaos.add_argument(
        "--requests", type=int, default=200,
        help="requests to drive through the fault schedule (default 200)",
    )
    chaos.add_argument(
        "--render-fail", type=float, default=0.3,
        help="fraction of renders that crash or hang (default 0.3)",
    )
    chaos.add_argument(
        "--origin-fail", type=float, default=0.1,
        help="fraction of origin fetches that fail or hang (default 0.1)",
    )
    chaos.add_argument(
        "--garbage", type=float, default=0.05,
        help="fraction of origin responses corrupted in flight "
        "(default 0.05)",
    )
    chaos.add_argument(
        "--cold", action="store_true",
        help="skip the cache warm-up (exercises the no-stale rungs)",
    )
    chaos.add_argument(
        "--farm-faults", action="store_true",
        help="route renders through the render farm and inject farm "
        "faults (a consumer crash mid-render, dead-letter quarantines)",
    )
    chaos.add_argument(
        "--farm-consumers", type=int, default=2,
        help="render farm consumers to start with --farm-faults "
        "(default 2; one is crashed a third of the way in)",
    )
    chaos.add_argument(
        "--region-faults", action="store_true",
        help="run the multi-region harness instead: kill one of two "
        "regions mid-workload, assert warm failover and CDC replay",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="with --region-faults: a seconds-scale gate run "
        "(at most 60 requests)",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    bench_regions = commands.add_parser(
        "bench-regions",
        help="benchmark region failover (owner vs wrong-region latency, "
        "disk warm-start fraction) and record the region_failover row",
    )
    bench_regions.add_argument(
        "--smoke", action="store_true",
        help="small fast run for the tier-1 gate (skips the "
        "BENCH_pipeline.json write and the latency-ratio bar)",
    )
    bench_regions.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="upsert the region_failover row into this JSON file "
        "(default BENCH_pipeline.json; empty string skips the write)",
    )
    bench_regions.set_defaults(fn=_cmd_bench_regions)

    scalability = commands.add_parser(
        "scalability", help="run the Figure 7 scalability sweep"
    )
    scalability.add_argument(
        "--farm", action="store_true",
        help="run the bursty (open-loop flash crowd) variant comparing "
        "inline renders against the render farm; with --smoke a "
        "seconds-scale gate run",
    )
    scalability.add_argument(
        "--real", action="store_true",
        help="drive real threads through the concurrent runtime "
        "instead of the discrete-event model",
    )
    scalability.add_argument(
        "--pool", action="store_true",
        help="enable the browser pool ablation (simulated sweep only)",
    )
    scalability.add_argument(
        "--percentages", default=None,
        help="comma-separated browser fractions (default: the paper's)",
    )
    scalability.add_argument(
        "--workers", type=int, default=None,
        help="with --real: executor worker threads (default 8); "
        "without --real: run the cluster sweep with N fleet workers "
        "behind the shard router",
    )
    scalability.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop client threads (default 8; cluster mode "
        "defaults to 16 unless overridden)",
    )
    scalability.add_argument(
        "--requests", type=int, default=400,
        help="requests per data point (--real and cluster modes, "
        "default 400)",
    )
    scalability.add_argument(
        "--browser-service-s", type=float, default=0.020,
        help="scaled browser service time in seconds "
        "(--real only, default 0.020)",
    )
    scalability.add_argument(
        "--smoke", action="store_true",
        help="cluster mode: small fast run (200 requests, two "
        "percentages) that skips the BENCH_pipeline.json record",
    )
    scalability.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="cluster mode: merge the sweep record into this JSON file "
        "(default BENCH_pipeline.json; other keys are preserved)",
    )
    scalability.set_defaults(fn=_cmd_scalability)

    workload = commands.add_parser(
        "workload",
        help="replay a named traffic scenario against a worker fleet",
    )
    workload.add_argument(
        "--scenario", default=None,
        help="scenario name (see --list)",
    )
    workload.add_argument(
        "--list", action="store_true",
        help="list the named scenarios and exit",
    )
    workload.add_argument(
        "--workers", type=int, default=None,
        help="fleet size (default: the scenario's own, usually 1)",
    )
    workload.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed (same seed => same trace)",
    )
    workload.add_argument(
        "--clients", type=int, default=8,
        help="client threads replaying the trace (default 8)",
    )
    workload.add_argument(
        "--autoscale", action="store_true",
        help="start the fleet at --min-workers and let the controller "
        "grow it up to --workers as the trace applies pressure",
    )
    workload.add_argument(
        "--min-workers", type=int, default=1,
        help="autoscale floor / starting fleet size (default 1)",
    )
    workload.add_argument(
        "--smoke", action="store_true",
        help="small fast run for the tier-1 gate (fails on any "
        "non-degraded 5xx or a busted p99 budget, like the full run)",
    )
    workload.add_argument(
        "--p99-budget-ms", type=float, default=1000.0,
        help="fail if p99 exceeds this many milliseconds "
        "(default 1000; 0 disables)",
    )
    workload.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="upsert the scenario row into this JSON file keyed by "
        "scenario name + config fingerprint (default "
        "BENCH_pipeline.json; empty string skips the write)",
    )
    workload.set_defaults(fn=_cmd_workload)

    bench_autoscale = commands.add_parser(
        "bench-autoscale",
        help="flash-crowd bench: autoscaled fleet vs same-size static "
        "fleet under one seeded arrival schedule",
    )
    bench_autoscale.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for the tier-1 gate (gates only the "
        "autoscaled side; the full run also requires the static fleet "
        "to saturate, and writes the BENCH row)",
    )
    bench_autoscale.add_argument(
        "-o", "--output", default="BENCH_pipeline.json",
        help="merge the autoscale_flashcrowd record into this JSON "
        "file on a full run (default BENCH_pipeline.json; empty "
        "string skips the write)",
    )
    bench_autoscale.set_defaults(fn=_cmd_bench_autoscale)

    autoscale_demo = commands.add_parser(
        "autoscale-demo",
        help="deterministic sim-clock controller walkthrough with the "
        "resulting ops event log as NDJSON",
    )
    autoscale_demo.add_argument(
        "--ticks", type=int, default=16,
        help="controller ticks to simulate (default 16)",
    )
    autoscale_demo.set_defaults(fn=_cmd_autoscale_demo)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
