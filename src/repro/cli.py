"""Command-line interface for the m.Site tooling.

The admin-facing entry points a deployment actually uses:

* ``attributes`` — print the attribute menu (name + description),
* ``validate``   — check a spec JSON for consistency,
* ``generate``   — emit proxy shell source from a spec JSON,
* ``demo``       — run the built-in forum mobilization end to end and
  print what the proxy produced.

Run as ``python -m repro.cli <command>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.attributes import attribute_menu
from repro.core.codegen import generate_proxy_source
from repro.core.spec import AdaptationSpec
from repro.errors import MSiteError


def _cmd_attributes(args: argparse.Namespace) -> int:
    menu = attribute_menu()
    width = max(len(name) for name, __ in menu)
    for name, description in menu:
        print(f"{name:<{width}}  {description}")
    return 0


def _load_spec(path: str) -> AdaptationSpec:
    with open(path, "r", encoding="utf-8") as handle:
        return AdaptationSpec.from_json(handle.read())


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
        spec.validate()
    except (OSError, ValueError, KeyError, MSiteError) as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 1
    print(
        f"ok: {spec.site} ({len(spec.bindings)} bindings, "
        f"entry http://{spec.origin_host}{spec.page_path})"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
        source = generate_proxy_source(spec, proxy_base=args.proxy_base)
    except (OSError, ValueError, KeyError, MSiteError) as exc:
        print(f"generation failed: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({len(source)} bytes)")
    else:
        print(source)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.codegen import load_generated_proxy
    from repro.core.pipeline import ProxyServices
    from repro.core.spec import ObjectSelector
    from repro.net.client import HttpClient
    from repro.net.cookies import CookieJar
    from repro.sites.forum.app import ForumApplication

    forum = ForumApplication()
    origins = {"www.sawmillcreek.org": forum}
    spec = AdaptationSpec(site="SawmillCreek",
                          origin_host="www.sawmillcreek.org")
    spec.add("prerender")
    spec.add("cacheable", ttl_s=3600)
    spec.add("subpage", ObjectSelector.css("#loginform"),
             subpage_id="login", title="Log in")
    spec.add("subpage", ObjectSelector.css("#forumbits"),
             subpage_id="forums", title="Forums")
    proxy = load_generated_proxy(generate_proxy_source(spec)).create_proxy(
        ProxyServices(origins=origins)
    )
    mobile = HttpClient({"m.sawmillcreek.org": proxy}, jar=CookieJar())
    entry = mobile.get("http://m.sawmillcreek.org/proxy.php")
    snapshot = mobile.get(
        "http://m.sawmillcreek.org/proxy.php?file=snapshot.jpg"
    )
    print("m.Site demo: mobilized the synthetic SawmillCreek forum")
    print(f"  entry page:     {len(entry.body):>7,} bytes "
          f"(original: 224,477)")
    print(f"  snapshot image: {len(snapshot.body):>7,} bytes")
    print(f"  map regions:    {entry.text_body.count('<area'):>7}")
    print(f"  counters:       {proxy.counters}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="msite",
        description="m.Site content-adaptation tooling (Middleware 2012 "
        "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "attributes", help="list the attribute menu"
    ).set_defaults(fn=_cmd_attributes)

    validate = commands.add_parser(
        "validate", help="validate a spec JSON file"
    )
    validate.add_argument("spec", help="path to the spec JSON")
    validate.set_defaults(fn=_cmd_validate)

    generate = commands.add_parser(
        "generate", help="generate proxy shell source from a spec"
    )
    generate.add_argument("spec", help="path to the spec JSON")
    generate.add_argument("-o", "--output", help="write source here")
    generate.add_argument(
        "--proxy-base", default="proxy.php",
        help="entry URL of the generated proxy (default proxy.php)",
    )
    generate.set_defaults(fn=_cmd_generate)

    commands.add_parser(
        "demo", help="mobilize the built-in forum end to end"
    ).set_defaults(fn=_cmd_demo)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
