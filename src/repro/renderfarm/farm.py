"""The render farm: competing consumers over the lane queue.

Request threads never render.  They :meth:`~RenderFarm.submit` a render
thunk under a :class:`RenderKey` and block (bounded) on the shared
future; a fixed set of consumer threads drains the queue hottest-lane
first.  Backpressure is explicit — a full queue raises
:class:`FarmSaturatedError` at submission instead of parking the
request thread — and repeated failures quarantine the key in the
dead-letter lane so one poisonous page cannot monopolize consumers.

Everything the farm does is visible as ``msite_renderfarm_*`` metrics
on whatever registry it was constructed with, which is how the cluster
status endpoint and the chaos report read it.
"""

from __future__ import annotations

import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Optional

from repro.errors import FarmSaturatedError, RenderError
from repro.observability.metrics import MetricsRegistry
from repro.renderfarm.job import (
    INTERACTIVE,
    LANES,
    RenderJob,
    RenderKey,
    resolve_clock,
)
from repro.renderfarm.queue import LaneQueue


class ConsumerCrash(BaseException):
    """Raised inside a consumer to simulate a mid-render crash.

    A ``BaseException`` so application code's ``except Exception``
    recovery paths cannot swallow the crash — exactly like a browser
    process dying under the render.
    """


class RenderFarm:
    """A bounded render queue drained by competing consumer threads."""

    def __init__(
        self,
        consumers: int = 2,
        queue_limit: int = 64,
        poison_threshold: int = 3,
        dead_letter_ttl_s: float = 60.0,
        default_wait_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Any] = None,
        name: str = "farm",
        ops: Optional[Any] = None,
    ) -> None:
        if consumers < 1:
            raise ValueError("a render farm needs at least one consumer")
        if poison_threshold < 1:
            raise ValueError("poison threshold must be positive")
        self.name = name
        self.poison_threshold = poison_threshold
        self.default_wait_s = default_wait_s
        self.queue = LaneQueue(
            limit=queue_limit,
            clock=clock,
            dead_letter_ttl_s=dead_letter_ttl_s,
        )
        self._now = resolve_clock(clock)
        self._lock = threading.Lock()
        # Serializes submissions so the counter deltas below attribute
        # coalesce/promote/displace outcomes to the right submission.
        self._submit_lock = threading.Lock()
        self._failures: dict[RenderKey, int] = {}
        self._crash_requests = 0
        self._retire_requests = 0
        self._consumer_seq = 0
        self._closed = False
        self._ops = ops
        self._bind(metrics or MetricsRegistry())
        self._threads: list[threading.Thread] = []
        for _ in range(consumers):
            self._spawn_consumer()
        self._consumers_gauge.set(consumers)

    def _spawn_consumer(self) -> str:
        """Start one consumer thread; returns its name."""
        with self._lock:
            index = self._consumer_seq
            self._consumer_seq += 1
        consumer = f"msite-render-{self.name}-{index}"
        thread = threading.Thread(
            target=self._consume, name=consumer, daemon=True
        )
        self._threads.append(thread)
        thread.start()
        return consumer

    def _ops_emit(self, type: str, **payload) -> None:
        if self._ops is not None:
            self._ops.emit(type, farm=self.name, **payload)

    # -- metrics ---------------------------------------------------------

    def _bind(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._submitted = {
            lane: registry.counter(
                "msite_renderfarm_submitted_total",
                "Render jobs submitted to the farm, by lane.",
                labels={"lane": lane},
            )
            for lane in LANES
        }
        self._completed = {
            lane: registry.counter(
                "msite_renderfarm_completed_total",
                "Render jobs completed by the farm, by lane.",
                labels={"lane": lane},
            )
            for lane in LANES
        }
        self._coalesced = registry.counter(
            "msite_renderfarm_coalesced_total",
            "Submissions satisfied by joining an existing job's future.",
        )
        self._promotions = registry.counter(
            "msite_renderfarm_promotions_total",
            "Queued jobs re-filed into a hotter lane by later demand.",
        )
        self._failures_counter = registry.counter(
            "msite_renderfarm_failures_total",
            "Render jobs whose thunk raised.",
        )
        self._dead_lettered = registry.counter(
            "msite_renderfarm_dead_lettered_total",
            "Render keys quarantined after repeated failures.",
        )
        self._dead_letter_refusals = registry.counter(
            "msite_renderfarm_dead_letter_refusals_total",
            "Submissions refused because their key was quarantined.",
        )
        self._displaced = registry.counter(
            "msite_renderfarm_displaced_total",
            "Cold queued jobs displaced by hotter submissions under "
            "backpressure.",
        )
        self._saturation_refusals = registry.counter(
            "msite_renderfarm_saturation_refusals_total",
            "Submissions refused because the queue was full.",
        )
        self._crashes = registry.counter(
            "msite_renderfarm_consumer_crashes_total",
            "Consumer threads lost to injected mid-render crashes.",
        )
        self._depth_gauges = {
            lane: registry.gauge(
                "msite_renderfarm_queue_depth",
                "Render jobs currently queued, by lane.",
                labels={"lane": lane},
            )
            for lane in LANES
        }
        self._consumers_gauge = registry.gauge(
            "msite_renderfarm_consumers",
            "Consumer threads currently alive.",
        )
        self._wait_seconds = registry.histogram(
            "msite_renderfarm_wait_seconds",
            "Time jobs spent queued before a consumer picked them up.",
        )
        self._render_seconds = registry.histogram(
            "msite_renderfarm_render_seconds",
            "Time consumers spent executing render thunks.",
        )

    def _sync_depth_gauges(self) -> None:
        for lane, depth in self.queue.lane_depths().items():
            self._depth_gauges[lane].set(depth)

    # -- submission ------------------------------------------------------

    def submit(
        self,
        key: RenderKey,
        fn: Callable[[], Any],
        lane: str = INTERACTIVE,
    ) -> RenderJob:
        """Queue (or join) a render; returns the job with its shared future."""
        with self._submit_lock:
            before_coalesced = self.queue.coalesced
            before_promotions = self.queue.promotions
            before_displaced = self.queue.displaced
            try:
                job = self.queue.submit(key, fn, lane)
            except FarmSaturatedError:
                self._saturation_refusals.inc()
                raise
            except Exception:
                self._dead_letter_refusals.inc()
                raise
            if self.queue.coalesced == before_coalesced:
                self._submitted[job.lane].inc()
            else:
                self._coalesced.inc()
            if self.queue.promotions > before_promotions:
                self._promotions.inc()
            if self.queue.displaced > before_displaced:
                self._displaced.inc()
        self._sync_depth_gauges()
        return job

    def render(
        self,
        key: RenderKey,
        fn: Callable[[], Any],
        lane: str = INTERACTIVE,
        wait_s: Optional[float] = None,
    ) -> Any:
        """Submit and block for the result (the request path's call).

        A missed deadline surfaces as :class:`FarmSaturatedError`: from
        the caller's point of view an overdue render and a refused one
        are the same event, and both degrade down the same ladder.
        """
        job = self.submit(key, fn, lane)
        timeout = wait_s if wait_s is not None else self.default_wait_s
        try:
            return job.future.result(timeout=timeout)
        except FutureTimeoutError:
            raise FarmSaturatedError(
                f"render for {key} still queued after {timeout}s "
                f"(farm backlog {self.queue.depth})"
            ) from None

    # -- elastic capacity ------------------------------------------------

    def add_consumer(self) -> str:
        """Scale up: start one more consumer (the autoscaler's lever)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot add a consumer to a closed farm")
        consumer = self._spawn_consumer()
        self._consumers_gauge.inc()
        self._ops_emit("consumer_started", consumer=consumer)
        return consumer

    def retire_consumer(self) -> None:
        """Scale down: the next idle consumer exits cleanly.

        Unlike :meth:`crash_consumer` this never fails a job — the
        retiring consumer checks the request *between* jobs, so
        capacity shrinks without any waiter seeing an error.
        """
        with self._lock:
            self._retire_requests += 1

    def _take_retire_request(self) -> bool:
        with self._lock:
            if self._retire_requests > 0:
                self._retire_requests -= 1
                return True
            return False

    # -- consumer side ---------------------------------------------------

    def _consume(self) -> None:
        while True:
            if self._take_retire_request():
                self._consumers_gauge.dec()
                self._ops_emit(
                    "consumer_retired",
                    consumer=threading.current_thread().name,
                )
                return
            job = self.queue.pop(timeout_s=0.1)
            if job is None:
                if self.queue.closed:
                    return
                continue
            if self._take_crash_request():
                # The browser died mid-render: fail this job's waiters,
                # lose this consumer.  No restart — degraded capacity is
                # the condition chaos asserts the fleet absorbs.
                job.future.set_exception(
                    RenderError(
                        f"render consumer crashed mid-render on {job.key}"
                    )
                )
                self._record_failure(job)
                self.queue.done(job)
                self._crashes.inc()
                self._consumers_gauge.dec()
                self._ops_emit(
                    "consumer_crashed",
                    consumer=threading.current_thread().name,
                    key=str(job.key),
                )
                self._sync_depth_gauges()
                return
            self._wait_seconds.observe(
                max(0.0, self._now() - job.enqueued_at)
            )
            started = self._now()
            try:
                result = job.fn()
            except ConsumerCrash:
                job.future.set_exception(
                    RenderError(
                        f"render consumer crashed mid-render on {job.key}"
                    )
                )
                self._record_failure(job)
                self.queue.done(job)
                self._crashes.inc()
                self._consumers_gauge.dec()
                self._ops_emit(
                    "consumer_crashed",
                    consumer=threading.current_thread().name,
                    key=str(job.key),
                )
                self._sync_depth_gauges()
                return
            except BaseException as exc:
                job.future.set_exception(exc)
                self._record_failure(job)
            else:
                job.future.set_result(result)
                with self._lock:
                    self._failures.pop(job.key, None)
                self._completed[job.lane].inc()
            finally:
                self._render_seconds.observe(
                    max(0.0, self._now() - started)
                )
                self.queue.done(job)
                self._sync_depth_gauges()

    def _record_failure(self, job: RenderJob) -> None:
        self._failures_counter.inc()
        with self._lock:
            failures = self._failures.get(job.key, 0) + 1
            self._failures[job.key] = failures
        if failures >= self.poison_threshold:
            self.queue.dead_letter(
                job.key,
                reason=f"{failures} consecutive render failures",
                failures=failures,
            )
            self._dead_lettered.inc()
            self._ops_emit(
                "dead_letter", key=str(job.key), failures=failures
            )
            with self._lock:
                self._failures.pop(job.key, None)

    # -- chaos hooks -----------------------------------------------------

    def crash_consumer(self) -> None:
        """Make the next dispatched job kill its consumer mid-render."""
        with self._lock:
            self._crash_requests += 1

    def _take_crash_request(self) -> bool:
        with self._lock:
            if self._crash_requests > 0:
                self._crash_requests -= 1
                return True
            return False

    # -- introspection ---------------------------------------------------

    @property
    def consumers_alive(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    @property
    def saturated(self) -> bool:
        """Advisory: the next cold submission is likely to be refused."""
        return self.queue.depth >= self.queue.limit

    def status(self) -> dict:
        """The JSON block ``/cluster`` exposes per deployment."""
        return {
            "consumers_alive": self.consumers_alive,
            "queue_limit": self.queue.limit,
            "lanes": self.queue.lane_depths(),
            "running": self.queue.running,
            "dead_letters": [
                {
                    "key": str(letter.key),
                    "reason": letter.reason,
                    "failures": letter.failures,
                }
                for letter in self.queue.dead_letters()
            ],
            "coalesced": self.queue.coalesced,
            "promotions": self.queue.promotions,
            "displaced": self.queue.displaced,
        }

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
        self._consumers_gauge.set(0)

    def __enter__(self) -> "RenderFarm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
