"""Render jobs and the priority lanes they travel in.

A *render key* names the artifact a job produces — ``(site, path,
device-class, spec-fp)`` — and is the unit of coalescing: while a job
for a key is queued or running, later submissions for the same key join
its future instead of enqueueing a duplicate.  One render satisfies all
waiters, which supersedes the per-pool single-flight cache for the
snapshot path (the cache still stores the result; the farm just makes
sure only one producer exists fleet-wide per key).

Lanes are strict priorities: an ``interactive`` job (a user is waiting
on the response) always dispatches before any ``prerender-refresh`` job
(a warm artifact is being re-rendered ahead of its TTL), which always
dispatches before any ``speculative`` job (a prediction that may never
be requested).  Within a lane, dispatch is FIFO by submission order.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: A user request is blocked on this render right now.
INTERACTIVE = "interactive"
#: A warm cached artifact is being refreshed before it expires.
REFRESH = "prerender-refresh"
#: A prediction: render ahead of any request that may never come.
SPECULATIVE = "speculative"

#: Dispatch order, hottest first.
LANES: tuple[str, ...] = (INTERACTIVE, REFRESH, SPECULATIVE)

#: Lower rank dispatches first.
LANE_RANK: dict[str, int] = {lane: rank for rank, lane in enumerate(LANES)}


def lane_rank(lane: str) -> int:
    """Strict precedence rank; unknown lanes are rejected loudly."""
    try:
        return LANE_RANK[lane]
    except KeyError:
        raise ValueError(
            f"unknown render lane {lane!r} (expected one of {LANES})"
        ) from None


@dataclass(frozen=True)
class RenderKey:
    """What a render produces, independent of who asked for it."""

    site: str
    path: str
    device_class: str = "default"
    spec_fp: str = ""

    def __str__(self) -> str:
        return (
            f"{self.site}:{self.path}:{self.device_class}"
            f":{self.spec_fp or '-'}"
        )


@dataclass
class RenderJob:
    """One queued (possibly coalesced) render.

    The ``future`` is shared by every coalesced waiter: the consumer
    that executes ``fn`` resolves it once, and all waiters observe the
    identical result object.  ``attempts`` counts executions across the
    key's lifetime in the farm (it survives re-submission, which is how
    the poison threshold accumulates).
    """

    key: RenderKey
    fn: Callable[[], Any]
    lane: str
    seq: int
    enqueued_at: float
    future: "Future[Any]" = field(default_factory=Future)
    waiters: int = 1
    promoted: bool = False

    def order(self) -> tuple[int, int]:
        """Dispatch sort key: lane precedence, then FIFO within lane."""
        return (lane_rank(self.lane), self.seq)


@dataclass
class DeadLetter:
    """A quarantined render key."""

    key: RenderKey
    reason: str
    failures: int
    parked_at: float


class _Monotonic:
    """A thread-safe monotonic sequence for FIFO ordering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def next(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value


def resolve_clock(clock: Optional[Any]) -> Callable[[], float]:
    """A ``() -> seconds`` callable from a sim Clock, callable, or None."""
    if clock is None:
        import time

        return time.monotonic
    if callable(clock):
        return clock
    return lambda: clock.now
