"""The render farm: queue-based load leveling for browser renders.

Public surface:

* :class:`RenderFarm` — competing consumers over the bounded lane queue.
* :class:`LaneQueue` — the scheduling policy itself (coalescing,
  promotion, displacement, dead letters), shared by the real farm and
  the deterministic test harness.
* :class:`RenderKey`, lane constants — the coalescing identity and the
  strict priority order ``INTERACTIVE > REFRESH > SPECULATIVE``.
* :mod:`repro.renderfarm.testing` — sim-clock consumer + scheduling
  traces for deterministic property tests.
"""

from repro.renderfarm.farm import ConsumerCrash, RenderFarm
from repro.renderfarm.job import (
    INTERACTIVE,
    LANES,
    REFRESH,
    SPECULATIVE,
    RenderJob,
    RenderKey,
    lane_rank,
)
from repro.renderfarm.queue import LaneQueue

__all__ = [
    "ConsumerCrash",
    "INTERACTIVE",
    "LANES",
    "LaneQueue",
    "REFRESH",
    "RenderFarm",
    "RenderJob",
    "RenderKey",
    "SPECULATIVE",
    "lane_rank",
]
