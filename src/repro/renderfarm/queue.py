"""The farm's priority lane queue.

One bounded queue with three strict-priority lanes and a dead-letter
registry.  All the scheduling policy lives here, behind one lock, so
the competing consumers in :mod:`repro.renderfarm.farm` and the
deterministic :class:`~repro.renderfarm.testing.SimConsumer` drain the
exact same code:

* **Coalescing** — a submission whose :class:`RenderKey` is already
  queued (or running) joins the existing job's future instead of
  enqueueing a duplicate.  One render satisfies all waiters.
* **Promotion** — joining a *queued* job from a hotter lane moves the
  job into that lane (a speculative render a user is now waiting on
  becomes interactive — never duplicated, never left to languish).
* **Bounded depth** — past ``limit`` queued jobs, a hot submission
  displaces the coldest queued job strictly below its own lane (the
  displaced job's waiters see :class:`FarmSaturatedError`); a
  submission with nothing colder to displace is itself refused.
* **Dead letters** — keys quarantined by the farm are refused for
  ``dead_letter_ttl_s``; the first submission after the TTL re-enters
  as a single *speculative* probe, never straight into a hot lane.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import DeadLetterError, FarmSaturatedError
from repro.renderfarm.job import (
    LANES,
    SPECULATIVE,
    DeadLetter,
    RenderJob,
    RenderKey,
    _Monotonic,
    lane_rank,
    resolve_clock,
)


class LaneQueue:
    """Bounded, lane-prioritized, coalescing render queue."""

    def __init__(
        self,
        limit: int = 64,
        clock: Optional[Any] = None,
        dead_letter_ttl_s: float = 60.0,
    ) -> None:
        if limit < 1:
            raise ValueError("queue limit must be positive")
        self.limit = limit
        self.dead_letter_ttl_s = dead_letter_ttl_s
        self._now = resolve_clock(clock)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._lanes: dict[str, deque[RenderJob]] = {
            lane: deque() for lane in LANES
        }
        self._queued: dict[RenderKey, RenderJob] = {}
        self._running: dict[RenderKey, RenderJob] = {}
        self._dead: dict[RenderKey, DeadLetter] = {}
        self._seq = _Monotonic()
        self._closed = False
        # Accounting the farm surfaces as msite_renderfarm_* metrics.
        self.submitted: dict[str, int] = {lane: 0 for lane in LANES}
        self.coalesced = 0
        self.promotions = 0
        self.displaced = 0
        self.refused = 0
        self.dead_letter_refusals = 0
        self.probes = 0

    # -- submission ------------------------------------------------------

    def submit(
        self,
        key: RenderKey,
        fn: Callable[[], Any],
        lane: str,
    ) -> RenderJob:
        """Queue (or join) a render for ``key``; returns the job.

        Raises :class:`DeadLetterError` when the key is quarantined and
        :class:`FarmSaturatedError` when the queue is full and nothing
        colder can be displaced.
        """
        rank = lane_rank(lane)
        with self._lock:
            if self._closed:
                raise FarmSaturatedError("render farm is closed")
            lane = self._admit_dead_lettered(key, lane)
            rank = lane_rank(lane)

            job = self._queued.get(key)
            if job is not None:
                self.coalesced += 1
                job.waiters += 1
                if rank < lane_rank(job.lane):
                    # Promote: hotter demand re-files the queued job in
                    # the hotter lane.  Seq is kept and the job is
                    # inserted in seq order — it has been waiting at
                    # least as long as the new submission, so FIFO
                    # within the destination lane still holds.
                    self._lanes[job.lane].remove(job)
                    job.lane = lane
                    job.promoted = True
                    target = self._lanes[lane]
                    position = len(target)
                    while position > 0 and target[position - 1].seq > job.seq:
                        position -= 1
                    target.insert(position, job)
                    self.promotions += 1
                return job
            job = self._running.get(key)
            if job is not None:
                # Too late to affect scheduling; share the in-flight
                # render's future.
                self.coalesced += 1
                job.waiters += 1
                return job

            if self._depth_locked() >= self.limit:
                victim = self._displaceable_locked(rank)
                if victim is None:
                    self.refused += 1
                    raise FarmSaturatedError(
                        f"render queue full ({self.limit} queued) and "
                        f"nothing below the {lane!r} lane to displace"
                    )
                self._lanes[victim.lane].remove(victim)
                del self._queued[victim.key]
                self.displaced += 1
                victim.future.set_exception(
                    FarmSaturatedError(
                        f"render for {victim.key} displaced by a hotter "
                        f"{lane!r} submission under backpressure"
                    )
                )

            job = RenderJob(
                key=key,
                fn=fn,
                lane=lane,
                seq=self._seq.next(),
                enqueued_at=self._now(),
            )
            self._lanes[lane].append(job)
            self._queued[key] = job
            self.submitted[lane] += 1
            self._ready.notify()
            return job

    def _admit_dead_lettered(self, key: RenderKey, lane: str) -> str:
        """Apply dead-letter policy; returns the (possibly demoted) lane."""
        letter = self._dead.get(key)
        if letter is None:
            return lane
        age = self._now() - letter.parked_at
        if age < self.dead_letter_ttl_s:
            self.dead_letter_refusals += 1
            raise DeadLetterError(
                f"render key {key} dead-lettered ({letter.reason}); "
                f"probes resume in {self.dead_letter_ttl_s - age:.1f}s"
            )
        # TTL expired: let one probe back in, but only at the coldest
        # lane — a previously poisonous job never re-enters hot.
        del self._dead[key]
        self.probes += 1
        return SPECULATIVE

    def _displaceable_locked(self, rank: int) -> Optional[RenderJob]:
        """Newest queued job in the coldest lane strictly below ``rank``."""
        for lane in reversed(LANES):
            if lane_rank(lane) <= rank:
                return None
            queue = self._lanes[lane]
            if queue:
                return queue[-1]
        return None

    # -- dispatch --------------------------------------------------------

    def pop(self, timeout_s: Optional[float] = None) -> Optional[RenderJob]:
        """Dequeue the hottest waiting job, blocking up to ``timeout_s``.

        Returns ``None`` on timeout or once the queue is closed and
        drained.  The job is moved to the *running* set so late
        submissions still coalesce onto it; the caller must finish with
        :meth:`done`.
        """
        with self._ready:
            while True:
                job = self._pop_locked()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout_s):
                    return None

    def try_pop(self) -> Optional[RenderJob]:
        """Non-blocking :meth:`pop` (the sim consumer's step)."""
        with self._lock:
            return self._pop_locked()

    def _pop_locked(self) -> Optional[RenderJob]:
        for lane in LANES:
            queue = self._lanes[lane]
            if queue:
                job = queue.popleft()
                del self._queued[job.key]
                self._running[job.key] = job
                return job
        return None

    def done(self, job: RenderJob) -> None:
        """Mark a popped job finished (its future already resolved)."""
        with self._lock:
            self._running.pop(job.key, None)

    def requeue(self, job: RenderJob) -> None:
        """Return a popped-but-unexecuted job to the head of its lane.

        Used when a consumer dies between popping and executing: the
        job keeps its seq, so FIFO order within the lane is preserved.
        """
        with self._ready:
            self._running.pop(job.key, None)
            self._lanes[job.lane].appendleft(job)
            self._queued[job.key] = job
            self._ready.notify()

    # -- dead letters ----------------------------------------------------

    def dead_letter(self, key: RenderKey, reason: str, failures: int) -> None:
        with self._lock:
            self._dead[key] = DeadLetter(
                key=key,
                reason=reason,
                failures=failures,
                parked_at=self._now(),
            )

    def revive(self, key: RenderKey) -> bool:
        """Manually lift a quarantine; True when the key was parked."""
        with self._lock:
            return self._dead.pop(key, None) is not None

    def dead_letters(self) -> list[DeadLetter]:
        with self._lock:
            return sorted(
                self._dead.values(), key=lambda letter: str(letter.key)
            )

    # -- introspection ---------------------------------------------------

    def _depth_locked(self) -> int:
        return len(self._queued)

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth_locked()

    def lane_depths(self) -> dict[str, int]:
        with self._lock:
            return {lane: len(self._lanes[lane]) for lane in LANES}

    @property
    def running(self) -> int:
        with self._lock:
            return len(self._running)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Refuse new work; queued jobs fail fast with saturation."""
        with self._ready:
            self._closed = True
            failed: list[RenderJob] = []
            for lane in LANES:
                queue = self._lanes[lane]
                while queue:
                    failed.append(queue.popleft())
            self._queued.clear()
            self._ready.notify_all()
        for job in failed:
            job.future.set_exception(
                FarmSaturatedError("render farm shut down with job queued")
            )

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
