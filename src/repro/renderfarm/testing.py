"""Deterministic test harness for the render farm.

The real :class:`~repro.renderfarm.farm.RenderFarm` runs OS threads; the
properties worth pinning (lane precedence, FIFO within lane, coalescing
identity, dead-letter isolation) are *scheduling* properties, which
threads can only probabilistically exercise.  :class:`SimConsumer`
drains the very same :class:`~repro.renderfarm.queue.LaneQueue` with no
threads at all, on a :class:`repro.sim.clock.Clock`, recording every
dispatch into a :class:`SchedulingTrace` — so a hypothesis property can
enumerate arrival orders and assert on the exact drain order, and a
regression is a replayable trace, not a flake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.renderfarm.job import RenderJob, RenderKey
from repro.renderfarm.queue import LaneQueue
from repro.sim.clock import Clock


@dataclass(frozen=True)
class TraceEvent:
    """One dispatched job, as the consumer saw it."""

    seq: int
    key: RenderKey
    lane: str
    enqueued_at: float
    started_at: float
    finished_at: float
    consumer: str
    outcome: str  # "ok" | "error"
    promoted: bool
    waiters: int


@dataclass
class SchedulingTrace:
    """The recorded dispatch order of one simulated drain."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def keys(self) -> list[RenderKey]:
        return [event.key for event in self.events]

    def lanes(self) -> list[str]:
        return [event.lane for event in self.events]

    def by_lane(self, lane: str) -> list[TraceEvent]:
        return [event for event in self.events if event.lane == lane]

    def __len__(self) -> int:
        return len(self.events)


class SimConsumer:
    """A fake competing consumer on simulated time.

    ``service_s`` is either a constant or a ``job -> seconds`` callable;
    each :meth:`step` pops the hottest job, advances the clock by its
    service time, runs the thunk, resolves the shared future, and logs a
    :class:`TraceEvent`.  :meth:`drain` steps until the queue is empty.
    """

    def __init__(
        self,
        queue: LaneQueue,
        clock: Clock,
        service_s: float | Callable[[RenderJob], float] = 0.0,
        name: str = "sim-0",
        trace: Optional[SchedulingTrace] = None,
    ) -> None:
        self.queue = queue
        self.clock = clock
        self.service_s = service_s
        self.name = name
        self.trace = trace if trace is not None else SchedulingTrace()

    def _service_time(self, job: RenderJob) -> float:
        if callable(self.service_s):
            return float(self.service_s(job))
        return float(self.service_s)

    def step(self) -> Optional[TraceEvent]:
        """Dispatch one job deterministically; None when queue is idle."""
        job = self.queue.try_pop()
        if job is None:
            return None
        started = self.clock.now
        self.clock.advance(self._service_time(job))
        outcome = "ok"
        try:
            result: Any = job.fn()
        except BaseException as exc:
            outcome = "error"
            job.future.set_exception(exc)
        else:
            job.future.set_result(result)
        finally:
            self.queue.done(job)
        event = TraceEvent(
            seq=job.seq,
            key=job.key,
            lane=job.lane,
            enqueued_at=job.enqueued_at,
            started_at=started,
            finished_at=self.clock.now,
            consumer=self.name,
            outcome=outcome,
            promoted=job.promoted,
            waiters=job.waiters,
        )
        self.trace.record(event)
        return event

    def drain(self, limit: int = 10_000) -> SchedulingTrace:
        """Step until the queue is empty (bounded against runaways)."""
        for _ in range(limit):
            if self.step() is None:
                return self.trace
        raise RuntimeError(f"sim consumer did not drain within {limit} steps")
