"""Concurrent proxy runtime.

The m.Site proxy objects (:class:`~repro.core.proxy.MSiteProxy`) are
thread-safe; this package supplies the execution layer that actually
drives them from many clients at once: a bounded-admission thread pool
with per-request timeouts and queue-wait accounting, the real-machine
counterpart to the discrete-event Figure 7 scalability model.

See ``docs/CONCURRENCY.md`` for the threading model and lock ordering.
"""

from repro.runtime.executor import (
    ConcurrentProxy,
    RuntimeStats,
    RuntimeStatsSnapshot,
)

__all__ = [
    "ConcurrentProxy",
    "RuntimeStats",
    "RuntimeStatsSnapshot",
]
