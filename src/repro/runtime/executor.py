"""A bounded-admission thread pool over any :class:`Application`.

The generated proxy is a plain ``Request -> Response`` object; in a real
deployment something has to pump requests from many mobile devices into
it at once.  :class:`ConcurrentProxy` is that something: a fixed pool of
worker threads fed by a bounded queue.  Admission control (reject with
503 when the queue is full) and per-request timeouts (504 when the
deadline passes) bound both memory and client-visible latency — the
overload behaviour the Figure 7 scalability story depends on, since an
unbounded queue hides saturation instead of reporting it.

Queue-wait time is accounted per request so the scalability bench can
report how long requests sat waiting for a worker, separately from how
long the proxy spent serving them.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    DegradedServeError,
    RetryExhaustedError,
)
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.observability.metrics import MetricsRegistry


@dataclass(frozen=True)
class RuntimeStatsSnapshot:
    """A consistent point-in-time copy of :class:`RuntimeStats`."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failures: int = 0
    timeouts: int = 0
    queue_wait_total_s: float = 0.0
    queue_wait_max_s: float = 0.0
    queue_depth_peak: int = 0

    @property
    def mean_queue_wait_s(self) -> float:
        started = self.submitted - self.rejected
        return self.queue_wait_total_s / started if started else 0.0


class RuntimeStats:
    """Executor counters, delegated to registry instruments.

    The counters keep their historical names; the queue wait is a full
    latency histogram (``msite_executor_queue_wait_seconds``) so the
    ``/metrics`` endpoint and the Figure 7 bench can report queue-wait
    percentiles, and the peak queue depth is a high-watermark gauge.
    """

    FIELDS = (
        "submitted", "rejected", "completed", "failures", "timeouts",
        "queue_wait_total_s", "queue_wait_max_s", "queue_depth_peak",
    )

    _COUNTERS = {
        "submitted": ("msite_executor_submitted_total",
                      "Requests offered to the admission queue."),
        "rejected": ("msite_executor_rejected_total",
                     "Requests rejected because the queue was full."),
        "completed": ("msite_executor_completed_total",
                      "Requests answered successfully."),
        "failures": ("msite_executor_failures_total",
                     "Requests whose handler raised (mapped to 500)."),
        "timeouts": ("msite_executor_timeouts_total",
                     "Requests that missed their deadline (504)."),
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry or MetricsRegistry()
        self._counters = {
            field_name: registry.counter(metric_name, help_text)
            for field_name, (metric_name, help_text) in self._COUNTERS.items()
        }
        self._queue_wait = registry.histogram(
            "msite_executor_queue_wait_seconds",
            "Time requests sat in the admission queue before a worker "
            "picked them up.",
        )
        self._queue_depth_peak = registry.gauge(
            "msite_executor_queue_depth_peak",
            "High watermark of the admission queue depth.",
        )

    def add(self, **deltas: float) -> None:
        for name, delta in deltas.items():
            counter = self._counters.get(name)
            if counter is None:
                raise TypeError(f"unknown runtime stat {name!r}")
            counter.inc(delta)

    def observe_queue_wait(self, waited_s: float) -> None:
        self._queue_wait.observe(waited_s)

    def observe_queue_depth(self, depth: int) -> None:
        self._queue_depth_peak.track_max(depth)

    def bind(self, registry: MetricsRegistry) -> None:
        """Register these instruments into a shared registry."""
        for counter in self._counters.values():
            registry.register(counter)
        registry.register(self._queue_wait)
        registry.register(self._queue_depth_peak)

    def snapshot(self) -> RuntimeStatsSnapshot:
        return RuntimeStatsSnapshot(
            submitted=int(self._counters["submitted"].value),
            rejected=int(self._counters["rejected"].value),
            completed=int(self._counters["completed"].value),
            failures=int(self._counters["failures"].value),
            timeouts=int(self._counters["timeouts"].value),
            queue_wait_total_s=self._queue_wait.sum,
            queue_wait_max_s=self._queue_wait.max,
            queue_depth_peak=int(self._queue_depth_peak.value),
        )


_SENTINEL = object()


class ConcurrentProxy(Application):
    """Drive an :class:`Application` from a bounded thread pool.

    * ``workers`` threads pull requests off one queue and call
      ``app.handle``.
    * The queue holds at most ``queue_limit`` waiting requests; beyond
      that :meth:`submit` raises :class:`AdmissionError` and
      :meth:`handle` answers **503**.
    * :meth:`handle` waits at most ``request_timeout_s`` for the
      response and answers **504** when the deadline passes (the request
      is cancelled if still queued).
    * A handler exception becomes a **500** (and is counted in
      :attr:`RuntimeStats.failures`) rather than killing the worker.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        app: Application,
        workers: int = 8,
        queue_limit: int = 64,
        request_timeout_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker thread")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.app = app
        self.workers = workers
        self.queue_limit = queue_limit
        self.request_timeout_s = request_timeout_s
        self.stats = RuntimeStats(registry=metrics)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._closed = False
        self._draining = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"msite-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------

    def submit(self, request: Request) -> "Future[Response]":
        """Enqueue a request; returns a future resolving to the response.

        Raises :class:`AdmissionError` when the queue is full or the
        executor is closed.
        """
        if self._closed:
            raise AdmissionError("executor is closed")
        if self._draining:
            raise AdmissionError("executor is draining")
        future: "Future[Response]" = Future()
        item = (future, request, time.perf_counter())
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.stats.add(submitted=1, rejected=1)
            raise AdmissionError(
                f"admission queue full ({self.queue_limit} waiting)"
            ) from None
        self.stats.add(submitted=1)
        self.stats.observe_queue_depth(self._queue.qsize())
        return future

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker (approximate)."""
        return self._queue.qsize()

    @property
    def saturated(self) -> bool:
        """Whether the next :meth:`submit` is likely to be rejected.

        Advisory (the queue may drain between the check and the submit);
        the cluster router uses it to spill a request to a peer worker
        before paying an admission rejection.
        """
        return self._queue.qsize() >= self.queue_limit

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Stop admitting new requests; in-flight/queued work continues.

        The first step of a graceful scale-down: once admission is off,
        :meth:`close` finishes the queued work and joins the threads.
        """
        self._draining = True

    def handle(self, request: Request) -> Response:
        """Synchronous facade: submit, wait, map failures to statuses."""
        try:
            future = self.submit(request)
        except AdmissionError as exc:
            return Response.text(f"proxy overloaded: {exc}", status=503)
        return self.resolve(future)

    def resolve(self, future: "Future[Response]") -> Response:
        """Wait for a submitted request and map failures to statuses.

        Split out of :meth:`handle` so callers that need to distinguish
        admission rejection (the cluster's spill-over router) can call
        :meth:`submit` themselves and still share the status mapping.
        """
        try:
            response = future.result(timeout=self.request_timeout_s)
        except FutureTimeoutError:
            future.cancel()
            self.stats.add(timeouts=1)
            return Response.text(
                f"proxy timeout after {self.request_timeout_s}s", status=504
            )
        except CancelledError:
            self.stats.add(timeouts=1)
            return Response.text("request cancelled", status=504)
        except CircuitOpenError as exc:
            # A breaker that tripped below the wrapped app is load
            # shedding, not an internal error: answer 503 + Retry-After.
            self.stats.add(failures=1)
            response = Response.text(
                f"proxy temporarily refusing calls: {exc}", status=503
            )
            if exc.retry_after_s is not None:
                response.headers.set(
                    "Retry-After", str(max(1, round(exc.retry_after_s)))
                )
            return response
        except DegradedServeError as exc:
            self.stats.add(failures=1)
            return Response.text(f"proxy degraded: {exc}", status=503)
        except RetryExhaustedError as exc:
            self.stats.add(timeouts=1)
            return Response.text(f"origin timed out: {exc}", status=504)
        except Exception as exc:
            self.stats.add(failures=1)
            return Response.text(f"proxy error: {exc}", status=500)
        self.stats.add(completed=1)
        return response

    # -- worker side -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            future, request, enqueued_at = item
            self.stats.observe_queue_wait(time.perf_counter() - enqueued_at)
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue  # timed out while queued; caller is gone
            try:
                future.set_result(self.app.handle(request))
            except BaseException as exc:  # keep the worker alive
                future.set_exception(exc)
            finally:
                self._queue.task_done()

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Requests already queued are still served before workers exit.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SENTINEL)  # blocks if full; drains first
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ConcurrentProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
