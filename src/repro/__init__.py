"""m.Site reproduction: efficient content adaptation for mobile devices.

This package reproduces the system described in *m.Site: Efficient Content
Adaptation for Mobile Devices* (Koehl & Wang, Middleware 2012): a
proxy-based content-adaptation framework in which a site administrator
assigns *attributes* to page objects and a code generator emits a
lightweight multi-session proxy that adapts pages for mobile clients,
calling on a heavyweight server-side browser only when a graphical render
is required.

The top-level namespace re-exports the pieces a downstream user needs to
mobilize a site end to end:

* :class:`repro.admin.tool.AdminTool` — the visual-tool analog used to
  select page objects and assign attributes.
* :class:`repro.core.spec.AdaptationSpec` — the serializable adaptation
  description the tool produces.
* :class:`repro.core.proxy.MSiteProxy` — the generated proxy runtime.
* :mod:`repro.sites` — the synthetic origin sites used by the paper's
  evaluation (a vBulletin-style forum and a Craigslist-style classifieds
  site).
* :mod:`repro.devices` — mobile-device timing profiles used to reproduce
  the paper's wall-clock comparisons.
"""

from repro.errors import (
    MSiteError,
    AdaptationError,
    FetchError,
    IdentificationError,
    RenderError,
    SessionError,
)

__version__ = "1.0.0"

__all__ = [
    "MSiteError",
    "AdaptationError",
    "FetchError",
    "IdentificationError",
    "RenderError",
    "SessionError",
    "__version__",
]
