"""The Figure 7 scalability experiment.

Protocol, from §4.6 of the paper:

* simulate repeated client requests for a remote site,
* vary the percentage of requests that require instantiation of a full
  browser instance,
* commodity dual-core hardware, no thread pool of browser instances,
* three runs per data point, each over a one-minute measurement window,
* "A U[0,1] random number is assigned to each request; if the number
  exceeds the percentage being tested, the request is marked as not
  requiring a browser instance."

Result anchors: 224 satisfied requests/minute at 100% browser renders,
29,038 at 0% — "two orders of magnitude".

The experiment runs on the discrete-event simulator: a closed population
of clients issues requests back-to-back; each request occupies one of two
cores for its service time (browser launch+render, or the lightweight
proxy path); completions inside the measurement window are counted.

A second, wall-clock mode (:func:`run_real_threadpool_experiment`) drives
the same workload through the real concurrent runtime — OS threads, the
bounded-admission executor, the semaphore-bounded browser pool, and the
single-flight pre-render cache — with sleeps standing in for service
times, so Figure 7 can also be reproduced on actual thread contention
with queue-wait and stampede-suppression metrics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.browser.pool import BrowserPool
from repro.core.cache import PrerenderCache
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.observability.metrics import (
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.runtime.executor import ConcurrentProxy
from repro.sim.metrics import Tally, WindowedCounter
from repro.sim.process import Acquire, Delay, Release, Simulation
from repro.sim.resources import Resource
from repro.sim.rng import DeterministicRandom


@dataclass
class ScalabilityConfig:
    """One experiment configuration."""

    browser_fraction: float  # 0.0 .. 1.0 of requests needing a browser
    cores: int = 2
    window_s: float = 60.0
    runs: int = 3
    client_count: int = 64  # closed-loop clients issuing back-to-back
    costs: BrowserCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    seed: int = 0xF16_7
    use_pool: bool = False  # the paper's configuration is pool-free
    pool_size: int = 4


@dataclass
class ScalabilityResult:
    """Aggregated over the configured runs."""

    browser_fraction: float
    mean_requests_per_minute: float
    min_requests_per_minute: float
    max_requests_per_minute: float
    browser_requests: int
    lightweight_requests: int
    pool_hit_rate: float = 0.0
    # Per-phase service-time distributions ("render" vs "lightweight"),
    # merged across runs — the histogram evidence that the Figure 7 gap
    # is the render phase's doing.
    phases: dict[str, HistogramSnapshot] = field(default_factory=dict)


def _phase_histograms() -> dict[str, Histogram]:
    return {
        phase: Histogram(
            "msite_phase_service_seconds",
            "Per-request service time by pipeline phase.",
            labels={"phase": phase},
        )
        for phase in ("render", "lightweight")
    }


def run_scalability_experiment(config: ScalabilityConfig) -> ScalabilityResult:
    """Run ``config.runs`` one-minute windows and aggregate throughput."""
    if not 0.0 <= config.browser_fraction <= 1.0:
        raise ValueError("browser_fraction must be within [0, 1]")
    tally = Tally("throughput")
    browser_total = 0
    lightweight_total = 0
    pool_hits = 0.0
    phases = _phase_histograms()
    for run_index in range(config.runs):
        rng = DeterministicRandom(
            config.seed ^ (run_index * 0x9E3779B9) ^ id_hash(config)
        )
        # Each window observes into fresh histograms; merging them here
        # exercises the same bucket-wise merge /metrics relies on.
        run_phases = _phase_histograms()
        outcome = _run_window(config, rng, run_phases)
        tally.observe(outcome["satisfied"])
        browser_total += outcome["browser"]
        lightweight_total += outcome["lightweight"]
        pool_hits += outcome["pool_hit_rate"]
        for phase, histogram in run_phases.items():
            phases[phase].merge(histogram)
    return ScalabilityResult(
        browser_fraction=config.browser_fraction,
        mean_requests_per_minute=tally.mean * (60.0 / config.window_s),
        min_requests_per_minute=tally.minimum * (60.0 / config.window_s),
        max_requests_per_minute=tally.maximum * (60.0 / config.window_s),
        browser_requests=browser_total,
        lightweight_requests=lightweight_total,
        pool_hit_rate=pool_hits / config.runs,
        phases={
            phase: histogram.snapshot()
            for phase, histogram in phases.items()
        },
    )


def id_hash(config: ScalabilityConfig) -> int:
    """Stable per-configuration stream id (fraction enters the seed)."""
    return int(config.browser_fraction * 10_000) * 2_654_435_761 & 0xFFFFFFFF


def _run_window(
    config: ScalabilityConfig,
    rng: DeterministicRandom,
    phases: Optional[dict[str, Histogram]] = None,
) -> dict:
    sim = Simulation()
    cores = Resource(config.cores, name="cpu-cores")
    window = WindowedCounter(start=0.0, duration=config.window_s)
    counts = {"browser": 0, "lightweight": 0}
    pool = (
        BrowserPool(max_instances=config.pool_size, costs=config.costs)
        if config.use_pool
        else None
    )

    def client(client_id: int):
        while sim.now < config.window_s:
            # The paper's marking rule: U[0,1] > percentage means NO
            # browser needed, i.e. <= percentage means browser render.
            draw = rng.uniform()
            needs_browser = draw <= config.browser_fraction
            yield Acquire(cores)
            # Browser instances are claimed at dispatch time, once the
            # request actually starts executing on a core.
            if needs_browser:
                if pool is not None:
                    service = pool.acquire(f"user{client_id}")
                else:
                    service = config.costs.browser_request_s
            else:
                service = config.costs.lightweight_request_s
            if phases is not None:
                phases["render" if needs_browser else "lightweight"].observe(
                    service
                )
            yield Delay(service)
            if pool is not None and needs_browser:
                pool.release(f"user{client_id}")
            yield Release(cores)
            if window.record(sim.now):
                counts["browser" if needs_browser else "lightweight"] += 1

    for client_id in range(config.client_count):
        sim.spawn(client(client_id), name=f"client-{client_id}")
    sim.run(until=config.window_s)
    return {
        "satisfied": window.count,
        "browser": counts["browser"],
        "lightweight": counts["lightweight"],
        "pool_hit_rate": pool.hit_rate if pool is not None else 0.0,
    }


def run_browser_percentage_sweep(
    percentages: list[float] | None = None,
    use_pool: bool = False,
    costs: BrowserCostModel | None = None,
    runs: int = 3,
) -> list[ScalabilityResult]:
    """The Figure 7 sweep over browser-render percentages."""
    if percentages is None:
        percentages = [1.0, 0.75, 0.50, 0.25, 0.10, 0.05, 0.01, 0.0]
    results = []
    for fraction in percentages:
        config = ScalabilityConfig(
            browser_fraction=fraction,
            use_pool=use_pool,
            runs=runs,
            costs=costs or DEFAULT_COST_MODEL,
        )
        results.append(run_scalability_experiment(config))
    return results


# ---------------------------------------------------------------------------
# The real-thread-pool reproduction (wall clock, actual contention)


@dataclass
class RealThreadPoolConfig:
    """One wall-clock run through the concurrent runtime.

    Service times are scaled down from the paper's (a ~266 ms browser
    render would make the sweep take minutes); what matters for the
    Figure 7 *shape* is the ratio between the browser and lightweight
    paths, which the defaults keep at two-plus orders of magnitude.
    """

    browser_fraction: float
    workers: int = 8
    client_threads: int = 8
    total_requests: int = 400
    queue_limit: int = 0  # 0 -> sized to client_threads (no rejections)
    request_timeout_s: float | None = None
    browser_service_s: float = 0.020
    lightweight_service_s: float = 0.0
    distinct_pages: int = 8
    pool_size: int = 4
    seed: int = 0xF16_7


@dataclass
class RealThreadPoolResult:
    """What one wall-clock run measured."""

    browser_fraction: float
    requests_per_minute: float
    wall_clock_s: float
    completed: int
    rejected: int
    timeouts: int
    errors: int
    browser_requests: int
    lightweight_requests: int
    renders: int  # actual browser renders after single-flight collapse
    stampedes_suppressed: int
    queue_wait_mean_s: float
    queue_wait_max_s: float
    queue_depth_peak: int
    pool_queue_waits: int
    pool_queue_wait_mean_s: float
    pool_queue_wait_max_s: float
    # Wall-clock per-phase service histograms, measured inside the app.
    phases: dict[str, HistogramSnapshot] = field(default_factory=dict)


class _ServiceTimeApplication(Application):
    """Stands in for the generated proxy under the executor.

    Browser-marked requests render "snapshots" through the single-flight
    cache and the semaphore-bounded pool (a render = holding a pool slot
    for ``browser_service_s``); lightweight requests cost
    ``lightweight_service_s``.  Nothing is stored in the cache, so every
    non-overlapping browser request pays the full render — matching the
    paper's cache-free Figure 7 protocol — while *concurrent* misses on
    one page collapse, which is exactly what the stampede counters
    measure.
    """

    def __init__(
        self,
        browser_service_s: float,
        lightweight_service_s: float,
        pool: BrowserPool,
        cache: PrerenderCache,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.browser_service_s = browser_service_s
        self.lightweight_service_s = lightweight_service_s
        self.pool = pool
        self.cache = cache
        self.renders = 0
        self._lock = threading.Lock()
        registry = registry or MetricsRegistry()
        self.phase_histograms = {
            phase: registry.histogram(
                "msite_phase_service_seconds",
                "Per-request service time by pipeline phase.",
                labels={"phase": phase},
            )
            for phase in ("render", "lightweight")
        }

    def handle(self, request: Request) -> Response:
        page = request.params.get("page", "p0")
        if request.params.get("browser") == "1":
            started = time.perf_counter()

            def _render() -> str:
                with self.pool.instance(f"page-{page}"):
                    if self.browser_service_s > 0:
                        time.sleep(self.browser_service_s)
                with self._lock:
                    self.renders += 1
                return page

            self.cache.load_or_join(f"snap:{page}", _render)
            self.phase_histograms["render"].observe(
                time.perf_counter() - started
            )
        else:
            started = time.perf_counter()
            if self.lightweight_service_s > 0:
                time.sleep(self.lightweight_service_s)
            self.phase_histograms["lightweight"].observe(
                time.perf_counter() - started
            )
        return Response.text("ok")


def run_real_threadpool_experiment(
    config: RealThreadPoolConfig,
) -> RealThreadPoolResult:
    """Drive the marked workload through real threads and measure."""
    if not 0.0 <= config.browser_fraction <= 1.0:
        raise ValueError("browser_fraction must be within [0, 1]")
    rng = DeterministicRandom(config.seed ^ id_hash_real(config))
    # Pre-generate the paper's U[0,1] marking so the workload is
    # deterministic regardless of thread scheduling.
    marked = [
        rng.uniform() <= config.browser_fraction
        for _ in range(config.total_requests)
    ]
    requests = [
        Request.get(
            "http://proxy.local/"
            f"?page=p{index % config.distinct_pages}"
            f"&browser={'1' if needs_browser else '0'}"
        )
        for index, needs_browser in enumerate(marked)
    ]

    registry = MetricsRegistry()
    pool = BrowserPool(max_instances=config.pool_size)
    pool.bind_metrics(registry)
    cache = PrerenderCache()
    cache.bind_metrics(registry)
    app = _ServiceTimeApplication(
        browser_service_s=config.browser_service_s,
        lightweight_service_s=config.lightweight_service_s,
        pool=pool,
        cache=cache,
        registry=registry,
    )
    queue_limit = config.queue_limit or max(
        config.client_threads, config.workers
    )
    statuses: dict[int, int] = {}
    status_lock = threading.Lock()
    next_index = [0]

    with ConcurrentProxy(
        app,
        workers=config.workers,
        queue_limit=queue_limit,
        request_timeout_s=config.request_timeout_s,
        metrics=registry,
    ) as executor:

        def client() -> None:
            while True:
                with status_lock:
                    index = next_index[0]
                    if index >= len(requests):
                        return
                    next_index[0] = index + 1
                response = executor.handle(requests[index])
                with status_lock:
                    statuses[response.status] = (
                        statuses.get(response.status, 0) + 1
                    )

        threads = [
            threading.Thread(target=client, name=f"client-{i}")
            for i in range(config.client_threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        runtime = executor.stats.snapshot()

    completed = statuses.get(200, 0)
    return RealThreadPoolResult(
        browser_fraction=config.browser_fraction,
        requests_per_minute=completed * 60.0 / elapsed if elapsed else 0.0,
        wall_clock_s=elapsed,
        completed=completed,
        rejected=statuses.get(503, 0),
        timeouts=statuses.get(504, 0),
        errors=statuses.get(500, 0),
        browser_requests=sum(marked),
        lightweight_requests=len(marked) - sum(marked),
        renders=app.renders,
        stampedes_suppressed=cache.stats.stampedes_suppressed,
        queue_wait_mean_s=runtime.mean_queue_wait_s,
        queue_wait_max_s=runtime.queue_wait_max_s,
        queue_depth_peak=runtime.queue_depth_peak,
        pool_queue_waits=pool.stats.queue_waits,
        pool_queue_wait_mean_s=pool.stats.mean_queue_wait_s,
        pool_queue_wait_max_s=pool.stats.queue_wait_max_s,
        phases={
            phase: histogram.snapshot()
            for phase, histogram in app.phase_histograms.items()
        },
    )


def id_hash_real(config: RealThreadPoolConfig) -> int:
    """Stable per-configuration stream id, as for the simulated sweep."""
    return int(config.browser_fraction * 10_000) * 2_654_435_761 & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# The cluster reproduction (fleet of workers over one shared cache)


#: User-Agents of the cluster workload's device mix; the shard key and
#: the render key both derive the device class from the UA, exactly as
#: the real deployment does.
CLUSTER_DEVICE_AGENTS: tuple[tuple[str, str], ...] = (
    ("phone", (
        "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_0 like Mac OS X; en-us) "
        "AppleWebKit/532.9 (KHTML, like Gecko) Version/4.0.5 Mobile/8A293 "
        "Safari/6531.22.7"
    )),
    ("desktop", (
        "Mozilla/5.0 (Windows NT 6.0; WOW64) AppleWebKit/535.19 "
        "(KHTML, like Gecko) Chrome/18.0.1025.162 Safari/535.19"
    )),
)


@dataclass
class ClusterScalabilityConfig:
    """One wall-clock run through a :class:`ClusterDeployment` fleet.

    Unlike the cache-free single-proxy protocol, the cluster run keeps
    the shared cache on: the point being measured is m.Site's
    render-amortization *across the fleet* — each (page, device) pair
    is rendered exactly once no matter which worker fields the cold
    request — on top of the horizontal throughput gain.  Every request
    additionally pays ``lightweight_service_s`` of serving work, so the
    fleet-size speedup is visible at every browser fraction.
    """

    browser_fraction: float
    fleet_workers: int = 4
    worker_threads: int = 2
    client_threads: int = 16
    total_requests: int = 600
    queue_limit: int = 0  # 0 -> sized to client_threads (no rejections)
    spill_depth: int | None = None  # None -> worker_threads (steal work)
    request_timeout_s: float | None = None
    browser_service_s: float = 0.010
    lightweight_service_s: float = 0.002
    distinct_pages: int = 16
    seed: int = 0xF16_7


@dataclass
class ClusterScalabilityResult:
    """What one cluster run measured."""

    browser_fraction: float
    fleet_workers: int
    requests_per_minute: float
    wall_clock_s: float
    completed: int
    rejected: int
    timeouts: int
    errors: int
    browser_requests: int
    lightweight_requests: int
    renders: int  # fleet-total renders after shared single-flight
    unique_render_keys: int  # distinct (page, device) pairs rendered
    stampedes_suppressed: int
    spillovers: int
    offshard: int
    unrouteable: int


class _RenderLedger:
    """Fleet-shared record of which (page, device) keys were rendered."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.renders = 0
        self.keys: set[str] = set()

    def record(self, key: str) -> None:
        with self._lock:
            self.renders += 1
            self.keys.add(key)


class _ClusterServiceApplication(Application):
    """The per-worker stand-in app for the cluster sweep.

    ``services.cache`` is the *fleet-shared* cache the deployment
    attached, so a render performed on one worker is a hit (or a joined
    flight) on every other — the property the acceptance criterion
    "total renders == unique (page, device) pairs" pins down.
    """

    def __init__(
        self,
        services,
        browser_service_s: float,
        lightweight_service_s: float,
        ledger: _RenderLedger,
    ) -> None:
        self.services = services
        self.browser_service_s = browser_service_s
        self.lightweight_service_s = lightweight_service_s
        self.ledger = ledger

    def handle(self, request: Request) -> Response:
        from repro.core.detect import device_class

        page = request.params.get("page", "p0")
        if request.params.get("browser") == "1":
            device = device_class(request.headers.get("User-Agent"))
            key = f"clustersnap:{page}:{device}"

            def _render() -> str:
                if self.browser_service_s > 0:
                    time.sleep(self.browser_service_s)
                self.ledger.record(key)
                return page

            self.services.cache.get_or_load(key, _render, ttl_s=3600.0)
        if self.lightweight_service_s > 0:
            time.sleep(self.lightweight_service_s)
        return Response.text("ok")


def id_hash_cluster(config: ClusterScalabilityConfig) -> int:
    """Stable per-configuration stream id (fraction + fleet size)."""
    return (
        int(config.browser_fraction * 10_000) * 2_654_435_761
        ^ config.fleet_workers * 0x9E3779B9
    ) & 0xFFFFFFFF


def _registry_total(registry, name: str) -> int:
    """Sum a counter family's children (labelled series included)."""
    for family in registry.collect():
        if family.name == name:
            return int(sum(m.value for m in family.sorted_children()))
    return 0


def run_cluster_experiment(
    config: ClusterScalabilityConfig,
) -> ClusterScalabilityResult:
    """Drive the marked workload through a worker fleet and measure."""
    from repro.cluster.deployment import ClusterDeployment

    if not 0.0 <= config.browser_fraction <= 1.0:
        raise ValueError("browser_fraction must be within [0, 1]")
    rng = DeterministicRandom(config.seed ^ id_hash_cluster(config))
    marked = [
        rng.uniform() <= config.browser_fraction
        for _ in range(config.total_requests)
    ]
    agents = CLUSTER_DEVICE_AGENTS
    requests = [
        Request.get(
            "http://cluster.local/"
            f"?page=p{index % config.distinct_pages}"
            f"&browser={'1' if needs_browser else '0'}",
            User_Agent=agents[
                (index // config.distinct_pages) % len(agents)
            ][1],
        )
        for index, needs_browser in enumerate(marked)
    ]

    ledger = _RenderLedger()
    queue_limit = config.queue_limit or max(
        config.client_threads, config.worker_threads
    )
    statuses: dict[int, int] = {}
    status_lock = threading.Lock()
    next_index = [0]

    with ClusterDeployment(
        origins={},
        workers=config.fleet_workers,
        worker_threads=config.worker_threads,
        queue_limit=queue_limit,
        spill_depth=(
            config.spill_depth
            if config.spill_depth is not None
            else config.worker_threads
        ),
        request_timeout_s=config.request_timeout_s,
        site="bench",
        make_app=lambda services: _ClusterServiceApplication(
            services,
            browser_service_s=config.browser_service_s,
            lightweight_service_s=config.lightweight_service_s,
            ledger=ledger,
        ),
    ) as cluster:

        def client() -> None:
            while True:
                with status_lock:
                    index = next_index[0]
                    if index >= len(requests):
                        return
                    next_index[0] = index + 1
                response = cluster.handle(requests[index])
                with status_lock:
                    statuses[response.status] = (
                        statuses.get(response.status, 0) + 1
                    )

        threads = [
            threading.Thread(target=client, name=f"cluster-client-{i}")
            for i in range(config.client_threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        shared_stats = cluster.shared_cache.cache.stats
        registry = cluster.registry
        spillovers = _registry_total(
            registry, "msite_cluster_spillovers_total"
        )
        offshard = _registry_total(registry, "msite_cluster_offshard_total")
        unrouteable = _registry_total(
            registry, "msite_cluster_unrouteable_total"
        )
        stampedes = shared_stats.stampedes_suppressed

    completed = statuses.get(200, 0)
    return ClusterScalabilityResult(
        browser_fraction=config.browser_fraction,
        fleet_workers=config.fleet_workers,
        requests_per_minute=completed * 60.0 / elapsed if elapsed else 0.0,
        wall_clock_s=elapsed,
        completed=completed,
        rejected=statuses.get(503, 0),
        timeouts=statuses.get(504, 0),
        errors=statuses.get(500, 0),
        browser_requests=sum(marked),
        lightweight_requests=len(marked) - sum(marked),
        renders=ledger.renders,
        unique_render_keys=len(ledger.keys),
        stampedes_suppressed=stampedes,
        spillovers=spillovers,
        offshard=offshard,
        unrouteable=unrouteable,
    )


def run_cluster_sweep(
    percentages: list[float] | None = None,
    fleet_sizes: tuple[int, ...] = (1, 4),
    **overrides,
) -> dict[int, list[ClusterScalabilityResult]]:
    """The Figure 7 sweep per fleet size.

    Returns ``{fleet_size: [result per percentage]}``; comparing the
    0%-browser rows across fleet sizes is the horizontal-scaling
    headline (acceptance: 4 workers ≥ 3x one worker), and the render
    counts in every row pin the fleet-wide single-render property.
    """
    if percentages is None:
        percentages = [1.0, 0.50, 0.25, 0.10, 0.0]
    sweep: dict[int, list[ClusterScalabilityResult]] = {}
    for fleet in fleet_sizes:
        sweep[fleet] = [
            run_cluster_experiment(
                ClusterScalabilityConfig(
                    browser_fraction=fraction,
                    fleet_workers=fleet,
                    **overrides,
                )
            )
            for fraction in percentages
        ]
    return sweep


def run_real_threadpool_sweep(
    percentages: list[float] | None = None,
    **overrides,
) -> list[RealThreadPoolResult]:
    """The Figure 7 sweep on real threads.

    ``overrides`` are forwarded to every :class:`RealThreadPoolConfig`
    (e.g. ``total_requests=2000, browser_service_s=0.05``).
    """
    if percentages is None:
        percentages = [1.0, 0.75, 0.50, 0.25, 0.10, 0.05, 0.01, 0.0]
    return [
        run_real_threadpool_experiment(
            RealThreadPoolConfig(browser_fraction=fraction, **overrides)
        )
        for fraction in percentages
    ]
