"""The Figure 7 scalability experiment.

Protocol, from §4.6 of the paper:

* simulate repeated client requests for a remote site,
* vary the percentage of requests that require instantiation of a full
  browser instance,
* commodity dual-core hardware, no thread pool of browser instances,
* three runs per data point, each over a one-minute measurement window,
* "A U[0,1] random number is assigned to each request; if the number
  exceeds the percentage being tested, the request is marked as not
  requiring a browser instance."

Result anchors: 224 satisfied requests/minute at 100% browser renders,
29,038 at 0% — "two orders of magnitude".

The experiment runs on the discrete-event simulator: a closed population
of clients issues requests back-to-back; each request occupies one of two
cores for its service time (browser launch+render, or the lightweight
proxy path); completions inside the measurement window are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.browser.pool import BrowserPool
from repro.sim.metrics import Tally, WindowedCounter
from repro.sim.process import Acquire, Delay, Release, Simulation
from repro.sim.resources import Resource
from repro.sim.rng import DeterministicRandom


@dataclass
class ScalabilityConfig:
    """One experiment configuration."""

    browser_fraction: float  # 0.0 .. 1.0 of requests needing a browser
    cores: int = 2
    window_s: float = 60.0
    runs: int = 3
    client_count: int = 64  # closed-loop clients issuing back-to-back
    costs: BrowserCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    seed: int = 0xF16_7
    use_pool: bool = False  # the paper's configuration is pool-free
    pool_size: int = 4


@dataclass
class ScalabilityResult:
    """Aggregated over the configured runs."""

    browser_fraction: float
    mean_requests_per_minute: float
    min_requests_per_minute: float
    max_requests_per_minute: float
    browser_requests: int
    lightweight_requests: int
    pool_hit_rate: float = 0.0


def run_scalability_experiment(config: ScalabilityConfig) -> ScalabilityResult:
    """Run ``config.runs`` one-minute windows and aggregate throughput."""
    if not 0.0 <= config.browser_fraction <= 1.0:
        raise ValueError("browser_fraction must be within [0, 1]")
    tally = Tally("throughput")
    browser_total = 0
    lightweight_total = 0
    pool_hits = 0.0
    for run_index in range(config.runs):
        rng = DeterministicRandom(
            config.seed ^ (run_index * 0x9E3779B9) ^ id_hash(config)
        )
        outcome = _run_window(config, rng)
        tally.observe(outcome["satisfied"])
        browser_total += outcome["browser"]
        lightweight_total += outcome["lightweight"]
        pool_hits += outcome["pool_hit_rate"]
    return ScalabilityResult(
        browser_fraction=config.browser_fraction,
        mean_requests_per_minute=tally.mean * (60.0 / config.window_s),
        min_requests_per_minute=tally.minimum * (60.0 / config.window_s),
        max_requests_per_minute=tally.maximum * (60.0 / config.window_s),
        browser_requests=browser_total,
        lightweight_requests=lightweight_total,
        pool_hit_rate=pool_hits / config.runs,
    )


def id_hash(config: ScalabilityConfig) -> int:
    """Stable per-configuration stream id (fraction enters the seed)."""
    return int(config.browser_fraction * 10_000) * 2_654_435_761 & 0xFFFFFFFF


def _run_window(config: ScalabilityConfig, rng: DeterministicRandom) -> dict:
    sim = Simulation()
    cores = Resource(config.cores, name="cpu-cores")
    window = WindowedCounter(start=0.0, duration=config.window_s)
    counts = {"browser": 0, "lightweight": 0}
    pool = (
        BrowserPool(max_instances=config.pool_size, costs=config.costs)
        if config.use_pool
        else None
    )

    def client(client_id: int):
        while sim.now < config.window_s:
            # The paper's marking rule: U[0,1] > percentage means NO
            # browser needed, i.e. <= percentage means browser render.
            draw = rng.uniform()
            needs_browser = draw <= config.browser_fraction
            yield Acquire(cores)
            # Browser instances are claimed at dispatch time, once the
            # request actually starts executing on a core.
            if needs_browser:
                if pool is not None:
                    service = pool.acquire(f"user{client_id}")
                else:
                    service = config.costs.browser_request_s
            else:
                service = config.costs.lightweight_request_s
            yield Delay(service)
            if pool is not None and needs_browser:
                pool.release(f"user{client_id}")
            yield Release(cores)
            if window.record(sim.now):
                counts["browser" if needs_browser else "lightweight"] += 1

    for client_id in range(config.client_count):
        sim.spawn(client(client_id), name=f"client-{client_id}")
    sim.run(until=config.window_s)
    return {
        "satisfied": window.count,
        "browser": counts["browser"],
        "lightweight": counts["lightweight"],
        "pool_hit_rate": pool.hit_rate if pool is not None else 0.0,
    }


def run_browser_percentage_sweep(
    percentages: list[float] | None = None,
    use_pool: bool = False,
    costs: BrowserCostModel | None = None,
    runs: int = 3,
) -> list[ScalabilityResult]:
    """The Figure 7 sweep over browser-render percentages."""
    if percentages is None:
        percentages = [1.0, 0.75, 0.50, 0.25, 0.10, 0.05, 0.01, 0.0]
    results = []
    for fraction in percentages:
        config = ScalabilityConfig(
            browser_fraction=fraction,
            use_pool=use_pool,
            runs=runs,
            costs=costs or DEFAULT_COST_MODEL,
        )
        results.append(run_scalability_experiment(config))
    return results
