"""The region-failover bench behind ``msite bench-regions``.

Measures the two numbers the multi-region design promises:

* **warm failover** — with the owner region killed, cached-snapshot
  latency from the "wrong" region stays within a small multiple of the
  owner region's (the survivor serves the replicated snapshot from its
  own tier stack instead of re-rendering);
* **warm restart** — a full fleet shutdown + restart over the same
  snapshot directories recovers ≥ 90% of the prior working set from
  disk before the first request.

The run upserts one ``region_failover`` row into BENCH_pipeline.json
(via :mod:`repro.bench.store`, so concurrent bench writers merge
instead of clobbering).
"""

from __future__ import annotations

import math
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class RegionFailoverReport:
    """One bench run's measurements, all latencies in milliseconds."""

    samples: int
    regions: tuple[str, ...] = ()
    workers_per_region: int = 0
    victim: str = ""
    owner_p50_ms: float = 0.0
    owner_p99_ms: float = 0.0
    failover_first_ms: float = 0.0
    wrong_region_p50_ms: float = 0.0
    wrong_region_p99_ms: float = 0.0
    non_degraded_5xx: int = 0
    replications: int = 0
    working_set: int = 0
    restored: int = 0
    preloaded_after_restart: int = 0
    statuses: dict[int, int] = field(default_factory=dict)

    @property
    def wrong_over_owner_p99(self) -> float:
        if self.owner_p99_ms <= 0:
            return 0.0
        return self.wrong_region_p99_ms / self.owner_p99_ms

    @property
    def warm_start_fraction(self) -> float:
        if not self.working_set:
            return 0.0
        return self.restored / self.working_set

    @property
    def key(self) -> str:
        return (
            f"forum@{len(self.regions)}x{self.workers_per_region}"
            f"w{self.samples}"
        )

    def bench_row(self) -> dict:
        return {
            "samples": self.samples,
            "regions": list(self.regions),
            "workers_per_region": self.workers_per_region,
            "victim": self.victim,
            "owner_p50_ms": round(self.owner_p50_ms, 3),
            "owner_p99_ms": round(self.owner_p99_ms, 3),
            "failover_first_ms": round(self.failover_first_ms, 3),
            "wrong_region_p50_ms": round(self.wrong_region_p50_ms, 3),
            "wrong_region_p99_ms": round(self.wrong_region_p99_ms, 3),
            "wrong_over_owner_p99": round(self.wrong_over_owner_p99, 3),
            "non_degraded_5xx": self.non_degraded_5xx,
            "snapshot_replications": self.replications,
            "working_set": self.working_set,
            "restored_from_disk": self.restored,
            "warm_start_fraction": round(self.warm_start_fraction, 4),
        }


#: The cached paths measured; all are warm after the warm-up pass.
MEASURED_PATHS = ("", "?page=forums", "?page=login", "?file=snapshot.jpg")


def run_region_failover_bench(
    smoke: bool = False,
    samples: Optional[int] = None,
    workers_per_region: int = 2,
    snapshot_root: Optional[str] = None,
) -> RegionFailoverReport:
    """Measure owner-region vs failed-over latency, then warm restart."""
    from repro.cli import _build_forum_spec
    from repro.net.client import HttpClient
    from repro.net.cookies import CookieJar
    from repro.regions.deployment import RegionalDeployment

    if samples is None:
        samples = 40 if smoke else 160
    spec, origins = _build_forum_spec()
    owns_root = snapshot_root is None
    if snapshot_root is None:
        snapshot_root = tempfile.mkdtemp(prefix="msite-bench-regions-")
    report = RegionFailoverReport(
        samples=samples, workers_per_region=workers_per_region
    )

    def _timed_get(mobile, url: str) -> float:
        started = time.perf_counter()
        response = mobile.get(url)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        report.statuses[response.status] = (
            report.statuses.get(response.status, 0) + 1
        )
        if response.status >= 500 and not response.headers.get(
            "X-MSite-Degraded"
        ):
            report.non_degraded_5xx += 1
        return elapsed_ms

    base = "http://m.sawmillcreek.org/proxy.php"
    working_set: dict[str, list[str]] = {}
    try:
        with RegionalDeployment(
            snapshot_root=snapshot_root,
            spec=spec,
            origins=origins,
            workers_per_region=workers_per_region,
        ) as deployment:
            report.regions = tuple(deployment.region_names)
            mobile = HttpClient(
                {"m.sawmillcreek.org": deployment}, jar=CookieJar()
            )
            victim = None
            for suffix in MEASURED_PATHS:
                response = mobile.get(base + suffix)
                if suffix == "":
                    victim = response.headers.get("X-MSite-Region")
            assert victim is not None
            report.victim = victim
            # Drain the write-behind queues so the survivor's replicated
            # store reflects steady state before the measurements.
            for region in deployment.regions:
                region.backend.flush()

            owner_ms = [
                _timed_get(
                    mobile, base + MEASURED_PATHS[i % len(MEASURED_PATHS)]
                )
                for i in range(samples)
            ]
            report.owner_p50_ms = _percentile(owner_ms, 0.50)
            report.owner_p99_ms = _percentile(owner_ms, 0.99)

            deployment.kill(victim)
            report.failover_first_ms = _timed_get(mobile, base)
            wrong_ms = [
                _timed_get(
                    mobile, base + MEASURED_PATHS[i % len(MEASURED_PATHS)]
                )
                for i in range(samples)
            ]
            report.wrong_region_p50_ms = _percentile(wrong_ms, 0.50)
            report.wrong_region_p99_ms = _percentile(wrong_ms, 0.99)
            deployment.revive(victim)

            registry = deployment.rollup()
            report.replications = sum(
                int(metric.value)
                for family in registry.collect()
                if family.name == "msite_region_replications_total"
                for metric in family.sorted_children()
            )
            working_set = {
                region.name: region.backend.cache.keys()
                for region in deployment.regions
            }
            report.working_set = sum(
                len(keys) for keys in working_set.values()
            )
        # The context exit flushed and closed every region.  A brand-new
        # deployment over the same snapshot directories must warm-start.
        with RegionalDeployment(
            snapshot_root=snapshot_root,
            spec=spec,
            origins=origins,
            workers_per_region=workers_per_region,
        ) as restarted:
            report.preloaded_after_restart = sum(
                region.backend.preloaded for region in restarted.regions
            )
            report.restored = sum(
                1
                for name, keys in working_set.items()
                for key in keys
                if restarted.region(name).backend.cache.peek(key)
                is not None
            )
    finally:
        if owns_root:
            shutil.rmtree(snapshot_root, ignore_errors=True)
    return report


def format_report(report: RegionFailoverReport) -> str:
    lines = [
        f"m.Site region failover bench: {report.samples} samples, "
        f"regions {', '.join(report.regions)} "
        f"({report.workers_per_region} workers each), "
        f"victim {report.victim!r}",
        "",
        "  cached-snapshot latency:",
        f"    owner region   p50 {report.owner_p50_ms:>8.3f} ms   "
        f"p99 {report.owner_p99_ms:>8.3f} ms",
        f"    wrong region   p50 {report.wrong_region_p50_ms:>8.3f} ms   "
        f"p99 {report.wrong_region_p99_ms:>8.3f} ms "
        f"({report.wrong_over_owner_p99:.2f}x owner)",
        f"    first failed-over request: "
        f"{report.failover_first_ms:.3f} ms",
        f"    non-degraded 5xx: {report.non_degraded_5xx}",
        "",
        "  durability:",
        f"    snapshot replications: {report.replications}",
        f"    working set at shutdown: {report.working_set} keys",
        f"    restored from disk: {report.restored} "
        f"({report.warm_start_fraction * 100:.1f}%)",
        f"    preloaded entries after restart: "
        f"{report.preloaded_after_restart}",
    ]
    return "\n".join(lines)
