"""The bursty (non-closed-loop) Figure 7 experiment: burst absorption.

The paper's Figure 7 protocol is closed-loop — a fixed client
population, next request when the last answer lands — which can never
overload the system faster than it answers.  Real flash crowds are
open-loop: arrivals keep coming whether or not the fleet is keeping up.
This bench replays one seeded :class:`repro.workload.arrivals.FlashCrowd`
schedule against two configurations of the same executor:

* **inline** — the seed architecture: browser-marked requests render on
  the request thread, holding a slot of the semaphore-bounded
  :class:`~repro.browser.pool.BrowserPool`.  Under the burst the render
  backlog parks every worker thread, the admission queue fills, and
  arrivals bounce off admission control as 503s — thread starvation
  made visible.
* **farm** — the same requests submit their renders to a
  :class:`~repro.renderfarm.RenderFarm` with a bounded wait.  Farm
  backpressure (full queue, missed deadline) surfaces as a *degraded
  200* with an ``X-MSite-Degraded`` marker — the ladder's stale rung —
  so worker threads stay free, admission stays open, and the only 5xx
  budget spent is zero.

The acceptance criterion the tier-1 smoke and the full run pin: the
farm side serves **zero non-degraded 5xx** while holding a bounded p99;
the full run additionally requires the inline side to saturate
admission (at least one 5xx) under the identical schedule, and
merge-writes a ``renderfarm_burst`` section into BENCH_pipeline.json.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.browser.pool import BrowserPool
from repro.core.cache import PrerenderCache
from repro.errors import AdmissionError, RenderFarmError
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.observability.metrics import MetricsRegistry
from repro.renderfarm import INTERACTIVE, RenderFarm, RenderKey
from repro.runtime.executor import ConcurrentProxy
from repro.sim.rng import DeterministicRandom
from repro.workload.arrivals import FlashCrowd

#: Marker header the farm app sets on backpressure-degraded responses,
#: mirroring the proxy's degradation ladder convention.
DEGRADED_HEADER = "X-MSite-Degraded"


@dataclass
class BurstConfig:
    """One flash-crowd replay against one executor configuration."""

    browser_fraction: float = 0.3  # acceptance floor is >= 0.2
    base_rps: float = 40.0
    peak_rps: float = 400.0
    ramp_s: float = 1.0
    hold_s: float = 2.0
    duration_s: float = 5.0
    # At the 400 rps peak, browser work arrives at 120 renders/s.  The
    # inline pool (2 slots x 0.02s) caps at 100/s — it must fall behind
    # — while the farm (4 consumers) caps at 200/s and keeps worker
    # threads free, so only the bounded render wait is ever spent on a
    # request thread.
    workers: int = 8
    queue_limit: int = 32
    pool_size: int = 2
    browser_service_s: float = 0.02
    lightweight_service_s: float = 0.0
    distinct_pages: int = 64
    farm_consumers: int = 4
    farm_queue_limit: int = 16
    render_wait_s: float = 0.2
    seed: int = 0xB065_7

    def arrivals(self) -> list[float]:
        crowd = FlashCrowd(
            base_rps=self.base_rps,
            peak_rps=self.peak_rps,
            ramp_s=self.ramp_s,
            hold_s=self.hold_s,
            duration_s=self.duration_s,
        )
        return crowd.times(DeterministicRandom(self.seed))


@dataclass
class BurstResult:
    """What one open-loop replay measured."""

    mode: str  # "inline" | "farm"
    offered: int
    completed_200: int
    degraded_200: int
    rejected_5xx: int
    other_5xx: int
    non_degraded_5xx: int
    renders: int
    p50_ms: float
    p99_ms: float
    max_ms: float
    wall_clock_s: float
    queue_depth_peak: int
    farm_coalesced: int = 0
    farm_saturation_refusals: int = 0
    farm_displaced: int = 0


class _InlineRenderApplication(Application):
    """The seed architecture: render on the request thread.

    Browser-marked requests hold a pool slot for ``browser_service_s``
    behind the single-flight cache — the exact configuration of the
    closed-loop Figure 7 bench, now facing an open-loop burst.
    """

    def __init__(
        self,
        browser_service_s: float,
        lightweight_service_s: float,
        pool: BrowserPool,
        cache: PrerenderCache,
    ) -> None:
        self.browser_service_s = browser_service_s
        self.lightweight_service_s = lightweight_service_s
        self.pool = pool
        self.cache = cache
        self.renders = 0
        self._lock = threading.Lock()

    def handle(self, request: Request) -> Response:
        page = request.params.get("page", "p0")
        if request.params.get("browser") == "1":

            def _render() -> str:
                with self.pool.instance(f"page-{page}"):
                    if self.browser_service_s > 0:
                        time.sleep(self.browser_service_s)
                with self._lock:
                    self.renders += 1
                return page

            self.cache.load_or_join(f"snap:{page}", _render)
        elif self.lightweight_service_s > 0:
            time.sleep(self.lightweight_service_s)
        return Response.text("ok")


class _FarmRenderApplication(Application):
    """The farm-backed path: submit, wait bounded, degrade on refusal."""

    def __init__(
        self,
        browser_service_s: float,
        lightweight_service_s: float,
        farm: RenderFarm,
        render_wait_s: float,
    ) -> None:
        self.browser_service_s = browser_service_s
        self.lightweight_service_s = lightweight_service_s
        self.farm = farm
        self.render_wait_s = render_wait_s
        self.renders = 0
        self.degraded = 0
        self._lock = threading.Lock()

    def handle(self, request: Request) -> Response:
        page = request.params.get("page", "p0")
        if request.params.get("browser") == "1":

            def _render() -> str:
                if self.browser_service_s > 0:
                    time.sleep(self.browser_service_s)
                with self._lock:
                    self.renders += 1
                return page

            try:
                self.farm.render(
                    RenderKey("burst", f"/{page}"),
                    _render,
                    lane=INTERACTIVE,
                    wait_s=self.render_wait_s,
                )
            except RenderFarmError:
                # Backpressure: the ladder's stale rung, not a 5xx.
                with self._lock:
                    self.degraded += 1
                response = Response.text("ok (degraded: stale snapshot)")
                response.headers.set(DEGRADED_HEADER, "stale")
                return response
        elif self.lightweight_service_s > 0:
            time.sleep(self.lightweight_service_s)
        return Response.text("ok")


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _replay(config: BurstConfig, mode: str) -> BurstResult:
    """Dispatch the seeded schedule open-loop against one configuration."""
    rng = DeterministicRandom(config.seed ^ 0x5EED)
    arrivals = config.arrivals()
    marked = [
        rng.uniform() <= config.browser_fraction for _ in arrivals
    ]
    requests = [
        Request.get(
            "http://burst.local/"
            f"?page=p{index % config.distinct_pages}"
            f"&browser={'1' if needs_browser else '0'}"
        )
        for index, needs_browser in enumerate(marked)
    ]

    registry = MetricsRegistry()
    farm: Optional[RenderFarm] = None
    if mode == "farm":
        farm = RenderFarm(
            consumers=config.farm_consumers,
            queue_limit=config.farm_queue_limit,
            metrics=registry,
            name="burst",
        )
        app: Application = _FarmRenderApplication(
            browser_service_s=config.browser_service_s,
            lightweight_service_s=config.lightweight_service_s,
            farm=farm,
            render_wait_s=config.render_wait_s,
        )
    else:
        pool = BrowserPool(max_instances=config.pool_size)
        cache = PrerenderCache()
        app = _InlineRenderApplication(
            browser_service_s=config.browser_service_s,
            lightweight_service_s=config.lightweight_service_s,
            pool=pool,
            cache=cache,
        )

    statuses: dict[int, int] = {}
    degraded = [0]
    latencies: list[float] = []
    record_lock = threading.Lock()

    def _recorder(submitted_at: float):
        def _record(future) -> None:
            response = future.result()
            elapsed = time.perf_counter() - submitted_at
            with record_lock:
                statuses[response.status] = (
                    statuses.get(response.status, 0) + 1
                )
                if response.headers.get(DEGRADED_HEADER):
                    degraded[0] += 1
                latencies.append(elapsed)

        return _record

    with ConcurrentProxy(
        app,
        workers=config.workers,
        queue_limit=config.queue_limit,
        metrics=registry,
    ) as executor:
        futures = []
        started = time.perf_counter()
        for offset, request in zip(arrivals, requests):
            # Open loop: pace to the schedule regardless of completions.
            delay = started + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            submitted_at = time.perf_counter()
            try:
                future = executor.submit(request)
            except AdmissionError:
                with record_lock:
                    statuses[503] = statuses.get(503, 0) + 1
                continue
            future.add_done_callback(_recorder(submitted_at))
            futures.append(future)
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - started
        runtime = executor.stats.snapshot()
    if farm is not None:
        farm.close()

    with record_lock:
        sorted_ms = sorted(value * 1e3 for value in latencies)
        completed_200 = statuses.get(200, 0)
        fives = {
            status: count
            for status, count in statuses.items()
            if status >= 500
        }
    rejected = fives.get(503, 0)
    other = sum(count for status, count in fives.items() if status != 503)
    renders = app.renders
    return BurstResult(
        mode=mode,
        offered=len(arrivals),
        completed_200=completed_200,
        degraded_200=degraded[0],
        rejected_5xx=rejected,
        other_5xx=other,
        # Degraded responses are 200s here, so every 5xx is non-degraded
        # by construction — the ladder either absorbed the failure or it
        # didn't.
        non_degraded_5xx=rejected + other,
        renders=renders,
        p50_ms=_percentile(sorted_ms, 0.50),
        p99_ms=_percentile(sorted_ms, 0.99),
        max_ms=sorted_ms[-1] if sorted_ms else 0.0,
        wall_clock_s=elapsed,
        queue_depth_peak=runtime.queue_depth_peak,
        farm_coalesced=(farm.queue.coalesced if farm is not None else 0),
        farm_saturation_refusals=(
            farm.queue.refused if farm is not None else 0
        ),
        farm_displaced=(farm.queue.displaced if farm is not None else 0),
    )


@dataclass
class BurstComparison:
    """Inline vs farm under the identical arrival schedule."""

    config: BurstConfig
    inline: BurstResult
    farm: BurstResult

    def bench_record(self) -> dict:
        return {
            "renderfarm_burst": {
                "config": asdict(self.config),
                "inline": asdict(self.inline),
                "farm": asdict(self.farm),
            }
        }


def smoke_config() -> BurstConfig:
    """A seconds-scale config for the tier-1 gate."""
    return BurstConfig(
        base_rps=30.0,
        peak_rps=240.0,
        ramp_s=0.4,
        hold_s=0.8,
        duration_s=2.0,
        browser_service_s=0.04,
        distinct_pages=32,
    )


def run_burst_comparison(
    config: Optional[BurstConfig] = None,
) -> BurstComparison:
    """Replay the same flash crowd against both configurations."""
    config = config or BurstConfig()
    if config.browser_fraction < 0.2:
        raise ValueError(
            "the burst acceptance criterion requires a browser fraction "
            ">= 20%"
        )
    inline = _replay(config, "inline")
    farm = _replay(config, "farm")
    return BurstComparison(config=config, inline=inline, farm=farm)


def format_comparison(comparison: BurstComparison) -> str:
    config = comparison.config
    lines = [
        "Figure 7 burst absorption (open-loop flash crowd): "
        f"{comparison.inline.offered} arrivals, "
        f"{config.base_rps:.0f}->{config.peak_rps:.0f} rps, "
        f"{config.browser_fraction * 100:.0f}% browser",
        f"{'mode':>8}  {'200s':>6}  {'degraded':>8}  {'5xx':>5}  "
        f"{'renders':>7}  {'p50 ms':>8}  {'p99 ms':>8}  {'peak q':>6}",
    ]
    for result in (comparison.inline, comparison.farm):
        lines.append(
            f"{result.mode:>8}  {result.completed_200:>6}  "
            f"{result.degraded_200:>8}  {result.non_degraded_5xx:>5}  "
            f"{result.renders:>7}  {result.p50_ms:>8.1f}  "
            f"{result.p99_ms:>8.1f}  {result.queue_depth_peak:>6}"
        )
    farm = comparison.farm
    lines.append(
        f"farm coalesced {farm.farm_coalesced}, refused "
        f"{farm.farm_saturation_refusals}, displaced {farm.farm_displaced}"
    )
    return "\n".join(lines)
