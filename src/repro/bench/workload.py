"""Mixed-traffic workload generation against the real proxy.

Drives an actual :class:`MSiteProxy` with a visitor population over
simulated time: Poisson arrivals, each visit fetching the entry page,
the snapshot, and a few subpages — the access pattern §4.3 describes
("either logging in ... or browsing the forum listing").  The simulated
clock advances between visits so cache TTLs and session expiry behave as
they would across a real day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import ProxyServices
from repro.core.proxy import MSiteProxy
from repro.core.spec import AdaptationSpec, ObjectSelector
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRandom


@dataclass
class WorkloadConfig:
    """One traffic scenario."""

    visits: int = 200
    duration_hours: float = 4.0
    subpages_per_visit: tuple[int, int] = (1, 3)  # uniform range
    returning_fraction: float = 0.3  # chance a visit reuses a session
    snapshot_ttl_s: float = 3600.0
    seed: int = 0x7AFF1C


@dataclass
class WorkloadReport:
    """What the day of traffic cost."""

    visits: int = 0
    requests: int = 0
    bytes_to_devices: int = 0
    browser_renders: int = 0
    lightweight_requests: int = 0
    browser_core_seconds: float = 0.0
    lightweight_core_seconds: float = 0.0
    cache_hit_rate: float = 0.0
    sessions_created: int = 0
    errors: int = 0
    subpage_requests: int = 0

    @property
    def renders_per_hour(self) -> float:
        return self.browser_renders / max(1e-9, self._hours)

    _hours: float = field(default=1.0, repr=False)


def standard_forum_spec(host: str) -> AdaptationSpec:
    spec = AdaptationSpec(site="SawmillCreek", origin_host=host)
    spec.add("prerender")
    spec.add("cacheable", ttl_s=3600)
    spec.add(
        "subpage", ObjectSelector.css("#loginform"),
        subpage_id="login", title="Log in",
    )
    spec.add(
        "subpage", ObjectSelector.css("#forumbits"),
        subpage_id="forums", title="Forums",
    )
    spec.add(
        "subpage", ObjectSelector.css("#wol"),
        subpage_id="online", title="Who's online",
    )
    return spec


def run_workload(
    origins: dict,
    origin_host: str,
    config: WorkloadConfig,
    spec: AdaptationSpec | None = None,
) -> WorkloadReport:
    """Run the scenario; returns aggregate accounting."""
    clock = Clock()
    services = ProxyServices(origins=origins, clock=clock)
    proxy = MSiteProxy(
        spec or standard_forum_spec(origin_host), services
    )
    if spec is not None:
        proxy.spec.snapshot_ttl_s = config.snapshot_ttl_s
    rng = DeterministicRandom(config.seed)
    mean_gap = config.duration_hours * 3600.0 / config.visits
    proxy_host = "m.example"
    subpage_ids = [
        binding.param("subpage_id")
        for binding in proxy.spec.bindings
        if binding.attribute == "subpage"
    ] or ["login"]

    report = WorkloadReport()
    report._hours = config.duration_hours
    returning_pool: list[HttpClient] = []

    for __ in range(config.visits):
        clock.advance(rng.exponential(mean_gap))
        if returning_pool and rng.uniform() < config.returning_fraction:
            client = rng.choice(returning_pool)
        else:
            client = HttpClient(
                {proxy_host: proxy}, jar=CookieJar(), clock=clock
            )
            returning_pool.append(client)
            if len(returning_pool) > 64:
                returning_pool.pop(0)
        client.ledger.reset()
        entry = client.get(f"http://{proxy_host}/proxy.php")
        client.get(f"http://{proxy_host}/proxy.php?file=snapshot.jpg")
        for __ in range(rng.randint(*config.subpages_per_visit)):
            subpage = rng.choice(subpage_ids)
            client.get(f"http://{proxy_host}/proxy.php?page={subpage}")
            report.subpage_requests += 1
        report.visits += 1
        report.bytes_to_devices += client.ledger.bytes_received
        if not entry.ok:
            report.errors += 1

    counters = proxy.counters
    report.requests = counters.requests
    report.browser_renders = counters.browser_renders
    report.lightweight_requests = counters.lightweight_requests
    report.browser_core_seconds = counters.browser_core_seconds
    report.lightweight_core_seconds = counters.lightweight_core_seconds
    report.cache_hit_rate = services.cache.stats.hit_rate
    report.sessions_created = len(proxy.sessions)
    report.errors += counters.errors
    return report
