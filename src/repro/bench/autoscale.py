"""The autoscale flash-crowd bench: elastic fleet vs static fleet.

The last scaling question the repro answers with a number: does the
control loop actually buy anything?  This bench replays one seeded
:class:`~repro.workload.arrivals.FlashCrowd` schedule against two
:class:`ClusterDeployment <repro.cluster.deployment.ClusterDeployment>`
fleets built identically — **one worker, one render consumer** — except
that one of them runs an :class:`~repro.autoscale.Autoscaler`:

* **static** — the starting size is all it ever has.  Under the burst
  its admission queue fills and arrivals bounce off as 503s.
* **autoscaled** — the controller watches the same fleet's own metrics
  (queue depth, farm backlog, p99) and grows workers and render
  consumers inside its ``[min, max]`` bounds as pressure builds, then
  drains back down after the crowd passes.

Acceptance (the ``autoscale_flashcrowd`` BENCH row): the autoscaled
fleet holds p99 within the scenario budget with **zero non-degraded
5xx** while the static fleet of the starting size rejects.  The smoke
run (tier-1) gates only the autoscaled side plus the fact that it
actually scaled; the full run additionally requires the static side to
saturate, and merge-writes the row into BENCH_pipeline.json.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Optional

from repro.autoscale import Autoscaler, AutoscalerConfig
from repro.core.pipeline import ProxyServices
from repro.errors import RenderFarmError
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.ops import SCALE_DECISION
from repro.renderfarm import INTERACTIVE, RenderKey
from repro.sim.rng import DeterministicRandom
from repro.workload.arrivals import FlashCrowd

DEGRADED_HEADER = "X-MSite-Degraded"


@dataclass
class AutoscaleBenchConfig:
    """One flash crowd against the static and the autoscaled fleet."""

    browser_fraction: float = 0.3
    base_rps: float = 30.0
    peak_rps: float = 300.0
    ramp_s: float = 1.0
    hold_s: float = 1.5
    duration_s: float = 4.0
    distinct_pages: int = 64
    # Fleet shape: both sides start here; only the autoscaled side may
    # grow, up to the controller bounds below.
    start_workers: int = 1
    worker_threads: int = 2
    queue_limit: int = 64
    max_workers: int = 4
    start_consumers: int = 1
    max_consumers: int = 4
    farm_queue_limit: int = 64
    browser_service_s: float = 0.02
    lightweight_service_s: float = 0.002
    render_wait_s: float = 0.05
    #: The scenario budget the autoscaled side must hold p99 inside.
    p99_budget_ms: float = 1500.0
    seed: int = 0xA5CA1E

    def arrivals(self) -> list[float]:
        crowd = FlashCrowd(
            base_rps=self.base_rps,
            peak_rps=self.peak_rps,
            ramp_s=self.ramp_s,
            hold_s=self.hold_s,
            duration_s=self.duration_s,
        )
        return crowd.times(DeterministicRandom(self.seed))

    def controller(self) -> AutoscalerConfig:
        return AutoscalerConfig(
            min_workers=self.start_workers,
            max_workers=self.max_workers,
            min_consumers=self.start_consumers,
            max_consumers=self.max_consumers,
            interval_s=0.05,
            queue_high=2.0,
            queue_low=0.25,
            backlog_high=2.0,
            backlog_low=0.25,
            cooldown_up_s=0.1,
            cooldown_down_s=1.0,
        )


class _ElasticApplication(Application):
    """The synthetic worker app both fleets run.

    Browser-marked requests submit a fixed-cost render to the fleet's
    shared farm with a bounded wait; farm backpressure degrades to the
    stale rung (a 200 with the degradation marker) exactly like the
    real pipeline, so the only 5xx either fleet can produce is honest
    admission overflow — the signal the bench is about.
    """

    def __init__(
        self,
        services: ProxyServices,
        browser_service_s: float,
        lightweight_service_s: float,
        render_wait_s: float,
    ) -> None:
        self.services = services
        self.browser_service_s = browser_service_s
        self.lightweight_service_s = lightweight_service_s
        self.render_wait_s = render_wait_s

    def handle(self, request: Request) -> Response:
        page = request.params.get("page", "p0")
        if request.params.get("browser") == "1":

            def _render() -> str:
                if self.browser_service_s > 0:
                    time.sleep(self.browser_service_s)
                return page

            try:
                self.services.renderfarm.render(
                    RenderKey("autoscale", f"/{page}"),
                    _render,
                    lane=INTERACTIVE,
                    wait_s=self.render_wait_s,
                )
            except RenderFarmError:
                response = Response.text("ok (degraded: stale snapshot)")
                response.headers.set(DEGRADED_HEADER, "stale")
                return response
        elif self.lightweight_service_s > 0:
            time.sleep(self.lightweight_service_s)
        return Response.text("ok")


@dataclass
class AutoscaleResult:
    """What one open-loop replay against one fleet measured."""

    mode: str  # "static" | "autoscaled"
    offered: int
    completed_200: int
    degraded_200: int
    non_degraded_5xx: int
    p50_ms: float
    p99_ms: float
    max_ms: float
    wall_clock_s: float
    peak_workers: int
    final_workers: int
    peak_consumers: int
    scale_ups: int
    scale_downs: int
    ops_events: int


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _replay(
    config: AutoscaleBenchConfig, mode: str
) -> AutoscaleResult:
    from repro.cluster.deployment import ClusterDeployment

    def make_app(services: ProxyServices) -> Application:
        return _ElasticApplication(
            services,
            browser_service_s=config.browser_service_s,
            lightweight_service_s=config.lightweight_service_s,
            render_wait_s=config.render_wait_s,
        )

    cluster = ClusterDeployment(
        origins={},
        workers=config.start_workers,
        worker_threads=config.worker_threads,
        queue_limit=config.queue_limit,
        site="autoscale-bench",
        make_app=make_app,
        key_fn=lambda request: (
            f"autoscale:{request.params.get('page', 'p0')}"
        ),
        farm_consumers=config.start_consumers,
        farm_queue_limit=config.farm_queue_limit,
    )
    scaler: Optional[Autoscaler] = None
    if mode == "autoscaled":
        scaler = Autoscaler(cluster, config=config.controller())

    rng = DeterministicRandom(config.seed ^ 0x5EED)
    arrivals = config.arrivals()
    marked = [rng.uniform() <= config.browser_fraction for _ in arrivals]
    requests = [
        Request.get(
            "http://autoscale.local/"
            f"?page=p{index % config.distinct_pages}"
            f"&browser={'1' if needs_browser else '0'}"
        )
        for index, needs_browser in enumerate(marked)
    ]

    statuses: dict[int, int] = {}
    degraded = [0]
    latencies: list[float] = []
    peak_workers = [cluster.fleet_size]
    record_lock = threading.Lock()

    def _serve(request: Request) -> None:
        submitted_at = time.perf_counter()
        response = cluster.handle(request)
        elapsed = time.perf_counter() - submitted_at
        with record_lock:
            statuses[response.status] = statuses.get(response.status, 0) + 1
            if response.headers.get(DEGRADED_HEADER):
                degraded[0] += 1
            latencies.append(elapsed)

    started = time.perf_counter()
    # Enough client threads that the open loop stays open: in-flight
    # concurrency must be able to exceed the fleet's total admission
    # capacity, or saturation would throttle the schedule instead of
    # surfacing as rejections.
    client_threads = 4 * config.queue_limit
    with ThreadPoolExecutor(max_workers=client_threads) as clients:
        futures = []
        for offset, request in zip(arrivals, requests):
            # Open loop: pace to the schedule regardless of completions.
            delay = started + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            if scaler is not None:
                scaler.maybe_tick()
                peak_workers[0] = max(
                    peak_workers[0], cluster.fleet_size
                )
            futures.append(clients.submit(_serve, request))
        for future in futures:
            future.result()
    # Let the controller see the calm after the crowd (and scale back
    # down) before the fleet closes.
    if scaler is not None:
        deadline = time.monotonic() + 3 * scaler.config.cooldown_down_s
        while (
            cluster.fleet_size > scaler.config.min_workers
            and time.monotonic() < deadline
        ):
            scaler.maybe_tick()
            time.sleep(scaler.config.interval_s)
    elapsed = time.perf_counter() - started

    decisions = scaler.decisions if scaler is not None else []
    scale_events = cluster.ops.events_of(SCALE_DECISION)
    peak_consumers = config.start_consumers
    for event in scale_events:
        if event.payload.get("target") == "consumers":
            if event.payload.get("action") == "up":
                peak_consumers = max(
                    peak_consumers, event.payload.get("consumers", 0) + 1
                )
    result_events = cluster.ops.head_seq
    final_workers = cluster.fleet_size
    cluster.close()

    with record_lock:
        sorted_ms = sorted(value * 1e3 for value in latencies)
        completed_200 = statuses.get(200, 0)
        fives = sum(
            count for status, count in statuses.items() if status >= 500
        )
    return AutoscaleResult(
        mode=mode,
        offered=len(arrivals),
        completed_200=completed_200,
        degraded_200=degraded[0],
        # Degraded serves are 200s here, so every 5xx is non-degraded.
        non_degraded_5xx=fives,
        p50_ms=_percentile(sorted_ms, 0.50),
        p99_ms=_percentile(sorted_ms, 0.99),
        max_ms=sorted_ms[-1] if sorted_ms else 0.0,
        wall_clock_s=elapsed,
        peak_workers=peak_workers[0],
        final_workers=final_workers,
        peak_consumers=peak_consumers,
        scale_ups=sum(1 for d in decisions if d.action == "up"),
        scale_downs=sum(1 for d in decisions if d.action == "down"),
        ops_events=result_events,
    )


@dataclass
class AutoscaleComparison:
    """Static vs autoscaled under the identical arrival schedule."""

    config: AutoscaleBenchConfig
    static: AutoscaleResult
    autoscaled: AutoscaleResult

    def bench_record(self) -> dict:
        return {
            "autoscale_flashcrowd": {
                "config": asdict(self.config),
                "static": asdict(self.static),
                "autoscaled": asdict(self.autoscaled),
            }
        }


def smoke_config() -> AutoscaleBenchConfig:
    """A seconds-scale config for the tier-1 gate."""
    return AutoscaleBenchConfig(
        base_rps=20.0,
        peak_rps=200.0,
        ramp_s=0.6,
        hold_s=1.0,
        duration_s=2.5,
        distinct_pages=32,
    )


def run_autoscale_comparison(
    config: Optional[AutoscaleBenchConfig] = None,
) -> AutoscaleComparison:
    """Replay the same flash crowd against both fleets."""
    config = config or AutoscaleBenchConfig()
    static = _replay(config, "static")
    autoscaled = _replay(config, "autoscaled")
    return AutoscaleComparison(
        config=config, static=static, autoscaled=autoscaled
    )


def format_comparison(comparison: AutoscaleComparison) -> str:
    config = comparison.config
    lines = [
        "Autoscale flash crowd (open loop): "
        f"{comparison.static.offered} arrivals, "
        f"{config.base_rps:.0f}->{config.peak_rps:.0f} rps, "
        f"start {config.start_workers}w/{config.start_consumers}c, "
        f"bounds [{config.start_workers}, {config.max_workers}]w",
        f"{'mode':>11}  {'200s':>6}  {'degraded':>8}  {'5xx':>5}  "
        f"{'p50 ms':>8}  {'p99 ms':>8}  {'peak w':>6}  {'final w':>7}",
    ]
    for result in (comparison.static, comparison.autoscaled):
        lines.append(
            f"{result.mode:>11}  {result.completed_200:>6}  "
            f"{result.degraded_200:>8}  {result.non_degraded_5xx:>5}  "
            f"{result.p50_ms:>8.1f}  {result.p99_ms:>8.1f}  "
            f"{result.peak_workers:>6}  {result.final_workers:>7}"
        )
    auto = comparison.autoscaled
    lines.append(
        f"controller: {auto.scale_ups} up / {auto.scale_downs} down, "
        f"peak consumers {auto.peak_consumers}, "
        f"{auto.ops_events} ops events"
    )
    return "\n".join(lines)
