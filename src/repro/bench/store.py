"""Concurrency-safe merge-writes for ``BENCH_pipeline.json``.

The bench report is one JSON file shared by every writer: ``bench-adapt``
owns the hot-path keys, the cluster sweep owns ``cluster_scalability``,
and every workload scenario upserts one row under ``workload``.  The
original read-update-write in the CLI was neither locked nor atomic, so
two scenario runs finishing together could clobber each other's rows or
tear the file.  This module gives every writer the same three
guarantees:

* **exclusive** — an ``<path>.lock`` file (``fcntl.flock`` where
  available, ``O_CREAT|O_EXCL`` spin otherwise) serializes writers;
* **atomic** — the merged payload lands via temp file + ``os.replace``,
  so readers never observe a torn file;
* **keyed** — dict values merge recursively instead of replacing, so
  section rows keyed by ``scenario@fingerprint`` upsert: re-running a
  scenario replaces its own row and never duplicates or drops a peer's.
"""

from __future__ import annotations

import json
import os
import time

try:  # POSIX; the container always has it, but degrade gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

_LOCK_SUFFIX = ".lock"
_SPIN_S = 0.005


def deep_merge(base: dict, updates: dict) -> dict:
    """Recursively merge ``updates`` into a copy of ``base``.

    Dict values merge key-wise (updates win on conflicts); everything
    else is replaced outright.  This is what makes section-level rows
    an upsert instead of a clobber.
    """
    merged = dict(base)
    for key, value in updates.items():
        existing = merged.get(key)
        if isinstance(existing, dict) and isinstance(value, dict):
            merged[key] = deep_merge(existing, value)
        else:
            merged[key] = value
    return merged


class _FileLock:
    """Exclusive advisory lock on ``path + '.lock'``, self-cleaning.

    The lock file is unlinked on release so a bench run leaves no
    ``.lock`` droppings behind (they used to end up committed).  Unlink
    happens *while still holding* the flock, and acquisition revalidates
    that the fd it locked is still the inode the lock path names — a
    waiter that wakes holding an orphaned (already-unlinked) inode's
    lock retries on the fresh file instead of proceeding as a second
    "owner".
    """

    def __init__(self, path: str, timeout_s: float = 30.0) -> None:
        self.lock_path = path + _LOCK_SUFFIX
        self.timeout_s = timeout_s
        self._handle: int | None = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            while True:
                handle = os.open(self.lock_path, os.O_CREAT | os.O_RDWR)
                fcntl.flock(handle, fcntl.LOCK_EX)
                try:
                    current_ino = os.stat(self.lock_path).st_ino
                except FileNotFoundError:
                    # The holder unlinked the file while we blocked in
                    # flock(): our lock is on an orphaned inode.
                    os.close(handle)
                    continue
                if os.fstat(handle).st_ino != current_ino:
                    os.close(handle)
                    continue
                self._handle = handle
                return self
        deadline = time.monotonic() + self.timeout_s  # pragma: no cover
        while True:  # pragma: no cover - non-POSIX spin
            try:
                self._handle = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_RDWR
                )
                return self
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not lock {self.lock_path} within "
                        f"{self.timeout_s}s"
                    )
                time.sleep(_SPIN_S)

    def __exit__(self, *_exc) -> None:
        if self._handle is not None:
            if fcntl is not None:
                # Unlink first, release after: waiters blocked on this
                # inode wake, fail the inode revalidation, and retry on
                # a fresh lock file — mutual exclusion is preserved.
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass
                fcntl.flock(self._handle, fcntl.LOCK_UN)
                os.close(self._handle)
            else:  # pragma: no cover - non-POSIX spin
                os.close(self._handle)
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass
            self._handle = None


def _read_report(path: str) -> dict:
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return {}
    return existing if isinstance(existing, dict) else {}


def merge_report(path: str, updates: dict) -> dict:
    """Merge ``updates`` into the report at ``path``; returns the result.

    Safe against concurrent writers (locked) and crashes mid-write
    (atomic replace).  Other writers' top-level keys and sibling rows
    inside shared sections survive.
    """
    directory = os.path.dirname(os.path.abspath(path))
    with _FileLock(path):
        merged = deep_merge(_read_report(path), updates)
        temporary = os.path.join(
            directory, f".{os.path.basename(path)}.{os.getpid()}.tmp"
        )
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2)
            handle.write("\n")
        os.replace(temporary, path)
    return merged


def upsert_row(path: str, section: str, key: str, row: dict) -> dict:
    """Upsert one keyed row into a section dict of the report."""
    return merge_report(path, {section: {key: row}})
