"""The Table 1 wall-clock comparison.

Builds the forum entry page, censuses its resources exactly as a client
browser would fetch them, and evaluates the device timing model for every
row the paper reports:

    BlackBerry Tour browser page load      20 sec.
    Snapshot page generation                2 sec.
    Cached snapshot page to Blackberry      5 sec.
    iPhone 4 via 3G                        20 sec.
    iPhone 4 via WiFi                     4.5 sec.
    Desktop browser page load             1.5 sec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.costs import DEFAULT_COST_MODEL
from repro.devices.profiles import (
    BLACKBERRY_TOUR,
    DESKTOP,
    IPHONE_4,
    IPOD_TOUCH_3G,
    LINKS,
)
from repro.devices.timing import PageStats, census_document, estimate_load_time
from repro.html.parser import parse_html
from repro.net.client import HttpClient
from repro.sites.forum import assets
from repro.sites.forum.app import ForumApplication


@dataclass
class Table1Row:
    label: str
    paper_seconds: float
    measured_seconds: float

    @property
    def deviation(self) -> float:
        return (self.measured_seconds - self.paper_seconds) / self.paper_seconds


def entry_page_stats(forum: ForumApplication | None = None) -> PageStats:
    """Resource census of the forum entry page (the paper's test page)."""
    application = forum or ForumApplication()
    client = HttpClient({"www.sawmillcreek.org": application})
    response = client.get("http://www.sawmillcreek.org/index.php")
    document = parse_html(response.text_body)
    return census_document(
        document,
        html_bytes=len(response.body),
        css_bytes=len(assets.stylesheet_css().encode("utf-8")),
        script_bytes=sum(size for __, size in assets.SCRIPT_MANIFEST),
        image_bytes=sum(size for __, size in assets.IMAGE_MANIFEST),
    )


def snapshot_page_stats(snapshot_bytes: int = 43_902) -> PageStats:
    """Census of the adapted entry page: tiny HTML + one low-fi JPEG."""
    return PageStats(
        html_bytes=1_500,
        image_bytes=snapshot_bytes,
        resource_count=2,
        element_count=12,
        image_count=1,
        image_pixels=287 * 1_504,  # the scaled snapshot's decode area
    )


def table1_rows(
    stats: PageStats | None = None,
    snapshot_bytes: int = 43_902,
) -> list[Table1Row]:
    """Reproduce every Table 1 row with the device model."""
    stats = stats or entry_page_stats()
    snap_stats = snapshot_page_stats(snapshot_bytes)
    snapshot_generation = DEFAULT_COST_MODEL.snapshot_pipeline_s(
        subresources=max(0, stats.resource_count - 1), subpages=5
    )
    return [
        Table1Row(
            "BlackBerry Tour browser page load",
            20.0,
            estimate_load_time(BLACKBERRY_TOUR, stats).total_s,
        ),
        Table1Row("Snapshot page generation", 2.0, snapshot_generation),
        Table1Row(
            "Cached snapshot page to Blackberry",
            5.0,
            estimate_load_time(
                BLACKBERRY_TOUR, snap_stats, page_height=1_504
            ).total_s,
        ),
        Table1Row(
            "iPhone 4 via 3G",
            20.0,
            estimate_load_time(IPHONE_4, stats).total_s,
        ),
        Table1Row(
            "iPhone 4 via WiFi",
            4.5,
            estimate_load_time(
                IPHONE_4.with_link(LINKS["wifi"]), stats
            ).total_s,
        ),
        Table1Row(
            "Desktop browser page load",
            1.5,
            estimate_load_time(DESKTOP, stats).total_s,
        ),
    ]


def in_text_rows(stats: PageStats | None = None) -> list[Table1Row]:
    """The §4.2 in-text iPod Touch measurements (4.5 s WiFi, 9 s 3G)."""
    stats = stats or entry_page_stats()
    return [
        Table1Row(
            "iPod Touch 3G via WiFi",
            4.5,
            estimate_load_time(IPOD_TOUCH_3G, stats).total_s,
        ),
        Table1Row(
            "iPod Touch 3G via cellular (HSPA)",
            9.0,
            estimate_load_time(
                IPOD_TOUCH_3G.with_link(LINKS["hspa"]), stats
            ).total_s,
        ),
    ]
