"""The adaptation hot path under a warm cache: fast path vs full runs.

The paper's scalability argument (Figure 7: 224 req/min through real
rendering vs 29,038 through the proxy's caches) is about how much
per-request work the server can skip.  This bench measures the same
thing for the adaptation core introduced with the fast path:

* **warm** — the forum workload against a deployment with the
  adapted-response cache on.  Every request is a *new* session (fresh
  cookie jar), so hits are genuinely cross-session replays, not the
  proxy's per-session memoization.
* **baseline** — the identical workload with ``fastpath_enabled=False``:
  every request pays fetch → filter → parse → attributes → serialize.
* **stream** — a filter-only spec emitted through the one-pass streaming
  serializer vs the DOM round-trip (fast path off for both sides, so the
  comparison isolates the serializer).

Results go to ``BENCH_pipeline.json``; see ``docs/PERFORMANCE.md`` for
how to read them.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.core.codegen import generate_proxy_source, load_generated_proxy
from repro.core.pipeline import ProxyServices
from repro.core.spec import AdaptationSpec, ObjectSelector
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.sites.forum.app import ForumApplication

FORUM_HOST = "www.sawmillcreek.org"
PROXY_HOST = "m.sawmillcreek.org"
ENTRY_URL = f"http://{PROXY_HOST}/proxy.php"


def forum_spec() -> AdaptationSpec:
    """The bench spec: subpage splitting, no browser rendering.

    Prerender is deliberately absent so both sides measure the
    lightweight adaptation core rather than the (cached) renderer.
    """
    spec = AdaptationSpec(site="SawmillCreek", origin_host=FORUM_HOST)
    spec.add("cacheable", ttl_s=3600)
    spec.add(
        "subpage", ObjectSelector.css("#loginform"),
        subpage_id="login", title="Log in",
    )
    spec.add(
        "subpage", ObjectSelector.css("#forumbits"),
        subpage_id="forums", title="Forums",
    )
    return spec


def filter_spec() -> AdaptationSpec:
    """A stream-eligible spec: source filters plus page flags only."""
    spec = AdaptationSpec(site="SawmillCreek", origin_host=FORUM_HOST)
    spec.add("strip_scripts")
    spec.add("rewrite_images", quality="low")
    spec.add("cacheable", ttl_s=3600)
    return spec


def _deploy(spec: AdaptationSpec, **service_flags: Any):
    services = ProxyServices(
        origins={FORUM_HOST: ForumApplication()}, **service_flags
    )
    proxy = load_generated_proxy(
        generate_proxy_source(spec)
    ).create_proxy(services)
    return proxy, services


def _drive(
    proxy,
    requests: int,
    clock: Optional[Callable[[], float]] = None,
) -> dict:
    """Fetch the entry page ``requests`` times, one fresh session each."""
    clock = clock or time.perf_counter
    latencies = []
    for _ in range(max(1, requests)):
        client = HttpClient({PROXY_HOST: proxy}, jar=CookieJar())
        started = clock()
        response = client.get(ENTRY_URL)
        latencies.append(clock() - started)
        if response.status != 200:
            raise RuntimeError(
                f"bench request failed with {response.status}"
            )
    total = sum(latencies)
    return {
        "requests": len(latencies),
        "total_s": total,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "adapts_per_sec": len(latencies) / total if total > 0 else 0.0,
    }


def _percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _fastpath_value(services: ProxyServices, name: str) -> float:
    return services.observability.registry.counter(
        f"msite_fastpath_{name}_total"
    ).value


def run_hotpath_bench(
    requests: int = 60,
    clock: Optional[Callable[[], float]] = None,
) -> dict:
    """The full comparison; returns the ``BENCH_pipeline.json`` payload."""
    warm_proxy, warm_services = _deploy(forum_spec())
    warm = _drive(warm_proxy, requests, clock)
    hits = _fastpath_value(warm_services, "hits")
    misses = _fastpath_value(warm_services, "misses")
    lookups = hits + misses
    warm["fastpath_hits"] = hits
    warm["fastpath_misses"] = misses
    warm["fastpath_hit_ratio"] = hits / lookups if lookups else 0.0

    base_proxy, __ = _deploy(forum_spec(), fastpath_enabled=False)
    baseline = _drive(base_proxy, requests, clock)

    stream_proxy, stream_services = _deploy(
        filter_spec(), fastpath_enabled=False
    )
    stream = _drive(stream_proxy, requests, clock)
    stream["streamed"] = _fastpath_value(stream_services, "stream")
    dom_proxy, __ = _deploy(
        filter_spec(), fastpath_enabled=False, stream_enabled=False
    )
    dom = _drive(dom_proxy, requests, clock)

    return {
        "workload": "forum entry page, one fresh session per request",
        "requests": requests,
        "warm": warm,
        "baseline": baseline,
        "speedup": (
            warm["adapts_per_sec"] / baseline["adapts_per_sec"]
            if baseline["adapts_per_sec"]
            else 0.0
        ),
        "stream": {
            "stream_on": stream,
            "stream_off": dom,
            "speedup": (
                stream["adapts_per_sec"] / dom["adapts_per_sec"]
                if dom["adapts_per_sec"]
                else 0.0
            ),
        },
    }


def format_report(results: dict) -> str:
    """Console summary of one bench run."""
    from repro.bench.reporting import format_table

    warm = results["warm"]
    baseline = results["baseline"]
    stream = results["stream"]
    table = format_table(
        ["configuration", "p50 ms", "p99 ms", "adapts/sec"],
        [
            [
                "fast path (warm)", warm["p50_ms"], warm["p99_ms"],
                warm["adapts_per_sec"],
            ],
            [
                "full pipeline", baseline["p50_ms"], baseline["p99_ms"],
                baseline["adapts_per_sec"],
            ],
            [
                "stream serializer", stream["stream_on"]["p50_ms"],
                stream["stream_on"]["p99_ms"],
                stream["stream_on"]["adapts_per_sec"],
            ],
            [
                "DOM round-trip", stream["stream_off"]["p50_ms"],
                stream["stream_off"]["p99_ms"],
                stream["stream_off"]["adapts_per_sec"],
            ],
        ],
    )
    return (
        f"{table}\n"
        f"fast-path hit ratio: {warm['fastpath_hit_ratio']:.2f} "
        f"({warm['fastpath_hits']:.0f} hits / "
        f"{warm['fastpath_misses']:.0f} misses)\n"
        f"warm speedup: {results['speedup']:.1f}x, "
        f"stream speedup: {stream['speedup']:.1f}x"
    )
