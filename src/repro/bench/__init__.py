"""Benchmark harness helpers: workloads, experiments, report formatting."""

from repro.bench.scalability import (
    ScalabilityConfig,
    ScalabilityResult,
    run_scalability_experiment,
    run_browser_percentage_sweep,
)
from repro.bench.wallclock import table1_rows, Table1Row
from repro.bench.reporting import format_table, format_series
from repro.bench.workload import (
    WorkloadConfig,
    WorkloadReport,
    run_workload,
)

__all__ = [
    "WorkloadConfig",
    "WorkloadReport",
    "run_workload",
    "ScalabilityConfig",
    "ScalabilityResult",
    "run_scalability_experiment",
    "run_browser_percentage_sweep",
    "table1_rows",
    "Table1Row",
    "format_table",
    "format_series",
]
