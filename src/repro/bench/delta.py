"""The delta fast path under content churn: patch vs full replay.

The fast path (``bench-adapt``) measures what a warm cache *hit* saves;
this bench measures the warm cache *miss* — the case the delta engine
(:mod:`repro.core.delta`) exists for.  The workload is the
``content-churn`` shape: readers keep hitting the storable news front
while the newsroom publishes revisions, so a configurable fraction of
requests arrive to find the origin changed since its last render.

Two identical deployments replay the same deterministic revision
stream:

* **delta** — ``delta_enabled=True``: a changed page is re-adapted by
  diffing segments against the memo and patching the cached bundle.
* **full**  — ``delta_enabled=False``: every content change replays the
  whole pipeline (filter → parse → attributes → serialize → emit).

Only the requests that *coincide with a revision* (the warm misses) are
compared — everything else is a plain fast-path hit on both sides and
would dilute the measurement.  The run also enforces the delta
invariant end to end: both sides must serve byte-identical bodies at
every step, revision by revision.

A third section measures the *session* delta: a returning client that
kept its last entry body re-requests with ``X-MSite-Delta-Since`` and
receives a patch manifest instead of the page — the wire-bytes half of
the paper's "ship only what changed" argument.

Results land in ``BENCH_pipeline.json`` under ``delta_churn``; see
``docs/DELTA.md`` for how to read them.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.core.codegen import generate_proxy_source, load_generated_proxy
from repro.core.pipeline import ProxyServices
from repro.core.proxy import SESSION_DELTA_CONTENT_TYPE
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.sites.news.app import NewsApplication
from repro.sites.news.data import Newsroom
from repro.sites.news.spec import NEWS_HOST, news_fastpath_spec

PROXY_HOST = "m.metroherald.com"
ENTRY_URL = f"http://{PROXY_HOST}/proxy.php"

#: Seed shared by both sides' newsrooms so their revision streams are
#: byte-identical — the precondition for the differential check.
NEWSROOM_SEED = 0xD1FF

#: A metro-daily section carries on the order of a hundred stories —
#: and the comparison only means something at a realistic page weight:
#: full-replay cost scales with the *origin* size (parse + paginate the
#: whole headline river) while the delta attempt scales with the
#: *change* size (one revised teaser), which is the asymmetry the
#: engine exists to exploit.
ARTICLES_PER_SECTION = 96


def _deploy(**service_flags: Any):
    app = NewsApplication(
        Newsroom(
            seed=NEWSROOM_SEED,
            articles_per_section=ARTICLES_PER_SECTION,
        )
    )
    services = ProxyServices(origins={NEWS_HOST: app}, **service_flags)
    proxy = load_generated_proxy(
        generate_proxy_source(news_fastpath_spec())
    ).create_proxy(services)
    return proxy, services, app


def _percentile(samples: list, fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _delta_value(services: ProxyServices, name: str) -> float:
    return services.observability.registry.counter(
        f"msite_delta_{name}_total"
    ).value


def _drive_churn(
    requests: int,
    churn: float,
    delta_enabled: bool,
    clock: Optional[Callable[[], float]] = None,
) -> dict:
    """One side of the comparison: entry requests under revisions.

    Every ``round(1/churn)``-th request is preceded by one newsroom
    revision, making it a warm miss; each request uses a fresh session
    so replays are genuinely cross-session.  Returns latency splits,
    the delta counters, and the full body stream (for the differential
    check against the other side).
    """
    clock = clock or time.perf_counter
    proxy, services, app = _deploy(delta_enabled=delta_enabled)
    every = max(2, int(round(1.0 / churn))) if churn > 0 else 0
    readapt: list[float] = []
    warm: list[float] = []
    bodies: list[bytes] = []
    for index in range(max(1, requests)):
        mutated = every > 0 and index > 0 and index % every == 0
        if mutated:
            app.newsroom.revise()
        client = HttpClient({PROXY_HOST: proxy}, jar=CookieJar())
        started = clock()
        response = client.get(ENTRY_URL)
        elapsed = clock() - started
        if response.status != 200:
            raise RuntimeError(
                f"bench request failed with {response.status}"
            )
        (readapt if mutated else warm).append(elapsed)
        bodies.append(response.body)
    side = {
        "requests": requests,
        "revisions": app.newsroom.revision_count,
        "readapt_requests": len(readapt),
        "readapt_p50_ms": _percentile(readapt, 0.50) * 1000.0,
        "readapt_p99_ms": _percentile(readapt, 0.99) * 1000.0,
        "warm_hit_p50_ms": _percentile(warm, 0.50) * 1000.0,
    }
    if delta_enabled:
        for name in ("seeds", "applied", "identical", "fallbacks",
                     "patched_segments"):
            side[f"delta_{name}"] = _delta_value(services, name)
    return side, bodies


def _drive_session_delta(revisions: int) -> dict:
    """Wire bytes for a returning session: manifest vs full page.

    One persistent client fetches the entry; then each revision is
    followed by the fleet-invalidation signal (``forget_adapted``, what
    the cluster bus delivers when a page is superseded) and a
    re-request advertising the body the client holds via
    ``X-MSite-Delta-Since``.  Reports how many responses arrived as
    patch manifests and the byte ratio against refetching full pages.
    """
    proxy, services, app = _deploy(delta_enabled=True)
    client = HttpClient({PROXY_HOST: proxy}, jar=CookieJar())
    response = client.get(ENTRY_URL)
    if response.status != 200:
        raise RuntimeError("session delta warm-up failed")
    etag = response.headers.get("ETag") or ""
    full_bytes = 0
    wire_bytes = 0
    manifests = 0
    for _ in range(max(1, revisions)):
        app.newsroom.revise()
        proxy.forget_adapted()
        response = client.get(ENTRY_URL, X_MSite_Delta_Since=etag)
        if response.status != 200:
            raise RuntimeError("session delta request failed")
        wire_bytes += len(response.body)
        if response.headers.get("Content-Type") == SESSION_DELTA_CONTENT_TYPE:
            manifests += 1
            # What a client without the baseline would have downloaded.
            probe = HttpClient({PROXY_HOST: proxy}, jar=CookieJar())
            full = probe.get(ENTRY_URL)
            full_bytes += len(full.body)
        else:
            full_bytes += len(response.body)
        etag = response.headers.get("ETag") or etag
    return {
        "revisions": revisions,
        "manifests": manifests,
        "fallbacks": int(_delta_value(services, "session_fallback")),
        "wire_bytes": wire_bytes,
        "full_bytes": full_bytes,
        "wire_fraction": (
            wire_bytes / full_bytes if full_bytes else 0.0
        ),
    }


def run_delta_bench(
    requests: int = 220,
    churn: float = 0.1,
    clock: Optional[Callable[[], float]] = None,
) -> dict:
    """The full comparison; returns the ``delta_churn`` payload.

    Raises ``RuntimeError`` if the two sides ever serve different
    bytes — the bench doubles as an end-to-end differential check of
    the delta invariant under the real revision stream.
    """
    delta_side, delta_bodies = _drive_churn(
        requests, churn, delta_enabled=True, clock=clock
    )
    full_side, full_bodies = _drive_churn(
        requests, churn, delta_enabled=False, clock=clock
    )
    mismatches = sum(
        1 for ours, theirs in zip(delta_bodies, full_bodies)
        if ours != theirs
    )
    if mismatches:
        raise RuntimeError(
            f"delta invariant violated: {mismatches}/{requests} responses "
            "differ from the full-replay deployment"
        )
    session = _drive_session_delta(
        max(4, delta_side["readapt_requests"])
    )
    return {
        "workload": (
            "news front under newsroom revisions, one fresh session "
            "per request"
        ),
        "requests": requests,
        "churn": churn,
        "byte_identical": True,
        "delta": delta_side,
        "full": full_side,
        "readapt_speedup": (
            full_side["readapt_p50_ms"] / delta_side["readapt_p50_ms"]
            if delta_side["readapt_p50_ms"]
            else 0.0
        ),
        "session": session,
    }


def format_report(results: dict) -> str:
    """Console summary of one bench run."""
    from repro.bench.reporting import format_table

    delta = results["delta"]
    full = results["full"]
    session = results["session"]
    table = format_table(
        ["configuration", "re-adapt p50 ms", "re-adapt p99 ms",
         "warm hit p50 ms"],
        [
            [
                "delta fast path", delta["readapt_p50_ms"],
                delta["readapt_p99_ms"], delta["warm_hit_p50_ms"],
            ],
            [
                "full replay", full["readapt_p50_ms"],
                full["readapt_p99_ms"], full["warm_hit_p50_ms"],
            ],
        ],
    )
    return (
        f"{table}\n"
        f"{delta['readapt_requests']} re-adaptations over "
        f"{delta['revisions']} revisions "
        f"(applied {delta.get('delta_applied', 0):.0f}, "
        f"identical {delta.get('delta_identical', 0):.0f}, "
        f"fallbacks {delta.get('delta_fallbacks', 0):.0f}, "
        f"{delta.get('delta_patched_segments', 0):.0f} segments patched)\n"
        f"re-adapt speedup: {results['readapt_speedup']:.1f}x, "
        f"byte-identical to full replay: {results['byte_identical']}\n"
        f"session deltas: {session['manifests']}/{session['revisions']} "
        f"as manifests, wire bytes {session['wire_fraction']:.2f}x of "
        f"full pages"
    )
