"""Plain-text report formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule, ready for the console."""
    columns = len(headers)
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(
                row[i].ljust(widths[i]) if i < len(row) else ""
                for i in range(columns)
            ).rstrip()
        )
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[object, object]]
) -> str:
    """A labelled x → y series, one point per line."""
    lines = [f"{name}:"]
    for x, y in points:
        lines.append(f"  {_cell(x):>10s} -> {_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
