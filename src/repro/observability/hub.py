"""The per-deployment observability bundle.

One :class:`Observability` instance per proxy deployment owns the
metrics registry and the trace recorder, and stamps both with a shared
clock so traces and histograms agree about time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.observability.exposition import render_prometheus
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Trace, TraceRecorder


class Observability:
    """One deployment's registry + trace recorder, with shared clock."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        slow_threshold_s: float = 1.0,
        trace_capacity: int = 128,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.traces = TraceRecorder(
            capacity=trace_capacity, slow_threshold_s=slow_threshold_s
        )
        self.clock = clock

    def start_trace(self, name: str = "request") -> Trace:
        return Trace(name=name, clock=self.clock, metrics=self.registry)

    def finish_trace(self, trace: Trace) -> Trace:
        return self.traces.record(trace)

    def render_metrics(self) -> str:
        return render_prometheus(self.registry)
