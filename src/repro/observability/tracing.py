"""Request-scoped tracing: where did this request's time go?

A :class:`Trace` is one request's timeline, made of named
:class:`Span`\\ s (the taxonomy the proxy uses is ``session``,
``detect``, ``filter``, ``adapt``, ``render``, ``cache``,
``serialize``, plus ``retry`` for backoff waits and ``degrade`` for
degradation-ladder fallbacks; see ``docs/OBSERVABILITY.md``).  The hot path threads the
active trace through a thread-local, so deep pipeline code opens spans
with the module-level :func:`span` without any plumbing — and pays
nothing when no trace is active (library use outside the proxy).

Spans may nest (``depth``/``parent`` record the structure) but the
proxy's instrumentation keeps the main phases sequential, so the sum of
span durations never exceeds the request's wall time.  A span closed by
an exception is still closed — with ``status="error"`` and the exception
type recorded — so a failing adaptation leaves a complete timeline.

A :class:`TraceRecorder` keeps a bounded ring of recent traces plus
every trace slower than a configurable threshold (the slow-request
capture), and dumps both as stable JSON for ``proxy.php``'s ``/traces``
endpoint and ``msite trace``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, Optional


class Span:
    """One named, timed section of a trace."""

    __slots__ = ("name", "start_s", "end_s", "depth", "parent", "status",
                 "error")

    def __init__(
        self, name: str, start_s: float, depth: int, parent: Optional[int]
    ) -> None:
        self.name = name
        self.start_s = start_s  # relative to the trace start
        self.end_s: Optional[float] = None
        self.depth = depth
        self.parent = parent  # index of the enclosing span, or None
        self.status = "ok"
        self.error: Optional[str] = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "depth": self.depth,
            "duration_s": self.duration_s,
            "error": self.error,
            "name": self.name,
            "parent": self.parent,
            "start_s": self.start_s,
            "status": self.status,
        }


class Trace:
    """One request's timeline of named spans.

    ``clock`` is any zero-argument monotonic-seconds callable
    (``time.perf_counter`` by default; tests inject a fake).  When a
    ``metrics`` registry is given, every closed span is also observed
    into the ``msite_span_duration_seconds{span=...}`` histogram, which
    is how the per-phase Figure 7 breakdown is populated.
    """

    SPAN_HISTOGRAM = "msite_span_duration_seconds"

    def __init__(
        self,
        name: str = "request",
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
    ) -> None:
        self.name = name
        self._clock = clock or time.perf_counter
        self._metrics = metrics
        self._t0 = self._clock()
        self._stack: list[int] = []
        self.spans: list[Span] = []
        self.duration_s: Optional[float] = None
        self.status = "ok"

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            start_s=self._clock() - self._t0,
            depth=len(self._stack),
            parent=parent,
        )
        index = len(self.spans)
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.error = type(exc).__name__
            self.status = "error"
            raise
        finally:
            record.end_s = self._clock() - self._t0
            self._stack.pop()
            if self._metrics is not None:
                self._metrics.histogram(
                    self.SPAN_HISTOGRAM,
                    "Time spent in each adaptation phase, per span name.",
                    labels={"span": name},
                ).observe(record.duration_s)

    def finish(self) -> "Trace":
        if self.duration_s is None:
            self.duration_s = self._clock() - self._t0
        return self

    # -- reading ---------------------------------------------------------

    def span_names(self) -> list[str]:
        return [record.name for record in self.spans]

    def spans_named(self, name: str) -> list[Span]:
        return [record for record in self.spans if record.name == name]

    def top_level_duration_s(self) -> float:
        """Sum of depth-0 span durations (never double-counts nesting)."""
        return sum(
            record.duration_s for record in self.spans if record.depth == 0
        )

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "name": self.name,
            "spans": [record.to_dict() for record in self.spans],
            "status": self.status,
        }


class TraceRecorder:
    """Bounded capture of finished traces, with slow-request retention.

    ``recent`` is a ring of the last ``capacity`` traces; ``slow`` keeps
    (up to ``slow_capacity``) every trace whose total duration crossed
    ``slow_threshold_s``, so one slow request among thousands is not
    pushed out of the ring before anyone looks.
    """

    def __init__(
        self,
        capacity: int = 128,
        slow_threshold_s: float = 1.0,
        slow_capacity: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder needs capacity >= 1")
        self.slow_threshold_s = slow_threshold_s
        self._lock = threading.Lock()
        self._recent: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=slow_capacity)
        self.recorded = 0
        self.slow_recorded = 0

    def record(self, trace: Trace) -> Trace:
        trace.finish()
        with self._lock:
            self.recorded += 1
            self._recent.append(trace)
            if (trace.duration_s or 0.0) >= self.slow_threshold_s:
                self.slow_recorded += 1
                self._slow.append(trace)
        return trace

    def recent(self) -> list[Trace]:
        with self._lock:
            return list(self._recent)

    def slow(self) -> list[Trace]:
        with self._lock:
            return list(self._slow)

    def last(self) -> Optional[Trace]:
        with self._lock:
            return self._recent[-1] if self._recent else None

    def dump(self) -> dict:
        with self._lock:
            return {
                "recent": [trace.to_dict() for trace in self._recent],
                "slow": [trace.to_dict() for trace in self._slow],
                "slow_threshold_s": self.slow_threshold_s,
            }

    def dump_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.dump(), sort_keys=True, indent=indent)


# ---------------------------------------------------------------------------
# the ambient (thread-local) trace


_ACTIVE = threading.local()


def current_trace() -> Optional[Trace]:
    return getattr(_ACTIVE, "trace", None)


@contextmanager
def activate(trace: Trace) -> Iterator[Trace]:
    """Make ``trace`` the thread's ambient trace for the duration."""
    previous = current_trace()
    _ACTIVE.trace = trace
    try:
        yield trace
    finally:
        _ACTIVE.trace = previous


@contextmanager
def span(name: str) -> Iterator[Optional[Span]]:
    """Open a span on the ambient trace; a no-op when none is active."""
    trace = current_trace()
    if trace is None:
        yield None
        return
    with trace.span(name) as record:
        yield record
