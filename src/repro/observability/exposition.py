"""Exposition: Prometheus text format and JSON trace dumps.

The text format follows the Prometheus 0.0.4 exposition conventions
(``# HELP``/``# TYPE`` headers, cumulative ``le`` buckets with a
``+Inf`` terminator, ``_sum``/``_count`` series) with fully
deterministic ordering — families sorted by name, children by label
set — so golden-file tests can pin the output byte for byte.  No
timestamps are emitted.
"""

from __future__ import annotations

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INF = float("inf")


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        children = family.sorted_children()
        if not children:
            continue
        if family.help_text:
            lines.append(
                f"# HELP {family.name} {_escape_help(family.help_text)}"
            )
        lines.append(f"# TYPE {family.name} {family.kind}")
        for metric in children:
            base_labels = sorted(metric.labels.items())
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_render_labels(base_labels)} "
                    f"{_format_value(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                snap = metric.snapshot()
                cumulative = 0
                for bound, count in zip(
                    snap.buckets + (_INF,), snap.counts
                ):
                    cumulative += count
                    bucket_labels = base_labels + [
                        ("le", _format_value(bound))
                    ]
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(base_labels)} "
                    f"{_format_value(snap.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(base_labels)} "
                    f"{snap.count}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series-with-labels: value}``.

    A deliberately small reader used by tests and the CLI to check the
    endpoint round-trips; it understands exactly what
    :func:`render_prometheus` emits.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw_value = line.rpartition(" ")
        if not series:
            raise ValueError(f"unparseable exposition line: {line!r}")
        if raw_value == "+Inf":
            value = _INF
        elif raw_value == "-Inf":
            value = -_INF
        else:
            value = float(raw_value)
        if series in samples:
            raise ValueError(f"duplicate series: {series!r}")
        samples[series] = value
    return samples


def mount_observability(
    router,
    registry: MetricsRegistry,
    recorder=None,
    metrics_path: str = "/metrics",
    traces_path: str = "/traces",
) -> None:
    """Mount ``GET /metrics`` (and ``/traces``) on a net-layer Router."""
    from repro.net.messages import Response

    def metrics_endpoint(request):
        return Response.binary(
            render_prometheus(registry).encode("utf-8"),
            PROMETHEUS_CONTENT_TYPE,
        )

    router.add_route(metrics_path, metrics_endpoint, methods=("GET",))
    if recorder is not None:

        def traces_endpoint(request):
            return Response.binary(
                recorder.dump_json().encode("utf-8"),
                "application/json; charset=utf-8",
            )

        router.add_route(traces_path, traces_endpoint, methods=("GET",))
