"""Unified observability: metrics registry, request tracing, exposition.

The paper's results are measurements (Table 1 wall clocks, Figure 7's
224 → 29,038 req/min spread); this package is the measurement substrate
the reproduction runs on.  One :class:`Observability` bundle per
deployment owns:

* a :class:`MetricsRegistry` of thread-safe counters, gauges, and
  mergeable fixed-bucket latency histograms (p50/p90/p99) that every
  legacy stats struct (``RuntimeStats``, ``CacheStats``,
  ``ProxyCounters``, ``PoolStats``) registers its instruments into,
* request-scoped :class:`Trace` objects with the named-span taxonomy
  ``session / detect / filter / adapt / render / cache / serialize``
  threaded through the proxy pipeline via a thread-local, and
* a :class:`TraceRecorder` capturing recent and slow requests.

Exposition lives in :mod:`repro.observability.exposition`: Prometheus
text (``GET /metrics`` on the proxy, ``msite metrics``) and JSON trace
dumps (``GET /traces``, ``msite trace``).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    mount_observability,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.hub import Observability
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.observability.tracing import (
    Span,
    Trace,
    TraceRecorder,
    activate,
    current_trace,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "Observability",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Trace",
    "TraceRecorder",
    "activate",
    "current_trace",
    "mount_observability",
    "parse_prometheus",
    "render_prometheus",
    "span",
]
