"""The metrics substrate: counters, gauges, and latency histograms.

One :class:`MetricsRegistry` per deployment is the single place every
stats producer (executor, proxy, cache, browser pool, pipeline spans)
registers its instruments.  The legacy ad-hoc structs
(``RuntimeStats``, ``CacheStats``, ``ProxyCounters``, ``PoolStats``)
survive as thin views whose instruments live here, so the Figure 7
bench, the Prometheus endpoint, and the CLI all read the same numbers.

Design points:

* Every instrument is individually thread-safe (one small lock per
  instrument; producers never contend on a registry-wide lock).
* Histograms use fixed buckets so concurrent observers and per-thread
  registries can be merged exactly: merging is bucket-wise addition,
  which is associative and commutative, and conserves the observation
  count.
* Percentiles (p50/p90/p99) are estimated by linear interpolation
  inside the owning bucket, clamped to the observed min/max so the
  estimate is monotone in the quantile and never leaves the data range.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

_INF = float("inf")

# Default latency buckets: sub-millisecond lightweight proxy work up to
# the tens-of-seconds mobile page loads the Table 1 model produces.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelDict = Mapping[str, str]


def _label_key(labels: Optional[LabelDict]) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base instrument: a name, optional labels, and a tiny lock."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[LabelDict] = None,
    ) -> None:
        if not name:
            raise ValueError("metric needs a name")
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels or {})
        self._lock = threading.Lock()

    @property
    def label_key(self) -> tuple[tuple[str, str], ...]:
        return _label_key(self.labels)


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help_text="", labels=None) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name} can only increase")
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(Metric):
    """A value that can move in both directions (or track a peak)."""

    kind = "gauge"

    def __init__(self, name, help_text="", labels=None) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self._value += by

    def dec(self, by: float = 1.0) -> None:
        self.inc(-by)

    def track_max(self, value: float) -> None:
        """Atomically raise the gauge to ``value`` if it is higher."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent, immutable copy of a histogram's state."""

    buckets: tuple[float, ...]  # upper bounds, ascending, no +Inf
    counts: tuple[int, ...]  # len(buckets) + 1; last is the overflow
    count: int
    sum: float
    min: float  # 0.0 when empty
    max: float  # 0.0 when empty

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by interpolating inside the bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        bounds = self.buckets + (_INF,)
        for index, upper in enumerate(bounds):
            bucket_count = self.counts[index]
            if bucket_count:
                if cumulative + bucket_count >= target:
                    hi = self.max if upper == _INF else min(upper, self.max)
                    lo = min(max(lower, self.min), hi)
                    fraction = (target - cumulative) / bucket_count
                    # lo + (hi - lo) can round a ULP past hi; clamp so
                    # the estimate never leaves the observed range.
                    return min(max(lo + (hi - lo) * fraction, lo), hi)
                cumulative += bucket_count
            lower = upper
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class Histogram(Metric):
    """Fixed-bucket latency histogram, mergeable across threads."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[LabelDict] = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        if bounds[-1] == _INF:
            bounds = bounds[:-1]  # the overflow bucket is implicit
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = _INF
        self._max = -_INF

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "Histogram | HistogramSnapshot") -> None:
        """Fold another histogram (same bounds) into this one."""
        snap = other.snapshot() if isinstance(other, Histogram) else other
        if snap.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{snap.buckets} vs {self.buckets}"
            )
        with self._lock:
            for index, bucket_count in enumerate(snap.counts):
                self._counts[index] += bucket_count
            self._count += snap.count
            self._sum += snap.sum
            if snap.count:
                self._min = min(self._min, snap.min)
                self._max = max(self._max, snap.max)

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            empty = self._count == 0
            return HistogramSnapshot(
                buckets=self.buckets,
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
                min=0.0 if empty else self._min,
                max=0.0 if empty else self._max,
            )

    # Convenience views used by the legacy stats structs.

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    def quantile(self, q: float) -> float:
        return self.snapshot().quantile(q)


@dataclass
class MetricFamily:
    """All instruments sharing one metric name."""

    name: str
    kind: str
    help_text: str
    children: dict[tuple[tuple[str, str], ...], Metric]

    def sorted_children(self) -> list[Metric]:
        return [self.children[key] for key in sorted(self.children)]


class MetricsRegistry:
    """A directory of instruments; the unit of exposition and merging.

    Instruments can be created through the registry (get-or-create) or
    created standalone by a stats struct and :meth:`register`-ed later —
    registration shares the *object*, so a struct bound to a deployment
    registry keeps exactly one set of numbers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- registration ----------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        with self._lock:
            family = self._families.get(metric.name)
            if family is None:
                family = MetricFamily(
                    name=metric.name,
                    kind=metric.kind,
                    help_text=metric.help_text,
                    children={},
                )
                self._families[metric.name] = family
            if family.kind != metric.kind:
                raise ValueError(
                    f"{metric.name} already registered as {family.kind}"
                )
            existing = family.children.get(metric.label_key)
            if existing is not None:
                if existing is metric:
                    return metric  # idempotent re-registration
                raise ValueError(
                    f"{metric.name}{dict(metric.label_key)} already registered"
                )
            family.children[metric.label_key] = metric
            if not family.help_text and metric.help_text:
                family.help_text = metric.help_text
            return metric

    def _get_or_create(self, factory, name, help_text, labels, **kwargs):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                existing = family.children.get(key)
                if existing is not None:
                    return existing
        metric = factory(name, help_text, labels, **kwargs)
        try:
            return self.register(metric)
        except ValueError:
            # Lost a creation race; the winner is in the registry now.
            found = self.get(name, labels)
            if found is not None:
                return found
            raise

    def counter(self, name, help_text="", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self, name, help_text="", labels=None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    # -- reading ---------------------------------------------------------

    def get(self, name: str, labels=None) -> Optional[Metric]:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def collect(self) -> list[MetricFamily]:
        """Families sorted by name, for stable exposition."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a per-thread one) into this one."""
        for family in other.collect():
            for metric in family.sorted_children():
                if isinstance(metric, Counter):
                    self.counter(
                        family.name, family.help_text, dict(metric.labels)
                    ).inc(metric.value)
                elif isinstance(metric, Gauge):
                    self.gauge(
                        family.name, family.help_text, dict(metric.labels)
                    ).track_max(metric.value)
                elif isinstance(metric, Histogram):
                    self.histogram(
                        family.name, family.help_text, dict(metric.labels),
                        buckets=metric.buckets,
                    ).merge(metric)
