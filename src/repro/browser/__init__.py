"""Server-side browser: the embedded-WebKit analog.

The proxy calls on this heavyweight engine "only when needed as a
graphical rendering engine, or for browser-specific functionality" (§1).
The package provides:

* :class:`repro.browser.webkit.ServerBrowser` — full page loading
  (subresource fetching, cascade, layout, paint) with an explicit
  instance lifecycle and cost accounting,
* :mod:`repro.browser.costs` — the calibrated service-time model behind
  the Figure 7 scalability experiment,
* :mod:`repro.browser.pool` — an optional instance pool, implemented for
  the ablation even though the paper declines pooling for cookie-security
  reasons (§4.6),
* :mod:`repro.browser.scripting` — server-side script execution hooks.
"""

from repro.browser.webkit import ServerBrowser, PageLoadResult
from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.browser.pool import BrowserPool

__all__ = [
    "ServerBrowser",
    "PageLoadResult",
    "BrowserCostModel",
    "DEFAULT_COST_MODEL",
    "BrowserPool",
]
