"""Server-side script execution.

Two mechanisms reproduce the paper's "Javascript insertion / removal"
attribute (§3.3), where one script manipulates the DOM *on the server*
before rendering:

1. Registered Python callables — the general hook.
2. A small interpreter for jQuery-style statements
   (``$('selector').method(arg, ...)`` chains) so adaptation scripts can
   be written in the same surface syntax the paper's examples use
   (``$("#picframe").load('site.php?do=showpic&id=1')``).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.dom.document import Document
from repro.dom.query import Query
from repro.errors import AdaptationError

_STATEMENT_RE = re.compile(
    r"""\$\(\s*(?P<q>['"])(?P<selector>.+?)(?P=q)\s*\)(?P<chain>(?:\s*\.\s*
        [a-zA-Z_][a-zA-Z0-9_]*\s*\([^()]*\))+)\s*;?""",
    re.VERBOSE | re.DOTALL,
)
_CALL_RE = re.compile(
    r"\.\s*(?P<method>[a-zA-Z_][a-zA-Z0-9_]*)\s*\((?P<args>[^()]*)\)"
)
_ARG_RE = re.compile(r"""\s*(?:'([^']*)'|"([^"]*)"|([^,]+))\s*(?:,|$)""")

# jQuery surface name → Query method name.
_METHOD_MAP = {
    "attr": "attr",
    "removeAttr": "remove_attr",
    "addClass": "add_class",
    "removeClass": "remove_class",
    "toggleClass": "toggle_class",
    "css": "css",
    "text": "text",
    "html": "html",
    "val": "val",
    "append": "append",
    "prepend": "prepend",
    "before": "before",
    "after": "after",
    "remove": "remove",
    "empty": "empty",
    "replaceWith": "replace_with",
    "wrap": "wrap",
    "hide": None,  # special-cased
    "show": None,
    "find": "find",
    "first": "first",
    "last": "last",
    "parent": "parent",
    "children": "children",
}


class ScriptRuntime:
    """Executes server-side page scripts against a document."""

    def __init__(self) -> None:
        self._handlers: dict[str, Callable[[Document], None]] = {}

    # -- python hooks -------------------------------------------------------

    def register(self, name: str, handler: Callable[[Document], None]) -> None:
        """Register a named Python script (referenced by <script src=name>)."""
        self._handlers[name] = handler

    def run_document_scripts(self, document: Document) -> int:
        """Run registered handlers whose name matches a script src.

        Inline script bodies marked with ``type="server/jquery"`` are
        executed by the mini interpreter.  Returns scripts executed.
        """
        executed = 0
        for element in list(document.all_elements()):
            if element.tag != "script":
                continue
            src = element.get("src")
            if src and src in self._handlers:
                self._handlers[src](document)
                executed += 1
            elif (element.get("type") or "") == "server/jquery":
                self.execute_jquery(document, element.text_content)
                executed += 1
        return executed

    # -- the jQuery-statement interpreter ------------------------------------

    def execute_jquery(self, document: Document, source: str) -> int:
        """Run every ``$('sel').method(...)`` statement in ``source``.

        Returns the number of statements executed.  Unknown methods raise
        :class:`AdaptationError` — a bad adaptation script should fail
        loudly at generation time, not silently in production.
        """
        executed = 0
        for match in _STATEMENT_RE.finditer(source):
            selector = match.group("selector")
            query = Query(selector, root=document)
            for call in _CALL_RE.finditer(match.group("chain")):
                query = self._apply(query, call.group("method"), call.group("args"))
            executed += 1
        return executed

    def _apply(self, query: Query, method: str, raw_args: str) -> Query:
        if method not in _METHOD_MAP:
            raise AdaptationError(f"jQuery interpreter: unknown method .{method}()")
        args = _parse_args(raw_args)
        if method == "hide":
            return query.css("display", "none")
        if method == "show":
            return query.css("display", "block")
        target = _METHOD_MAP[method]
        result = getattr(query, target)(*args)
        return result if isinstance(result, Query) else query


def _parse_args(raw: str) -> list[str]:
    raw = raw.strip()
    if not raw:
        return []
    args = []
    for match in _ARG_RE.finditer(raw):
        single, double, bare = match.groups()
        if single is not None:
            args.append(single)
        elif double is not None:
            args.append(double)
        elif bare is not None and bare.strip():
            args.append(bare.strip())
    return args
