"""The heavyweight server-side browser.

A :class:`ServerBrowser` behaves like the paper's embedded Qt/WebKit
instance: it owns private cookie state, fetches the page and all its
subresources, runs the full style/layout/paint pipeline, and must be
launched and disposed per use (the paper rejects instance sharing:
"using a browser pool can potentially violate security assumptions if
shared by multiple clients", §4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dom.document import Document
from repro.errors import RenderError
from repro.html.parser import parse_html
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.net.url import URL
from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.browser.scripting import ScriptRuntime
from repro.render.snapshot import PageSnapshot, render_snapshot


@dataclass
class PageLoadResult:
    """Everything a full browser load produces."""

    url: URL
    document: Document
    snapshot: PageSnapshot
    resources_fetched: int
    total_bytes: int
    css_bytes: int = 0
    script_bytes: int = 0
    image_bytes: int = 0
    core_seconds: float = 0.0


class ServerBrowser:
    """One disposable browser instance bound to one user's cookie jar."""

    _instances_alive = 0

    def __init__(
        self,
        client: HttpClient,
        jar: Optional[CookieJar] = None,
        viewport_width: int = 1024,
        costs: BrowserCostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.client = HttpClient(
            origins=client.origins, jar=jar, clock=client.clock
        )
        self.viewport_width = viewport_width
        self.costs = costs
        self.scripts = ScriptRuntime()
        self._launched = False
        self._disposed = False

    # -- lifecycle -----------------------------------------------------------

    def launch(self) -> "ServerBrowser":
        if self._disposed:
            raise RenderError("browser instance already disposed")
        if not self._launched:
            self._launched = True
            ServerBrowser._instances_alive += 1
        return self

    def dispose(self) -> None:
        if self._launched and not self._disposed:
            ServerBrowser._instances_alive -= 1
        self._disposed = True

    def __enter__(self) -> "ServerBrowser":
        return self.launch()

    def __exit__(self, *exc_info) -> None:
        self.dispose()

    @classmethod
    def instances_alive(cls) -> int:
        return cls._instances_alive

    # -- loading --------------------------------------------------------------

    def load(
        self,
        url: Union[str, URL],
        run_scripts: bool = True,
        max_height: int = 8192,
    ) -> PageLoadResult:
        """Fetch, parse, fetch subresources, style, lay out, and paint."""
        if not self._launched or self._disposed:
            raise RenderError("browser must be launched before loading pages")
        parsed = url if isinstance(url, URL) else URL.parse(url)
        self.client.ledger.reset()
        response = self.client.get(parsed)
        if not response.ok:
            raise RenderError(
                f"browser load failed: {response.status} for {parsed}"
            )
        document = parse_html(response.text_body)
        external_css, css_bytes = self._fetch_stylesheets(document, parsed)
        script_bytes = self._fetch_scripts(document, parsed)
        image_bytes, image_count = self._fetch_images(document, parsed)
        if run_scripts:
            self.scripts.run_document_scripts(document)
        snapshot = render_snapshot(
            document,
            viewport_width=self.viewport_width,
            external_css=external_css,
            max_height=max_height,
        )
        ledger = self.client.ledger
        return PageLoadResult(
            url=parsed,
            document=document,
            snapshot=snapshot,
            resources_fetched=ledger.requests,
            total_bytes=ledger.bytes_received,
            css_bytes=css_bytes,
            script_bytes=script_bytes,
            image_bytes=image_bytes,
            core_seconds=self.costs.browser_request_s,
        )

    # -- subresources ------------------------------------------------------------

    def _fetch_stylesheets(
        self, document: Document, base: URL
    ) -> tuple[dict[str, str], int]:
        external: dict[str, str] = {}
        total = 0
        for element in document.all_elements():
            if (
                element.tag == "link"
                and (element.get("rel") or "").lower() == "stylesheet"
            ):
                href = element.get("href")
                if not href:
                    continue
                response = self._try_fetch(base.join(href))
                if response is not None:
                    external[href] = response.text_body
                    total += len(response.body)
        return external, total

    def _fetch_scripts(self, document: Document, base: URL) -> int:
        total = 0
        for element in document.all_elements():
            if element.tag == "script" and element.get("src"):
                response = self._try_fetch(base.join(element.get("src")))
                if response is not None:
                    total += len(response.body)
        return total

    def _fetch_images(self, document: Document, base: URL) -> tuple[int, int]:
        total = 0
        count = 0
        seen: set[str] = set()
        for element in document.all_elements():
            if element.tag == "img" and element.get("src"):
                src = element.get("src")
                if src in seen:
                    continue
                seen.add(src)
                response = self._try_fetch(base.join(src))
                if response is not None:
                    total += len(response.body)
                    count += 1
        return total, count

    def _try_fetch(self, url: URL):
        try:
            response = self.client.get(url)
        except Exception:
            return None
        return response if response.ok else None
