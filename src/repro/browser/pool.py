"""Browser instance pooling — implemented for the ablation.

The paper explicitly declines pooling: "Using a browser pool can
potentially violate security assumptions if shared by multiple clients"
(§4.6), because a pooled instance may leak one user's cookies/session
state to the next.  We implement the pool anyway so the ablation bench can
quantify what the security decision costs: a pooled instance skips the
launch portion of the service time but must be *scrubbed* between users,
and the scrub is where the security risk lives.

Two faces:

* :meth:`BrowserPool.acquire` / :meth:`~BrowserPool.release` — the
  cost/accounting model the discrete-event Figure 7 experiment runs on
  (service seconds, no real blocking).
* :meth:`BrowserPool.instance` — a real bounded-semaphore acquire for
  the concurrent runtime: at most ``max_instances`` threads hold a
  browser at once, the rest queue, and the time they spend queueing is
  accounted in :class:`PoolStats`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.errors import PoolTimeoutError
from repro.observability.metrics import MetricsRegistry


class PoolStats:
    """Counters for pool behaviour, backed by registry instruments.

    The queue wait is a full latency histogram
    (``msite_pool_queue_wait_seconds``) rather than just a sum, so the
    Figure 7 bench can report pool-wait percentiles; the historical
    ``queue_wait_total_s`` / ``queue_wait_max_s`` fields read through to
    it.
    """

    _COUNTERS = {
        "hits": ("msite_pool_hits_total",
                 "Requests that reused an idle browser instance."),
        "misses": ("msite_pool_misses_total",
                   "Requests that had to launch a new browser."),
        "scrubs": ("msite_pool_scrubs_total",
                   "State scrubs between distinct users."),
        "leaks_risked": ("msite_pool_leaks_risked_total",
                         "Instance reuses across different users."),
        "acquires": ("msite_pool_acquires_total",
                     "Completed browser-slot acquisitions."),
        "queue_waits": ("msite_pool_queue_waits_total",
                        "Acquisitions that had to block for a slot."),
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry or MetricsRegistry()
        self._counters = {
            field_name: registry.counter(metric_name, help_text)
            for field_name, (metric_name, help_text) in self._COUNTERS.items()
        }
        self._queue_wait = registry.histogram(
            "msite_pool_queue_wait_seconds",
            "Time spent blocked waiting for a browser slot.",
        )

    def record(self, field_name: str, by: float = 1) -> None:
        self._counters[field_name].inc(by)

    def observe_queue_wait(self, waited_s: float) -> None:
        self._queue_wait.observe(waited_s)

    def bind(self, registry: MetricsRegistry) -> None:
        """Register these instruments into a shared registry."""
        for counter in self._counters.values():
            registry.register(counter)
        registry.register(self._queue_wait)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    @property
    def queue_wait_total_s(self) -> float:
        return self._queue_wait.sum

    @property
    def queue_wait_max_s(self) -> float:
        return self._queue_wait.max

    @property
    def mean_queue_wait_s(self) -> float:
        acquires = self.acquires
        return self.queue_wait_total_s / acquires if acquires else 0.0


@dataclass
class BrowserPool:
    """A bounded pool of reusable browser instances.

    ``acquire`` is the cost/accounting model (the Figure 7 experiment
    runs on service times, not real processes): it returns the core
    seconds the request's browser work costs given pool state.
    ``instance`` is the real concurrency bound.  Both are thread-safe.
    """

    max_instances: int = 4
    scrub_cost_s: float = 0.040
    costs: BrowserCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    stats: PoolStats = field(default_factory=PoolStats)
    #: Optional :class:`repro.resilience.CircuitBreaker` guarding the
    #: renderer: an open breaker rejects :meth:`instance` *before* the
    #: semaphore, so shed load never queues behind a sick renderer.
    breaker: Optional[object] = None
    _idle: list[str] = field(default_factory=list)  # last user per instance
    _live_count: int = 0

    def __post_init__(self) -> None:
        if self.max_instances < 1:
            raise ValueError("pool needs at least one instance")
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(self.max_instances)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Expose this pool's instruments through a shared registry."""
        self.stats.bind(registry)

    def acquire(self, user_id: str) -> float:
        """Core seconds of browser work for this request; updates stats."""
        with self._lock:
            if self._idle:
                last_user = self._idle.pop()
                self.stats.record("hits")
                cost = self.costs.browser_render_s
                if last_user != user_id:
                    self.stats.record("scrubs")
                    self.stats.record("leaks_risked")
                    cost += self.scrub_cost_s
                return cost
            self.stats.record("misses")
            if self._live_count < self.max_instances:
                self._live_count += 1
            return self.costs.browser_request_s

    def release(self, user_id: str) -> None:
        """Return the instance to the idle set, remembering its user."""
        with self._lock:
            if len(self._idle) < self._live_count:
                self._idle.append(user_id)

    @contextmanager
    def instance(self, user_id: str, timeout: Optional[float] = None):
        """Hold one of the ``max_instances`` browser slots for real.

        Blocks (up to ``timeout`` seconds, or forever when ``None``)
        until a slot frees, accounting the wait in
        :attr:`PoolStats.queue_wait_total_s`.  Yields the service-time
        cost from :meth:`acquire` so callers can keep the ablation's
        core-seconds accounting.  Raises :class:`PoolTimeoutError` when
        the wait exceeds ``timeout``, or
        :class:`~repro.errors.CircuitOpenError` immediately — without
        ever touching the semaphore — when the attached breaker is open.
        """
        if self.breaker is not None:
            self.breaker.check()  # raises CircuitOpenError when open
        waited = 0.0
        if not self._slots.acquire(blocking=False):
            start = time.perf_counter()
            if not self._slots.acquire(timeout=timeout):
                raise PoolTimeoutError(
                    f"no browser instance within {timeout}s "
                    f"({self.max_instances} slots busy)"
                )
            waited = time.perf_counter() - start
        with self._lock:
            self.stats.record("acquires")
            if waited > 0.0:
                self.stats.record("queue_waits")
            self.stats.observe_queue_wait(waited)
        try:
            yield self.acquire(user_id)
        finally:
            self.release(user_id)
            self._slots.release()

    @property
    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
