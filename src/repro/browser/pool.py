"""Browser instance pooling — implemented for the ablation.

The paper explicitly declines pooling: "Using a browser pool can
potentially violate security assumptions if shared by multiple clients"
(§4.6), because a pooled instance may leak one user's cookies/session
state to the next.  We implement the pool anyway so the ablation bench can
quantify what the security decision costs: a pooled instance skips the
launch portion of the service time but must be *scrubbed* between users,
and the scrub is where the security risk lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL


@dataclass
class PoolStats:
    """Counters for pool behaviour."""

    hits: int = 0  # reused an idle instance
    misses: int = 0  # had to launch a new one
    scrubs: int = 0  # state scrubs between distinct users
    leaks_risked: int = 0  # reuses across different users (the hazard)


@dataclass
class BrowserPool:
    """A bounded pool of reusable browser instances.

    This is a cost/accounting model (the Figure 7 experiment runs on
    service times, not real processes): ``acquire`` returns the core
    seconds the request's browser work costs given pool state.
    """

    max_instances: int = 4
    scrub_cost_s: float = 0.040
    costs: BrowserCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    stats: PoolStats = field(default_factory=PoolStats)
    _idle: list[str] = field(default_factory=list)  # last user per instance
    _live_count: int = 0

    def acquire(self, user_id: str) -> float:
        """Core seconds of browser work for this request; updates stats."""
        if self._idle:
            last_user = self._idle.pop()
            self.stats.hits += 1
            cost = self.costs.browser_render_s
            if last_user != user_id:
                self.stats.scrubs += 1
                self.stats.leaks_risked += 1
                cost += self.scrub_cost_s
            return cost
        self.stats.misses += 1
        if self._live_count < self.max_instances:
            self._live_count += 1
        return self.costs.browser_request_s

    def release(self, user_id: str) -> None:
        """Return the instance to the idle set, remembering its user."""
        if len(self._idle) < self._live_count:
            self._idle.append(user_id)

    @property
    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
