"""Service-time model for proxy-host work.

Calibration anchors, from the paper's Figure 7 measurement on commodity
dual-core hardware (Windows Vista, Qt, WebKit, no thread pool):

* 100% of requests needing a full browser instance → 224 satisfied
  requests per one-minute window, so each browser render occupies a core
  for 2 cores x 60 s / 224 ≈ 536 ms (instance launch + page render).
* 0% needing a browser → 29,038 requests/minute, so the lightweight
  PHP-proxy path costs 2 x 60 / 29,038 ≈ 4.13 ms per request.

Table 1's "snapshot page generation: 2 sec" anchors the full snapshot
pipeline (origin fetch + browser render + image post-processing + subpage
emission), which the pipeline model composes from the parts below.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BrowserCostModel:
    """Seconds of core time for each kind of proxy-host work."""

    # Heavyweight path: a fresh browser instance per request (no pool).
    browser_launch_s: float = 0.350
    browser_render_s: float = 0.186

    # Lightweight path: the generated php-analog proxy doing source
    # filters, DOM work, and session management.
    lightweight_request_s: float = 0.00413

    # Pipeline extras for full snapshot generation (Table 1 row 2).
    origin_fetch_s: float = 0.400
    subresource_fetch_s: float = 0.012  # per image/css/script fetched
    image_encode_s: float = 0.250
    subpage_emit_s: float = 0.080  # per generated subpage

    # Browser memory footprint drives the no-pool concurrency ceiling.
    browser_memory_mb: float = 190.0
    host_memory_mb: float = 2048.0

    @property
    def browser_request_s(self) -> float:
        """Core seconds for one request on the heavyweight path."""
        return self.browser_launch_s + self.browser_render_s

    @property
    def max_concurrent_browsers(self) -> int:
        """Instances that fit in host memory (the Highlight-style limit)."""
        return max(1, int(self.host_memory_mb / self.browser_memory_mb))

    def snapshot_pipeline_s(
        self, subresources: int = 40, subpages: int = 5
    ) -> float:
        """Wall-clock to produce a fresh snapshot + subpages for one page."""
        return (
            self.origin_fetch_s
            + subresources * self.subresource_fetch_s
            + self.browser_request_s
            + self.image_encode_s
            + subpages * self.subpage_emit_s
        )


DEFAULT_COST_MODEL = BrowserCostModel()
