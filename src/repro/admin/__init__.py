"""Administrator tools: the visual selection tool analog and dock."""

from repro.admin.tool import AdminTool, Selection
from repro.admin.dock import NonVisualDock

__all__ = ["AdminTool", "Selection", "NonVisualDock"]
