"""The visual admin tool analog.

The paper's tool gives the administrator "a live view of the site.  Once a
page is loaded, the administrator is able to highlight page objects using
a point and click approach" (§3.1).  Headless here, the tool loads the
page through the proxy-side browser, lays it out at the admin's viewport,
and supports both click-at-(x, y) selection (hit testing against real
layout geometry) and direct selector queries.  Assigning attributes
accumulates an :class:`AdaptationSpec`; ``generate_proxy_source`` emits
the proxy shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.codegen import generate_proxy_source
from repro.core.spec import AdaptationSpec, AttributeBinding, ObjectSelector
from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.selectors import select
from repro.errors import IdentificationError
from repro.net.client import HttpClient
from repro.net.url import URL
from repro.render.box import Rect
from repro.render.snapshot import PageSnapshot, render_snapshot


@dataclass
class Selection:
    """One highlighted page object with its derived selector."""

    element: Element
    selector: ObjectSelector
    geometry: Optional[Rect] = None

    @property
    def description(self) -> str:
        return (
            f"<{self.element.tag}> via {self.selector.kind}:"
            f"{self.selector.expression}"
        )


class AdminTool:
    """Loads one originating page and builds an adaptation for it."""

    def __init__(
        self,
        client: HttpClient,
        url: str,
        site_name: str = "",
        viewport_width: int = 1024,
    ) -> None:
        self.url = URL.parse(url)
        self.site_name = site_name or self.url.host
        self.viewport_width = viewport_width
        response = client.get(self.url)
        if not response.ok:
            raise IdentificationError(
                f"admin tool could not load {url}: {response.status}"
            )
        from repro.html.parser import parse_html

        self.document: Document = parse_html(response.text_body)
        # Fetch external CSS so the live view lays out like production.
        external_css: dict[str, str] = {}
        for element in self.document.all_elements():
            if (
                element.tag == "link"
                and (element.get("rel") or "").lower() == "stylesheet"
            ):
                href = element.get("href")
                if href:
                    css_response = client.get(self.url.join(href))
                    if css_response.ok:
                        external_css[href] = css_response.text_body
        self.snapshot: PageSnapshot = render_snapshot(
            self.document,
            viewport_width=viewport_width,
            external_css=external_css,
        )
        self.spec = AdaptationSpec(
            site=self.site_name,
            origin_host=self.url.host,
            page_path=self.url.request_target,
            viewport_width=viewport_width,
        )
        self.selections: list[Selection] = []

    # ------------------------------------------------------------------
    # selection

    def select_at(self, x: float, y: float) -> Selection:
        """Point-and-click selection via layout hit testing."""
        element = self.snapshot.hit_test(x, y)
        if element is None:
            raise IdentificationError(f"nothing at ({x}, {y})")
        selection = Selection(
            element=element,
            selector=self.derive_selector(element),
            geometry=self.snapshot.geometry_of(element),
        )
        self.selections.append(selection)
        return selection

    def select_css(self, expression: str) -> Selection:
        """Direct selector entry (the advanced work flow)."""
        matches = select(self.document, expression)
        if not matches:
            raise IdentificationError(
                f"selector {expression!r} matched nothing on the live view"
            )
        selection = Selection(
            element=matches[0],
            selector=ObjectSelector.css(expression),
            geometry=self.snapshot.geometry_of(matches[0]),
        )
        self.selections.append(selection)
        return selection

    def derive_selector(self, element: Element) -> ObjectSelector:
        """Derive a robust selector for a clicked element.

        Preference order mirrors what keeps working as content changes:
        a unique id, the nearest ancestor id plus a short path, a unique
        class, then a positional path from the body.
        """
        if element.id and self._unique(f"#{element.id}"):
            return ObjectSelector.css(f"#{element.id}")
        # Nearest ancestor with an id.
        path: list[Element] = [element]
        node = element.parent
        while isinstance(node, Element):
            if node.id and self._unique(f"#{node.id}"):
                suffix = " > ".join(
                    self._step(step) for step in reversed(path)
                )
                expression = f"#{node.id} > {suffix}"
                if self._unique(expression):
                    return ObjectSelector.css(expression)
                break
            path.append(node)
            node = node.parent
        for class_name in element.classes:
            expression = f"{element.tag}.{class_name}"
            if self._unique(expression):
                return ObjectSelector.css(expression)
        # Positional fallback from the body.
        steps: list[str] = []
        node = element
        while isinstance(node, Element) and node.tag != "body":
            steps.append(self._step(node))
            node = node.parent  # type: ignore[assignment]
        steps.append("body")
        return ObjectSelector.css(" > ".join(reversed(steps)))

    def _step(self, element: Element) -> str:
        parent = element.parent
        if isinstance(parent, Element):
            same_tag = [
                child
                for child in parent.child_elements()
                if child.tag == element.tag
            ]
            if len(same_tag) > 1:
                position = (
                    [
                        index
                        for index, child in enumerate(
                            parent.child_elements(), start=1
                        )
                        if child is element
                    ]
                    or [1]
                )[0]
                return f"{element.tag}:nth-child({position})"
        return element.tag

    def _unique(self, expression: str) -> bool:
        try:
            return len(select(self.document, expression)) == 1
        except Exception:
            return False

    # ------------------------------------------------------------------
    # attribute assignment

    def assign(
        self,
        target: Optional[Selection],
        attribute: str,
        **params,
    ) -> AttributeBinding:
        """Apply an attribute from the menu to a selection (or the page)."""
        selector = target.selector if target is not None else None
        return self.spec.add(attribute, selector=selector, **params)

    def assign_page(self, attribute: str, **params) -> AttributeBinding:
        """Whole-page attributes (prerender, cacheable, http_auth, ...)."""
        return self.spec.add(attribute, selector=None, **params)

    # ------------------------------------------------------------------
    # output

    def generate_proxy_source(self, proxy_base: str = "proxy.php") -> str:
        return generate_proxy_source(self.spec, proxy_base=proxy_base)

    def export_spec(self) -> str:
        return self.spec.to_json()
