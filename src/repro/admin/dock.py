"""The non-visual object dock.

"A separate dock exists for non-visual objects, such as CSS, Javascript
functions, head-section content, doctype tags, and cookies" (§3.1).  The
dock enumerates those objects for one loaded page so the administrator can
assign attributes to things that never paint a pixel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import ObjectSelector
from repro.dom.document import Document


@dataclass(frozen=True)
class DockItem:
    """One non-visual object the dock lists."""

    kind: str  # 'doctype' | 'title' | 'css' | 'script' | 'meta' | 'cookie'
    label: str
    selector: ObjectSelector


class NonVisualDock:
    """Enumerates the non-visual objects of a page."""

    def __init__(self, document: Document) -> None:
        self.document = document

    def items(self) -> list[DockItem]:
        items: list[DockItem] = []
        if self.document.doctype is not None:
            items.append(
                DockItem(
                    kind="doctype",
                    label=f"<!DOCTYPE {self.document.doctype.name}>",
                    selector=ObjectSelector.dock("doctype"),
                )
            )
        title = self.document.title
        if title:
            items.append(
                DockItem(
                    kind="title",
                    label=f"title: {title[:60]}",
                    selector=ObjectSelector.dock("title"),
                )
            )
        for index, element in enumerate(self.document.all_elements()):
            if element.tag == "script":
                src = element.get("src")
                label = (
                    f"script src={src}"
                    if src
                    else f"inline script ({len(element.text_content)} chars)"
                )
                selector = (
                    ObjectSelector.css(f'script[src="{src}"]')
                    if src
                    else ObjectSelector.xpath(
                        f"//script[{self._script_ordinal(element)}]"
                    )
                )
                items.append(DockItem("script", label, selector))
            elif element.tag == "style":
                items.append(
                    DockItem(
                        kind="css",
                        label=(
                            f"inline style block "
                            f"({len(element.text_content)} chars)"
                        ),
                        selector=ObjectSelector.css("style"),
                    )
                )
            elif (
                element.tag == "link"
                and (element.get("rel") or "").lower() == "stylesheet"
            ):
                href = element.get("href") or ""
                items.append(
                    DockItem(
                        kind="css",
                        label=f"stylesheet {href}",
                        selector=ObjectSelector.css(
                            f'link[href="{href}"]'
                        ),
                    )
                )
            elif element.tag == "meta":
                name = element.get("name") or element.get("http-equiv") or ""
                if name:
                    items.append(
                        DockItem(
                            kind="meta",
                            label=f"meta {name}",
                            selector=ObjectSelector.css(
                                f'meta[name="{name}"]'
                                if element.get("name")
                                else f'meta[http-equiv="{name}"]'
                            ),
                        )
                    )
        items.append(
            DockItem(
                kind="cookie",
                label="session cookies",
                selector=ObjectSelector.dock("cookies"),
            )
        )
        return items

    def _script_ordinal(self, element) -> int:
        scripts = [
            el for el in self.document.all_elements() if el.tag == "script"
        ]
        for index, script in enumerate(scripts, start=1):
            if script is element:
                return index
        return 1

    def scripts(self) -> list[DockItem]:
        return [item for item in self.items() if item.kind == "script"]

    def stylesheets(self) -> list[DockItem]:
        return [item for item in self.items() if item.kind == "css"]
