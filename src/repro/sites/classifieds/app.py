"""The classifieds origin application.

Deliberately minimal markup, like its inspiration: a category page is a
long date-sorted list of links; a listing page is the ad body.  No AJAX
anywhere — "Craigslist does not ordinarily require any AJAX requests,
which for a mobile device means an overuse of the browser's tiny back
button, and continual reloading of pages" (§4.5) — which is exactly the
behaviour the m.Site adaptation fixes.
"""

from __future__ import annotations

from repro.net.messages import Request, Response
from repro.net.server import Application, Router
from repro.sites.classifieds.data import CATEGORIES, Listing, ListingGenerator

_HEAD = """<!DOCTYPE html>
<html><head><title>{title}</title>
<style type="text/css">
body {{ font-family: times, serif; margin: 12px; }}
.pl {{ padding: 2px 0; }}
.itemdate {{ color: #555; }}
.price {{ color: #060; font-weight: bold; }}
#titlebar {{ background: #5c1f85; color: white; padding: 6px; }}
.postingbody {{ font-size: 14px; margin-top: 10px; }}
</style></head>
"""


class ClassifiedsApplication(Application):
    """craigslist-analog origin server."""

    def __init__(self, listings: ListingGenerator | None = None) -> None:
        self.listings = listings or ListingGenerator()
        self.hits = 0
        self._router = Router()
        self._router.add_route("/", self.home, ("GET",))
        self._router.add_route("/<category>/", self.category_page, ("GET",))
        self._router.add_route(
            "/<category>/<listing_file>", self.listing_page, ("GET",)
        )

    def handle(self, request: Request) -> Response:
        self.hits += 1
        return self._router.handle(request)

    def home(self, request: Request) -> Response:
        links = "".join(
            f'<li><a href="/{code}/">{label}</a></li>'
            for code, label in CATEGORIES
        )
        return Response.html(
            _HEAD.format(title="craigslist: classifieds")
            + f'<body><div id="titlebar">craigslist</div>'
            f"<ul>{links}</ul></body></html>"
        )

    def category_page(self, request: Request, category: str) -> Response:
        listings = self.listings.category(category)
        if not listings:
            return Response.not_found(f"no category {category!r}")
        rows = "".join(self._listing_row(listing) for listing in listings)
        label = dict(CATEGORIES).get(category, category)
        return Response.html(
            _HEAD.format(title=f"all {label} classifieds")
            + f'<body><div id="titlebar">{label}</div>'
            f'<div id="toc">{rows}</div></body></html>'
        )

    def _listing_row(self, listing: Listing) -> str:
        return (
            f'<p class="pl" id="row{listing.listing_id}">'
            f'<span class="itemdate">day {listing.posted_day}</span> '
            f'<a href="{listing.path}">{listing.title}</a> '
            f'<span class="price">${listing.price}</span> '
            f"({listing.location})</p>"
        )

    def listing_page(
        self, request: Request, category: str, listing_file: str
    ) -> Response:
        try:
            listing_id = int(listing_file.removesuffix(".html"))
        except ValueError:
            return Response.not_found("bad listing id")
        listing = self.listings.listing(listing_id)
        if listing is None or listing.category != category:
            return Response.not_found("listing expired or removed")
        return Response.html(
            _HEAD.format(title=listing.title)
            + f'<body><div id="titlebar">{listing.title} - '
            f'${listing.price} ({listing.location})</div>'
            f'<div class="postingbody" id="posting">{listing.body}</div>'
            f'<p class="itemdate">posted day {listing.posted_day}; '
            f"id {listing.listing_id}</p></body></html>"
        )
