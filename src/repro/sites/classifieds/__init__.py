"""Craigslist-style classifieds site (the §4.5 AJAX case study subject)."""

from repro.sites.classifieds.app import ClassifiedsApplication
from repro.sites.classifieds.data import ListingGenerator

__all__ = ["ClassifiedsApplication", "ListingGenerator"]
