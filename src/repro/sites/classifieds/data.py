"""Synthetic classified listings.

"Craigslist users browse pages of classified listings organized by
category and sorted by date; clicking on a link brings the user to a new
page with the contents of the selected ad." (§4.5)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import DeterministicRandom
from repro.util.text import TextGenerator

CATEGORIES = [
    ("tls", "tools"),
    ("fuo", "furniture - by owner"),
    ("mat", "materials"),
    ("grd", "farm+garden"),
    ("app", "appliances"),
]

_LOCATIONS = [
    "downtown", "east side", "west end", "north county", "river district",
    "old town", "harbor", "midtown", "airport", "university",
]


@dataclass(frozen=True)
class Listing:
    """One classified ad."""

    listing_id: int
    category: str
    title: str
    price: int
    location: str
    posted_day: int
    body: str

    @property
    def path(self) -> str:
        return f"/{self.category}/{self.listing_id}.html"


class ListingGenerator:
    """Deterministic listing inventory per category."""

    def __init__(self, seed: int = 776) -> None:
        self.seed = seed
        self._by_category: dict[str, list[Listing]] = {}
        self._by_id: dict[int, Listing] = {}
        self._generate()

    def _generate(self) -> None:
        rng = DeterministicRandom(self.seed)
        text = TextGenerator(self.seed ^ 0xAD5)
        listing_id = 29_000_000
        for code, __ in CATEGORIES:
            listings = []
            for __ in range(100):
                listing_id += rng.randint(11, 999)
                listing = Listing(
                    listing_id=listing_id,
                    category=code,
                    title=text.title(6),
                    price=rng.randint(5, 2400),
                    location=rng.choice(_LOCATIONS),
                    posted_day=3000 - rng.randint(0, 13),
                    body=text.paragraph(rng.randint(2, 7)),
                )
                listings.append(listing)
            listings.sort(key=lambda item: -item.posted_day)
            self._by_category[code] = listings
            for listing in listings:
                self._by_id[listing.listing_id] = listing

    def category(self, code: str) -> list[Listing]:
        return self._by_category.get(code, [])

    def listing(self, listing_id: int) -> Listing | None:
        return self._by_id.get(listing_id)
