"""The news origin application.

A metro-daily analog with the two behaviours the forum never exhibits:

* section fronts carrying a long headline list (pagination-splitting
  material) and an infinite-scroll teaser feed primed with the first
  batch of stories,
* an AJAX feed endpoint, ``/feed.php?do=feed_<section>&id=<offset>``,
  shaped exactly like the vBulletin ``do=``/``id=`` calls so the
  ajax-rewriting attribute (§4.4) translates the "More stories" link
  into a static proxy action.
"""

from __future__ import annotations

from repro.net.messages import Request, Response
from repro.net.server import Application, Router
from repro.sites.news.data import FEED_BATCH, Article, Newsroom, SECTIONS

_HEAD = """<!DOCTYPE html>
<html><head><title>{title}</title>
<link rel="stylesheet" type="text/css" href="/styles/news.css" />
</head>
"""

_SCROLL_SCRIPT = """
<script type="text/javascript">
function feedScroll() {{
  var feed = document.getElementById('feed');
  var request = new XMLHttpRequest();
  request.open('GET', '/feed.php?do=feed_{code}&id={offset}', true);
  request.onreadystatechange = function () {{
    if (request.readyState === 4 && request.status === 200) {{
      feed.innerHTML += request.responseText;
    }}
  }};
  request.send(null);
}}
window.onscroll = feedScroll;
</script>
""".strip()

_CSS = """
body { font-family: georgia, serif; margin: 0; }
#masthead { background: #1a1a2e; color: white; padding: 10px 14px; }
#sections li { display: inline; margin-right: 12px; }
.headline { border-bottom: 1px dotted #bbb; padding: 3px 0; }
.teaser { padding: 6px 0; border-bottom: 1px solid #ddd; }
.byline { color: #666; font-size: 12px; }
.feed-more { font-weight: bold; }
#sidebar { background: #f4f4f4; padding: 8px; }
""".strip()


class NewsApplication(Application):
    """The metro-daily origin server."""

    def __init__(self, newsroom: Newsroom | None = None) -> None:
        self.newsroom = newsroom or Newsroom()
        self.hits = 0
        self.feed_fetches = 0
        self._router = Router()
        self._router.add_route("/", self.front_page, ("GET",))
        self._router.add_route("/index.php", self.front_page, ("GET",))
        self._router.add_route(
            "/section/<code>/", self.section_page, ("GET",)
        )
        self._router.add_route(
            "/article/<article_file>", self.article_page, ("GET",)
        )
        self._router.add_route("/feed.php", self.feed, ("GET",))
        self._router.add_route("/styles/news.css", self.stylesheet, ("GET",))

    def handle(self, request: Request) -> Response:
        self.hits += 1
        return self._router.handle(request)

    # -- markup helpers ----------------------------------------------------

    def _nav(self) -> str:
        links = "".join(
            f'<li><a href="/section/{code}/">{label}</a></li>'
            for code, label in SECTIONS
        )
        return f'<ul id="sections">{links}</ul>'

    @staticmethod
    def _headline_row(article: Article) -> str:
        return (
            f'<p class="headline" id="h{article.article_id}">'
            f'<a href="{article.path}">{article.title}</a> '
            f'<span class="byline">by {article.author}, '
            f"day {article.published_day}</span></p>"
        )

    @staticmethod
    def _teaser(article: Article) -> str:
        return (
            f'<div class="teaser" id="t{article.article_id}">'
            f'<a href="{article.path}">{article.title}</a>'
            f'<span class="byline"> — {article.author}</span>'
            f"<p>{article.summary}</p></div>"
        )

    # -- pages ------------------------------------------------------------

    def front_page(self, request: Request) -> Response:
        rows = "".join(
            self._headline_row(article)
            for article in self.newsroom.front_headlines()
        )
        return Response.html(
            _HEAD.format(title="The Metro Herald")
            + f'<body><div id="masthead"><h1>The Metro Herald</h1>'
            f"{self._nav()}</div>"
            f'<div id="headlines">{rows}</div></body></html>'
        )

    def section_page(self, request: Request, code: str) -> Response:
        label = dict(SECTIONS).get(code)
        if label is None:
            return Response.not_found(f"no section {code!r}")
        stories = self.newsroom.section_articles(code)
        lead, rest = stories[0], stories[1:]
        headlines = "".join(self._headline_row(a) for a in rest)
        primed, _next = self.newsroom.feed_window(code, 0)
        teasers = "".join(self._teaser(a) for a in primed)
        script = _SCROLL_SCRIPT.format(code=code, offset=FEED_BATCH)
        return Response.html(
            _HEAD.format(title=f"{label} - The Metro Herald")
            + f'<body><div id="masthead"><h1>{label}</h1>{self._nav()}'
            f"</div>"
            f'<div id="lead"><h2><a href="{lead.path}">{lead.title}</a>'
            f'</h2><p>{lead.summary}</p>'
            f'<p class="byline">by {lead.author}</p></div>'
            f'<div id="headlines">{headlines}</div>'
            f'<div id="feed">{teasers}</div>'
            f'<p id="feedmore"><a class="feed-more" '
            f'href="/feed.php?do=feed_{code}&id={FEED_BATCH}">'
            f"More stories</a></p>"
            f'<div id="sidebar"><h3>About this desk</h3>'
            f"<p>The {label} desk publishes "
            f"{len(stories)} stories on rotation; "
            f"tips to {code}@metroherald.example.</p></div>"
            f"{script}</body></html>"
        )

    def article_page(self, request: Request, article_file: str) -> Response:
        try:
            article_id = int(article_file.removesuffix(".html"))
        except ValueError:
            return Response.not_found("bad article id")
        article = self.newsroom.article(article_id)
        if article is None:
            return Response.not_found("story retracted or never filed")
        body = "".join(f"<p>{text}</p>" for text in article.paragraphs)
        related = "".join(
            self._headline_row(a)
            for a in self.newsroom.section_articles(article.section)[:4]
            if a.article_id != article.article_id
        )
        return Response.html(
            _HEAD.format(title=article.title)
            + f'<body><div id="masthead"><h1>The Metro Herald</h1>'
            f"{self._nav()}</div>"
            f'<div id="story"><h2>{article.title}</h2>'
            f'<p class="byline">by {article.author}, '
            f"day {article.published_day}</p>{body}</div>"
            f'<div id="sidebar"><h3>Related stories</h3>{related}</div>'
            f"</body></html>"
        )

    # -- the infinite-scroll feed -----------------------------------------

    def feed(self, request: Request) -> Response:
        """One AJAX batch: ``?do=feed_<section>&id=<offset>``."""
        do = request.params.get("do", "")
        if not do.startswith("feed_"):
            return Response.not_found(f"unknown feed action {do!r}")
        code = do.removeprefix("feed_")
        if dict(SECTIONS).get(code) is None:
            return Response.not_found(f"no section {code!r}")
        try:
            offset = int(request.params.get("id", "0"))
        except ValueError:
            return Response.not_found("bad feed offset")
        self.feed_fetches += 1
        window, next_offset = self.newsroom.feed_window(code, offset)
        if not window:
            return Response.html('<p class="feed-end">No more stories.</p>')
        fragment = "".join(self._teaser(a) for a in window)
        if next_offset is not None:
            fragment += (
                f'<a class="feed-more" '
                f'href="/feed.php?do=feed_{code}&id={next_offset}">'
                f"More stories</a>"
            )
        return Response.html(fragment)

    # -- assets -----------------------------------------------------------

    def stylesheet(self, request: Request) -> Response:
        return Response.binary(_CSS.encode("ascii"), "text/css")
