"""The news origin site: a metro daily with an infinite-scroll feed."""

from repro.sites.news.app import NewsApplication
from repro.sites.news.data import Article, Newsroom
from repro.sites.news.spec import (
    NEWS_HOST,
    NEWS_SITE,
    news_fastpath_spec,
    news_section_spec,
)

__all__ = [
    "Article",
    "NEWS_HOST",
    "NEWS_SITE",
    "NewsApplication",
    "Newsroom",
    "news_fastpath_spec",
    "news_section_spec",
]
