"""Canonical adaptation specs for the news family.

Two builders, sharing the same section front:

* :func:`news_section_spec` — the full mobilization: window the
  infinite-scroll feed, split the headline list into proxy-served
  pages, detach the desk sidebar, and rewrite the feed's AJAX call to
  a static proxy action (§4.4).
* :func:`news_fastpath_spec` — the same adaptation minus the AJAX
  rewrite, so the adapted bundle is storable on the response fast path
  (bundles with live AJAX actions are excluded from the bundle cache).
"""

from __future__ import annotations

from repro.core.spec import AdaptationSpec, ObjectSelector
from repro.sites.news.data import ARTICLES_PER_SECTION

NEWS_HOST = "www.metroherald.com"
NEWS_SITE = "MetroHerald"

FEED_WINDOW_ITEMS = 6
HEADLINES_PER_PAGE = 6


def headline_page_ids(
    per_page: int = HEADLINES_PER_PAGE,
    total: int = ARTICLES_PER_SECTION - 1,  # the lead is not listed
) -> list[str]:
    """The pagination subpage ids the section spec produces."""
    pages = -(-total // per_page)  # ceil
    return [f"headlines-p{n}" for n in range(2, pages + 1)]


def news_section_spec(
    host: str = NEWS_HOST,
    section: str = "tech",
    ajax: bool = True,
    cache_ttl_s: float = 3600.0,
) -> AdaptationSpec:
    spec = AdaptationSpec(
        site=NEWS_SITE,
        origin_host=host,
        page_path=f"/section/{section}/",
        mobile_title=f"Metro Herald {section}",
    )
    spec.add("cacheable", ttl_s=cache_ttl_s)
    spec.add("strip_scripts")  # the origin's scroll handler is dead weight
    spec.add(
        "feed_window", ObjectSelector.css("#feed"),
        items=FEED_WINDOW_ITEMS,
        more_template=f"feed.php?do=feed_{section}&id={{offset}}",
        more_label="More stories",
    )
    spec.add(
        "paginate", ObjectSelector.css("#headlines"),
        subpage_id="headlines", per_page=HEADLINES_PER_PAGE,
        title="Headlines",
    )
    spec.add(
        "subpage", ObjectSelector.css("#sidebar"),
        subpage_id="about", title="About this desk",
    )
    spec.add("remove_object", ObjectSelector.css("#feedmore"))
    if ajax:
        spec.add("ajax_rewrite")
    return spec


def news_fastpath_spec(
    host: str = NEWS_HOST, section: str = "tech"
) -> AdaptationSpec:
    return news_section_spec(host=host, section=section, ajax=False)
