"""Deterministic synthetic newsroom generation.

The news family models the second class of site the paper's proxy would
face in the wild: a metro daily whose section fronts are long,
heavy-tailed article lists refreshed by an infinite-scroll AJAX feed
(the page-characteristics measurements in PAPERS.md show news fronts
carrying an order of magnitude more list items than a forum index).
All output is a pure function of the seed, so adapted bytes are
reproducible across runs, workers, and platforms.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.sim.rng import DeterministicRandom
from repro.util.names import FIRST_NAMES, LAST_NAMES
from repro.util.text import TextGenerator

SECTIONS: list[tuple[str, str]] = [
    ("metro", "Metro"),
    ("business", "Business"),
    ("tech", "Technology"),
    ("sports", "Sports"),
]

ARTICLES_PER_SECTION = 18  # long enough to paginate and to window
FEED_BATCH = 8  # teasers returned per infinite-scroll fetch
TODAY = 1_460  # days since the paper's launch, the generator's "now"


@dataclass(frozen=True)
class Article:
    """One published story."""

    article_id: int
    section: str
    title: str
    author: str
    published_day: int
    summary: str
    paragraphs: tuple[str, ...]

    @property
    def path(self) -> str:
        return f"/article/{self.article_id}.html"


class Newsroom:
    """The fully generated newsroom state for one seed."""

    def __init__(
        self,
        seed: int = 0x4E4557,  # "NEW" in ASCII
        articles_per_section: int = ARTICLES_PER_SECTION,
    ) -> None:
        self.seed = seed
        self._revisions = 0
        self._revise_lock = threading.Lock()
        rng = DeterministicRandom(seed)
        text = TextGenerator(seed ^ 0x5EC7104)
        self._articles: dict[int, Article] = {}
        self._by_section: dict[str, list[Article]] = {}
        next_id = 1000
        for code, _label in SECTIONS:
            stories: list[Article] = []
            for rank in range(articles_per_section):
                author = (
                    f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
                )
                paragraphs = tuple(
                    text.paragraph(sentences=rng.randint(2, 4))
                    for _ in range(rng.randint(3, 6))
                )
                article = Article(
                    article_id=next_id,
                    section=code,
                    title=text.title(max_words=8),
                    author=author,
                    published_day=TODAY - rank,
                    summary=text.sentence(min_words=8, max_words=16),
                    paragraphs=paragraphs,
                )
                stories.append(article)
                self._articles[next_id] = article
                next_id += 1
            self._by_section[code] = stories

    # -- lookups -----------------------------------------------------------

    def article(self, article_id: int) -> Article | None:
        return self._articles.get(article_id)

    def section_articles(self, code: str) -> list[Article]:
        """All of one section's stories, newest first."""
        return list(self._by_section.get(code, []))

    def front_headlines(self, per_section: int = 3) -> list[Article]:
        """The front page's cross-section headline river."""
        headlines: list[Article] = []
        for code, _label in SECTIONS:
            headlines.extend(self._by_section[code][:per_section])
        return headlines

    # -- churn -------------------------------------------------------------

    @property
    def revision_count(self) -> int:
        return self._revisions

    def revise(self, section: str = "tech") -> Article:
        """Publish one deterministic newsroom edit and return it.

        The edit stream is a pure function of (seed, revision number),
        so two newsrooms built from the same seed see byte-identical
        section fronts after the same number of revisions — the
        property the content-churn workload and the delta bench lean
        on.  Most revisions touch a story *summary* (rendered only in
        the lead block and the teaser feed, the delta-patchable
        regions); every tenth rewrites a deep *headline*, whose title
        also renders inside the paginated list and therefore forces the
        re-adaptation to take the full-replay path — keeping the churn
        mix honest about both outcomes.
        """
        with self._revise_lock:
            self._revisions += 1
            revision = self._revisions
            stories = self._by_section[section]
            text = TextGenerator((self.seed << 5) ^ (revision * 0x9E37))
            if revision % 10 == 9 and len(stories) > FEED_BATCH:
                slot = FEED_BATCH + revision % (len(stories) - FEED_BATCH)
                updated = replace(
                    stories[slot], title=text.title(max_words=8)
                )
            else:
                slot = revision % min(FEED_BATCH, len(stories))
                updated = replace(
                    stories[slot],
                    summary=text.sentence(min_words=8, max_words=16),
                )
            stories[slot] = updated
            self._articles[updated.article_id] = updated
            return updated

    def feed_window(
        self, code: str, offset: int, limit: int = FEED_BATCH
    ) -> tuple[list[Article], int | None]:
        """One infinite-scroll batch: (stories, next offset or None)."""
        stories = self._by_section.get(code, [])
        offset = max(0, offset)
        window = stories[offset : offset + limit]
        next_offset = offset + limit
        return window, next_offset if next_offset < len(stories) else None
