"""The vBulletin-style forum application (SawmillCreek analog)."""

from repro.sites.forum.app import ForumApplication
from repro.sites.forum.data import CommunityGenerator, Community

__all__ = ["ForumApplication", "CommunityGenerator", "Community"]
