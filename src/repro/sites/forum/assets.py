"""Static assets for the forum: stylesheet, client scripts, images.

The paper's entry page pulls "all images, external Javascripts (of which
there are about 12), and CSS files" totalling 224,477 bytes (§4.2).  The
asset sizes here are chosen so the synthetic page's full resource census
lands on that figure; the byte-census benchmark asserts it.
"""

from __future__ import annotations

import zlib

from repro.sim.rng import DeterministicRandom

# (name, byte size) for the ~12 external scripts a vBulletin 3.x page loads.
SCRIPT_MANIFEST: list[tuple[str, int]] = [
    ("yahoo-dom-event.js", 31_420),
    ("connection-min.js", 12_860),
    ("vbulletin_global.js", 11_212),
    ("vbulletin_menu.js", 9_941),
    ("vbulletin_md5.js", 8_105),
    ("vbulletin_read_marker.js", 4_380),
    ("vbulletin_post_loader.js", 4_966),
    ("vbulletin_quick_reply.js", 5_514),
    ("vbulletin_ajax_login.js", 3_820),
    ("vbulletin_notices.js", 2_650),
    ("sevenseas_ads.js", 3_107),
    ("analytics_tracker.js", 2_904),
]

# (name, byte size) for entry-page images: logo, banner ad, forum status
# icons, button sprites.
IMAGE_MANIFEST: list[tuple[str, int]] = [
    ("sawmill_logo.gif", 11_840),
    ("leaderboard_banner.gif", 20_322),
    ("forum_new.gif", 842),
    ("forum_old.gif", 831),
    ("forum_link.gif", 650),
    ("statusicon_new.gif", 412),
    ("statusicon_old.gif", 409),
    ("collapse_tcat.gif", 180),
    ("header_bg.gif", 1_240),
    ("cat_bg.gif", 905),
    ("button_login.gif", 760),
    ("rss_icon.gif", 520),
    ("calendar_icon.gif", 498),
    ("birthday_cake.gif", 534),
    ("whosonline.gif", 471),
    ("stats_bg.gif", 388),
    ("gradient_panel.gif", 1_105),
    ("footer_bg.gif", 676),
    ("mobile_logo.gif", 2_210),
    ("poweredby.gif", 1_380),
]

STYLESHEET_NAME = "clientscript/vbulletin_stylesheet.css"


def stylesheet_css() -> str:
    """The site stylesheet (~24 KB), vBulletin 3.x class structure."""
    rules = [
        "body { background: #E4EAF2; color: #000000; font: 10pt verdana,"
        " geneva, lucida, arial, helvetica, sans-serif; margin: 5px 10px;"
        " padding: 0; }",
        "a:link, body_alink { color: #22229C; }",
        "a:visited, body_avisited { color: #22229C; }",
        "a:hover, a:active { color: #FF4400; }",
        ".page { background: #FFFFFF; color: #000000; }",
        "td, th, p, li { font: 10pt verdana, geneva, lucida, arial,"
        " helvetica, sans-serif; }",
        ".tborder { background: #98B5E2; color: #000000; border: 1px solid"
        " #0B198C; }",
        ".tcat { background: #336699 url(images/cat_bg.gif) repeat-x"
        " top left; color: #FFFFFF; font: bold 10pt verdana; }",
        ".tcat a:link, .tcat a:visited { color: #FFFFFF; }",
        ".thead { background: #5C7099 url(images/header_bg.gif) repeat-x;"
        " color: #FFFFFF; font: bold 11px tahoma, verdana; }",
        ".tfoot { background: #3E5C92; color: #E0E0F6; }",
        ".alt1, .alt1active { background: #F5F5FF; color: #000000; }",
        ".alt2, .alt2active { background: #E1E4F2; color: #000000; }",
        ".wysiwyg { background: #F5F5FF; color: #000000; font: 10pt"
        " verdana; }",
        "textarea, .bginput { font: 10pt verdana, geneva, lucida, arial;"
        " background: #FFFFFF; }",
        ".button { font: 11px verdana; background: #E1E4F2; }",
        "select { font: 11px verdana; background: #FFFFFF; }",
        ".smallfont { font: 11px verdana, geneva, lucida, arial; }",
        ".time { color: #666686; }",
        ".navbar { font: 11px verdana; }",
        ".highlight { color: #FF0000; font-weight: bold; }",
        ".fjsel { background: #3E5C92; color: #E0E0F6; }",
        ".fjdpth0 { background: #F7F7F7; color: #000000; }",
        ".panel { background: #E9E9F9; color: #000000; padding: 10px;"
        " border: 2px outset; }",
        ".panelsurround { background: #D9D9EF; color: #000000; }",
        ".legend { background: #E4EAF2; color: #000000; }",
        ".vbmenu_control { background: #336699; color: #FFFFFF; font: bold"
        " 11px tahoma; padding: 3px 6px; white-space: nowrap; }",
        ".vbmenu_popup { background: #FFFFFF; color: #000000; border: 1px"
        " solid #0B198C; }",
        ".vbmenu_option { background: #F5F5FF; color: #000000; font: 11px"
        " verdana; white-space: nowrap; cursor: pointer; }",
        ".vbmenu_hilite { background: #98B5E2; color: #000000; }",
        "#forumbits td { padding: 6px; }",
        "#wol { padding: 6px; }",
        "#stats td { padding: 4px 6px; }",
        ".forumtitle { font-weight: bold; font-size: 12px; }",
        ".forumdesc { font-size: 11px; color: #333355; }",
        ".lastpost { font-size: 11px; }",
        "#announce { background: #FFF6BF; border: 1px solid #E5C365;"
        " padding: 8px; }",
        "#logobar { background: #FFFFFF; }",
        "#navlinks td { padding: 4px 10px; }",
        "#loginbox td { padding: 3px; }",
    ]
    # Pad to the real stylesheet's volume with per-forum skin variants,
    # the kind of generated bulk a themed vBulletin install accumulates.
    rng = DeterministicRandom(0xCC5)
    for index in range(170):
        hue = rng.randint(0, 255)
        rules.append(
            f".skin{index} {{ background: #{hue:02X}{(hue * 3) % 256:02X}"
            f"{(hue * 7) % 256:02X}; color: #000000; padding: "
            f"{rng.randint(2, 9)}px; margin: {rng.randint(0, 5)}px; "
            f"border: 1px solid #{(hue * 11) % 256:02X}2244; "
            f"font-size: {rng.randint(9, 13)}px; }}"
        )
    return "\n".join(rules) + "\n"


def script_body(name: str, size: int) -> str:
    """Deterministic pseudo-JavaScript of roughly ``size`` bytes."""
    rng = DeterministicRandom(zlib.crc32(name.encode("utf-8")))
    lines = [f"// {name} (c) Jelsoft Enterprises / synthetic reproduction"]
    body_bytes = len(lines[0])
    index = 0
    while body_bytes < size - 80:
        index += 1
        fn = (
            f"function vb_{name.split('.')[0][:8]}_{index}(a, b) {{ "
            f"var x = {rng.randint(1, 9999)}; "
            f"if (a > x) {{ return fetch_object('el{index}'); }} "
            f"return b ? x * {rng.randint(2, 17)} : do_an_ajax_thing(a); }}"
        )
        lines.append(fn)
        body_bytes += len(fn) + 1
    return "\n".join(lines) + "\n"


def image_bytes(name: str, size: int) -> bytes:
    """A deterministic pseudo-GIF blob of exactly ``size`` bytes."""
    rng = DeterministicRandom(zlib.crc32(name.encode("utf-8")))
    header = b"GIF89a"
    payload = bytearray(header)
    while len(payload) < size:
        payload.append(rng.randint(0, 255))
    return bytes(payload[:size])


def script_path(name: str) -> str:
    return f"clientscript/{name}"


def total_asset_bytes() -> int:
    """Bytes of all external assets referenced by the entry page."""
    return (
        sum(size for __, size in SCRIPT_MANIFEST)
        + sum(size for __, size in IMAGE_MANIFEST)
        + len(stylesheet_css().encode("utf-8"))
    )
