"""Deterministic synthetic community generation.

Reproduces the scale of the paper's test site: "a busy online community
with nearly 66,000 members" running vBulletin, with about 30 forums on the
entry page, up to 1,200 users online at a time, and continuous new-thread
traffic (§4.1-4.2).

Members are generated lazily (a pure function of member id) so the 66k
population costs nothing to hold; forums, recent threads, and the online
list are materialized once per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.rng import DeterministicRandom
from repro.sites.forum.models import (
    CalendarEvent,
    Category,
    Forum,
    Member,
    Post,
    SiteStatistics,
    Thread,
)
from repro.util.names import FIRST_NAMES, LAST_NAMES, USERNAMES
from repro.util.text import TextGenerator

MEMBER_COUNT = 65_949  # "nearly 66,000 members"
ONLINE_COUNT = 1_187  # "as many as 1200 users online at a time"
ONLINE_RECORD = 1_214
TODAY = 2_800  # days since site launch, the generator's "now"

_CATEGORY_TITLES = [
    "General Woodworking and Power Tools",
    "Hand Tools and Restoration",
    "Turning, Carving and Specialty",
    "Community and Marketplace",
]

_FORUM_TITLES = [
    "General Woodworking Discussion", "Project Showcase", "Power Tools",
    "Workshop Design and Dust Collection", "Finishing and Refinishing",
    "Wood and Lumber", "CNC and Digital Fabrication", "Shop Safety",
    "Jigs and Fixtures", "Sharpening Station",
    "Hand Tool Discussion", "Hand Planes", "Saws and Sawing",
    "Chisels and Carving Tools", "Tool Restoration Projects",
    "Workbenches and Holdfasts", "Layout and Measuring",
    "Woodturning Discussion", "Turned Projects Gallery", "Pen Turning",
    "Carving Discussion", "Scroll Sawing", "Musical Instruments",
    "Boat Building", "Timber Framing",
    "Introductions and Announcements", "Off-Topic Conversation",
    "Classifieds: For Sale", "Classifieds: Wanted", "Site Feedback",
]


@dataclass
class Community:
    """The fully generated community state for one seed."""

    seed: int
    categories: list[Category]
    forums_by_id: dict[int, Forum]
    threads_by_forum: dict[int, list[Thread]]
    threads_by_id: dict[int, Thread]
    online_member_ids: list[int]
    announcement: str
    statistics: SiteStatistics
    birthdays: list[Member]
    calendar_events: list[CalendarEvent]
    registered_accounts: dict[str, str] = field(default_factory=dict)

    def member(self, member_id: int) -> Member:
        """Deterministic member lookup by id (lazy population)."""
        return _make_member(self.seed, member_id)

    def forum(self, forum_id: int) -> Forum | None:
        return self.forums_by_id.get(forum_id)

    def thread(self, thread_id: int) -> Thread | None:
        return self.threads_by_id.get(thread_id)

    def thread_posts(self, thread: Thread, page_size: int = 10) -> list[Post]:
        """First page of posts for a thread (deterministic per thread)."""
        rng = DeterministicRandom(self.seed ^ (thread.thread_id * 7919))
        text = TextGenerator(self.seed ^ (thread.thread_id * 104729))
        count = min(page_size, thread.reply_count + 1)
        posts = []
        for index in range(count):
            author_id = (
                thread.author_id
                if index == 0
                else rng.randint(1, MEMBER_COUNT)
            )
            author = self.member(author_id)
            posts.append(
                Post(
                    post_id=thread.thread_id * 100 + index,
                    thread_id=thread.thread_id,
                    author_id=author_id,
                    author_name=author.username,
                    author_post_count=author.post_count,
                    day=thread.last_post_day - (count - index),
                    body=text.paragraph(rng.randint(2, 6)),
                )
            )
        return posts


def _make_member(seed: int, member_id: int) -> Member:
    rng = DeterministicRandom(seed ^ (member_id * 2_654_435_761))
    style = rng.randint(0, 2)
    if style == 0:
        username = rng.choice(USERNAMES)
        if member_id % 7 == 0:
            username += str(rng.randint(2, 99))
    elif style == 1:
        username = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
    else:
        username = f"{rng.choice(FIRST_NAMES).lower()}{rng.randint(1950, 2005)}"
    joined = rng.randint(0, TODAY - 1)
    # Post counts follow the usual heavy-tailed forum distribution.
    draw = rng.uniform()
    if draw < 0.6:
        posts = rng.randint(0, 30)
    elif draw < 0.9:
        posts = rng.randint(30, 500)
    else:
        posts = rng.randint(500, 12_000)
    return Member(
        member_id=member_id,
        username=username,
        joined_day=joined,
        post_count=posts,
        birthday_month=rng.randint(1, 12),
        birthday_day=rng.randint(1, 28),
    )


class CommunityGenerator:
    """Builds a :class:`Community` deterministically from a seed."""

    def __init__(self, seed: int = 20120412) -> None:
        self.seed = seed

    def generate(self) -> Community:
        rng = DeterministicRandom(self.seed)
        text = TextGenerator(self.seed ^ 0xC0FFEE)
        categories: list[Category] = []
        forums_by_id: dict[int, Forum] = {}
        threads_by_forum: dict[int, list[Thread]] = {}
        threads_by_id: dict[int, Thread] = {}

        forum_id = 0
        thread_seq = 50_000
        total_threads = 0
        total_posts = 0
        titles = list(_FORUM_TITLES)
        per_category = (len(titles) + len(_CATEGORY_TITLES) - 1) // len(
            _CATEGORY_TITLES
        )
        for cat_index, cat_title in enumerate(_CATEGORY_TITLES):
            category = Category(category_id=cat_index + 1, title=cat_title)
            for __ in range(per_category):
                if not titles:
                    break
                forum_id += 1
                title = titles.pop(0)
                thread_count = rng.randint(400, 9_000)
                post_count = thread_count * rng.randint(6, 14)
                last_poster = _make_member(
                    self.seed, rng.randint(1, MEMBER_COUNT)
                )
                private = title.startswith("Classifieds")
                forum = Forum(
                    forum_id=forum_id,
                    category_id=category.category_id,
                    title=title,
                    description=text.description(),
                    thread_count=thread_count,
                    post_count=post_count,
                    last_thread_title=text.title(),
                    last_thread_id=thread_seq,
                    last_poster_name=last_poster.username,
                    last_post_day=TODAY - rng.randint(0, 2),
                    private=private,
                )
                category.forums.append(forum)
                forums_by_id[forum_id] = forum
                total_threads += thread_count
                total_posts += post_count

                threads = []
                for index in range(25):
                    thread_seq += 1
                    author_id = rng.randint(1, MEMBER_COUNT)
                    author = _make_member(self.seed, author_id)
                    poster = _make_member(
                        self.seed, rng.randint(1, MEMBER_COUNT)
                    )
                    thread = Thread(
                        thread_id=thread_seq,
                        forum_id=forum_id,
                        title=text.title(),
                        author_id=author_id,
                        author_name=author.username,
                        reply_count=rng.randint(0, 120),
                        view_count=rng.randint(20, 9_000),
                        last_post_day=TODAY - rng.randint(0, 30),
                        last_poster_name=poster.username,
                        sticky=index < 2 and rng.uniform() < 0.4,
                    )
                    threads.append(thread)
                    threads_by_id[thread.thread_id] = thread
                threads.sort(key=lambda t: (-int(t.sticky), -t.last_post_day))
                threads_by_forum[forum_id] = threads
            categories.append(category)

        online = sorted(
            {rng.randint(1, MEMBER_COUNT) for __ in range(ONLINE_COUNT * 2)}
        )[:ONLINE_COUNT]
        newest = _make_member(self.seed, MEMBER_COUNT)
        birthdays = [
            _make_member(self.seed, rng.randint(1, MEMBER_COUNT))
            for __ in range(8)
        ]
        events = [
            CalendarEvent(day=TODAY + offset, title=text.title(4))
            for offset in range(1, 5)
        ]
        accounts = {
            "woodfan": "hunter2",
            "admin": "codegen!",
            "SawdustSteve": "mortise42",
        }
        return Community(
            seed=self.seed,
            categories=categories,
            forums_by_id=forums_by_id,
            threads_by_forum=threads_by_forum,
            threads_by_id=threads_by_id,
            online_member_ids=list(online),
            announcement=(
                "Welcome to our annual shop-made tool contest! Entries "
                "close at the end of the month; see the announcements "
                "forum for rules and prizes."
            ),
            statistics=SiteStatistics(
                member_count=MEMBER_COUNT,
                thread_count=total_threads,
                post_count=total_posts,
                newest_member=newest.username,
                online_count=ONLINE_COUNT,
                online_record=ONLINE_RECORD,
            ),
            birthdays=birthdays,
            calendar_events=events,
            registered_accounts=accounts,
        )
