"""HTML templates for the forum pages.

The entry page mirrors the structure the paper describes for the test
site: "a logo and leader board banner advertisement, followed by a box of
navigational links and a login form.  Below this is a transient box used
for announcements, followed by a long list of about 30 forum descriptions
... a display showing which members are logged in, with links to each
online member's public profile.  Toward the bottom is a box of site
statistics, a list of birthdays, public calendar entries, and finally some
additional navigational links." (§4.2)

Every adaptable region carries a stable id so the admin tool's selectors
have the anchors real vBulletin templates provide.
"""

from __future__ import annotations

from repro.sites.forum import assets
from repro.sites.forum.data import TODAY, Community
from repro.sites.forum.models import Forum, Post, Thread

SITE_TITLE = "Sawmill Creek Woodworking Community"

NAV_LINKS = [
    ("/index.php", "Home"),
    ("/register.php", "Register"),
    ("/faq.php", "FAQ"),
    ("/members.php", "Members List"),
    ("/calendar.php", "Calendar"),
    ("/search.php", "Search"),
    ("/usercp.php", "User CP"),
    ("/private.php", "Private Messages"),
    ("/subscription.php", "Subscriptions"),
    ("/showgroups.php", "Forum Leaders"),
    ("/sendmessage.php", "Contact Us"),
    ("/archive/index.php", "Archive"),
]

FOOTER_LINKS = [
    ("/sendmessage.php", "Contact Us"),
    ("/index.php", "Sawmill Creek"),
    ("/archive/index.php", "Archive"),
    ("/privacy.php", "Privacy Statement"),
    ("#top", "Top"),
]


def _format_day(day: int) -> str:
    """Render a synthetic day number as a vBulletin-style date string."""
    delta = TODAY - day
    if delta <= 0:
        return "Today"
    if delta == 1:
        return "Yesterday"
    month = (day // 28) % 12 + 1
    dom = day % 28 + 1
    year = 2004 + day // 336
    return f"{month:02d}-{dom:02d}-{year}"


def page_head(title: str, extra_head: str = "") -> str:
    scripts = "\n".join(
        f'<script type="text/javascript" '
        f'src="/clientscript/{name}"></script>'
        for name, __ in assets.SCRIPT_MANIFEST
    )
    return f"""<!DOCTYPE html>
<html>
<head>
<meta http-equiv="Content-Type" content="text/html; charset=utf-8" />
<meta name="generator" content="vBulletin 3.8.7" />
<meta name="keywords" content="woodworking, forum, community, tools" />
<meta name="description" content="{SITE_TITLE}" />
<title>{title}</title>
<link rel="stylesheet" type="text/css" href="/{assets.STYLESHEET_NAME}" />
{scripts}
<script type="text/javascript">
<!--
var SESSIONURL = "";
var SECURITYTOKEN = "guest";
var IMGDIR_MISC = "/images";
var vb_disable_ajax = parseInt("0", 10);
// -->
</script>
{extra_head}
</head>
"""


def navbar() -> str:
    cells = "".join(
        f'<td class="vbmenu_control"><a href="{href}">{label}</a></td>'
        for href, label in NAV_LINKS
    )
    return (
        '<table id="navlinks" class="tborder" cellpadding="0" '
        'cellspacing="0" border="0" width="100%">'
        f"<tr>{cells}</tr></table>"
    )


def logo_bar() -> str:
    return (
        '<table id="logobar" width="100%" cellpadding="0" cellspacing="0">'
        "<tr>"
        '<td><a href="/index.php"><img src="/images/sawmill_logo.gif" '
        'alt="Sawmill Creek" width="320" height="90" border="0" /></a></td>'
        '<td align="right" id="banner">'
        '<img src="/images/leaderboard_banner.gif" '
        'alt="Advertisement" width="728" height="90" /></td>'
        "</tr></table>"
    )


def login_box(error: str = "") -> str:
    error_html = (
        f'<tr><td colspan="3" class="highlight">{error}</td></tr>'
        if error
        else ""
    )
    return f"""<form id="loginform" action="/login.php" method="post"
 onsubmit="md5hash(vb_login_password, vb_login_md5password)">
<table id="loginbox" cellpadding="0" cellspacing="3" border="0">
{error_html}
<tr>
<td class="smallfont"><label for="navbar_username">User Name</label></td>
<td><input type="text" class="bginput" name="vb_login_username"
 id="navbar_username" size="10" accesskey="u" /></td>
<td class="smallfont" colspan="2"><label for="cb_cookieuser_navbar">
<input type="checkbox" name="cookieuser" value="1"
 id="cb_cookieuser_navbar" accesskey="c" />Remember Me?</label></td>
</tr>
<tr>
<td class="smallfont"><label for="navbar_password">Password</label></td>
<td><input type="password" class="bginput" name="vb_login_password"
 id="navbar_password" size="10" /></td>
<td><input type="submit" class="button" value="Log in"
 title="Enter your username and password" accesskey="s" /></td>
</tr>
</table>
<input type="hidden" name="do" value="login" />
<input type="hidden" name="vb_login_md5password" value="" />
</form>"""


def announcement_box(text: str) -> str:
    return (
        f'<div id="announce" class="smallfont">'
        f'<strong>Announcement:</strong> {text}</div>'
    )


def forum_listing(community: Community) -> str:
    rows: list[str] = []
    alt = True
    for category in community.categories:
        rows.append(
            f'<tr><td class="tcat" colspan="5" id="cat{category.category_id}">'
            f'<a href="/index.php#cat{category.category_id}">'
            f"{category.title}</a>"
            f'<img src="/images/collapse_tcat.gif" alt="" align="right" />'
            f"</td></tr>"
        )
        for forum in category.forums:
            alt = not alt
            cls = "alt1" if alt else "alt2"
            icon = "forum_new.gif" if forum.last_post_day >= TODAY - 1 else "forum_old.gif"
            lock = " (private)" if forum.private else ""
            moderators = ", ".join(
                f'<a href="/members.php?u={forum.forum_id * 31 + index}">'
                f"{name}</a>"
                for index, name in enumerate(
                    (forum.last_poster_name, "ShopSteward", "BenchBoss")[
                        : 1 + forum.forum_id % 3
                    ]
                )
            )
            subforums = ""
            if forum.forum_id % 4 == 0:
                subforums = (
                    '<div class="smallfont fjdpth0">Sub-Forums: '
                    + ", ".join(
                        f'<a href="/forumdisplay.php?f='
                        f'{forum.forum_id * 10 + sub}">'
                        f"{forum.title.split()[0]} Annex {sub}</a>"
                        for sub in range(1, 4)
                    )
                    + "</div>"
                )
            viewing = (
                f'<span class="smallfont time">'
                f"({(forum.post_count % 37) + 2} Viewing)</span>"
            )
            rows.append(
                f'<tr id="forumrow{forum.forum_id}">'
                f'<td class="{cls}" width="30">'
                f'<img src="/images/{icon}" alt="forum status" /></td>'
                f'<td class="{cls}">'
                f'<div class="forumtitle">'
                f'<a href="{forum.path}">{forum.title}</a>{lock} '
                f"{viewing}</div>"
                f'<div class="forumdesc">{forum.description}</div>'
                f'<div class="smallfont">Moderators: {moderators}</div>'
                f"{subforums}</td>"
                f'<td class="{cls} lastpost" width="220">'
                f'<a href="/showthread.php?t={forum.last_thread_id}'
                f'&amp;goto=newpost">{forum.last_thread_title}</a><br />'
                f'by <a href="/members.php?find=lastposter&amp;f='
                f'{forum.forum_id}">{forum.last_poster_name}</a> '
                f'<span class="time">{_format_day(forum.last_post_day)}'
                f'</span> <a href="/showthread.php?t='
                f'{forum.last_thread_id}&amp;goto=newpost">'
                f'<img src="/images/statusicon_new.gif" '
                f'alt="Go to last post" /></a></td>'
                f'<td class="{cls}" align="center" width="70">'
                f"{forum.thread_count:,}</td>"
                f'<td class="{cls}" align="center" width="70">'
                f"{forum.post_count:,}</td>"
                f"</tr>"
            )
    header = (
        '<tr><td class="thead" colspan="2">Forum</td>'
        '<td class="thead">Last Post</td>'
        '<td class="thead">Threads</td><td class="thead">Posts</td></tr>'
    )
    return (
        '<table id="forumbits" class="tborder" cellpadding="0" '
        'cellspacing="1" border="0" width="100%">'
        f"{header}{''.join(rows)}</table>"
    )


def whos_online(community: Community, shown: int = 230) -> str:
    links = []
    for member_id in community.online_member_ids[:shown]:
        member = community.member(member_id)
        links.append(
            f'<a href="{member.profile_path}">{member.username}</a>'
        )
    stats = community.statistics
    return (
        '<table id="wol" class="tborder" cellpadding="6" cellspacing="1" '
        'border="0" width="100%">'
        '<tr><td class="thead">'
        f'<img src="/images/whosonline.gif" alt="" /> '
        f"Currently Active Users: {stats.online_count:,} "
        f"(members and guests) &mdash; Most users ever online was "
        f"{stats.online_record:,}.</td></tr>"
        f'<tr><td class="alt1 smallfont">{", ".join(links)}, '
        f"and {stats.online_count - len(links):,} more&hellip;</td></tr>"
        "</table>"
    )


def statistics_box(community: Community) -> str:
    stats = community.statistics
    return (
        '<table id="stats" class="tborder" cellpadding="6" cellspacing="1" '
        'border="0" width="100%">'
        '<tr><td class="thead" colspan="2">'
        f'<img src="/images/stats_bg.gif" alt="" /> '
        f"{SITE_TITLE} Statistics</td></tr>"
        '<tr><td class="alt1 smallfont">'
        f"Threads: {stats.thread_count:,}, Posts: {stats.post_count:,}, "
        f"Members: {stats.member_count:,}</td>"
        f'<td class="alt2 smallfont">Welcome to our newest member, '
        f'<a href="/members.php?u={stats.member_count}">'
        f"{stats.newest_member}</a></td></tr></table>"
    )


def birthdays_box(community: Community) -> str:
    entries = ", ".join(
        f'<a href="{member.profile_path}">{member.username}</a>'
        for member in community.birthdays
    )
    return (
        '<table id="birthdays" class="tborder" cellpadding="6" '
        'cellspacing="1" border="0" width="100%">'
        '<tr><td class="thead">'
        '<img src="/images/birthday_cake.gif" alt="" /> '
        "Today's Birthdays</td></tr>"
        f'<tr><td class="alt1 smallfont">{entries}</td></tr></table>'
    )


def calendar_box(community: Community) -> str:
    entries = "<br />".join(
        f'<a href="/calendar.php?day={event.day}">'
        f"{_format_day(event.day)}: {event.title}</a>"
        for event in community.calendar_events
    )
    return (
        '<table id="calendar" class="tborder" cellpadding="6" '
        'cellspacing="1" border="0" width="100%">'
        '<tr><td class="thead">'
        '<img src="/images/calendar_icon.gif" alt="" /> '
        "Upcoming Events</td></tr>"
        f'<tr><td class="alt1 smallfont">{entries}</td></tr></table>'
    )


def footer() -> str:
    links = " - ".join(
        f'<a href="{href}">{label}</a>' for href, label in FOOTER_LINKS
    )
    return (
        '<div id="footerlinks" class="tfoot smallfont" align="center">'
        f"{links}<br />"
        'Powered by vBulletin&reg; <img src="/images/poweredby.gif" '
        'alt="vBulletin" /> &mdash; synthetic reproduction for the '
        "m.Site evaluation.</div>"
    )


_INLINE_MENU_SCRIPT = """<script type="text/javascript">
<!--
var vbmenu_register_queue = [];
function vbmenu_register(id) { vbmenu_register_queue.push(id); }
%s
// -->
</script>"""


def inline_menu_script(community: Community) -> str:
    registrations = "\n".join(
        f'vbmenu_register("forumrow{forum_id}"); '
        f'fetch_object("forumrow{forum_id}").islastshown = '
        f'{str(forum.last_post_day >= TODAY - 1).lower()}; '
        f'forum_view_counts[{forum_id}] = {(forum.post_count % 37) + 2};'
        for forum_id, forum in sorted(community.forums_by_id.items())
    )
    preamble = (
        "var forum_view_counts = {};\n"
        "function init_forum_menus() { for (var i = 0; i < "
        "vbmenu_register_queue.length; i++) { "
        "vBmenu.init(vbmenu_register_queue[i]); } }\n"
    )
    return _INLINE_MENU_SCRIPT % (preamble + registrations)


def entry_page(community: Community, logged_in_user: str | None = None) -> str:
    """The forum home page (Figure 4's subject)."""
    welcome = (
        f'<div id="welcome" class="panel smallfont">Welcome back, '
        f"<strong>{logged_in_user}</strong>. "
        f'<a href="/usercp.php">User CP</a> &middot; '
        f'<a href="/logout.php">Log Out</a></div>'
        if logged_in_user
        else login_box()
    )
    body = f"""<body>
{logo_bar()}
{navbar()}
{welcome}
{announcement_box(community.announcement)}
{forum_listing(community)}
{whos_online(community)}
{statistics_box(community)}
{birthdays_box(community)}
{calendar_box(community)}
{footer()}
{inline_menu_script(community)}
</body>
</html>"""
    return page_head(SITE_TITLE) + body


def forumdisplay_page(community: Community, forum: Forum) -> str:
    """Thread listing for one forum."""
    threads = community.threads_by_forum.get(forum.forum_id, [])
    rows = []
    for index, thread in enumerate(threads):
        cls = "alt1" if index % 2 == 0 else "alt2"
        sticky = "<strong>Sticky:</strong> " if thread.sticky else ""
        rows.append(
            f'<tr id="thread{thread.thread_id}">'
            f'<td class="{cls}" width="20">'
            f'<img src="/images/statusicon_new.gif" alt="" /></td>'
            f'<td class="{cls}">{sticky}'
            f'<a href="{thread.path}">{thread.title}</a>'
            f'<div class="smallfont">{thread.author_name}</div></td>'
            f'<td class="{cls} lastpost" width="160">'
            f'{_format_day(thread.last_post_day)} '
            f"by {thread.last_poster_name}</td>"
            f'<td class="{cls}" align="center">{thread.reply_count}</td>'
            f'<td class="{cls}" align="center">{thread.view_count:,}</td>'
            f"</tr>"
        )
    body = f"""<body>
{logo_bar()}
{navbar()}
<div class="navbar smallfont" id="breadcrumb">
<a href="/index.php">{SITE_TITLE}</a> &gt; {forum.title}</div>
<table id="threadbits" class="tborder" cellpadding="0" cellspacing="1"
 border="0" width="100%">
<tr><td class="thead" colspan="2">Thread / Thread Starter</td>
<td class="thead">Last Post</td><td class="thead">Replies</td>
<td class="thead">Views</td></tr>
{''.join(rows)}
</table>
{footer()}
</body>
</html>"""
    return page_head(f"{forum.title} - {SITE_TITLE}") + body


def showthread_page(
    community: Community, thread: Thread, posts: list[Post]
) -> str:
    """Post listing for one thread."""
    blocks = []
    for index, post in enumerate(posts):
        cls = "alt1" if index % 2 == 0 else "alt2"
        media = ""
        if post.post_id % 5 == 0:
            # Some members embed shop-tour videos in their posts.
            media = (
                f'<embed src="/videos/shoptour{post.post_id}.swf" '
                f'width="480" height="360" '
                f'type="application/x-shockwave-flash"></embed>'
            )
        blocks.append(
            f'<table id="post{post.post_id}" class="tborder" '
            f'cellpadding="6" cellspacing="1" border="0" width="100%">'
            f'<tr><td class="thead">#{index + 1} &mdash; '
            f"{_format_day(post.day)}</td></tr>"
            f'<tr><td class="{cls}">'
            f'<div class="smallfont"><strong>'
            f'<a href="/members.php?u={post.author_id}">'
            f"{post.author_name}</a></strong> "
            f"({post.author_post_count:,} posts)</div>"
            f'<hr /><div class="wysiwyg">{post.body}{media}</div>'
            f'<div class="smallfont">'
            f'<a href="/ajax.php?do=showpic&amp;id={post.post_id}" '
            f'onclick="return vb_show_inline_pic({post.post_id});">'
            f"Show attached picture</a></div>"
            f"</td></tr></table>"
        )
    body = f"""<body>
{logo_bar()}
{navbar()}
<div class="navbar smallfont" id="breadcrumb">
<a href="/index.php">{SITE_TITLE}</a> &gt;
<a href="/forumdisplay.php?f={thread.forum_id}">Forum</a> &gt;
{thread.title}</div>
<h1 class="forumtitle">{thread.title}</h1>
{''.join(blocks)}
{footer()}
</body>
</html>"""
    return page_head(f"{thread.title} - {SITE_TITLE}") + body


def login_result_page(success: bool, username: str) -> str:
    if success:
        message = (
            f"Thank you for logging in, <strong>{username}</strong>. "
            '<a href="/index.php">Return to the forum home</a>.'
        )
    else:
        message = (
            "You have entered an invalid username or password. "
            '<a href="/index.php">Try again</a>.'
        )
    body = f"""<body>
{logo_bar()}
<div class="panel" id="loginresult">{message}</div>
</body>
</html>"""
    return page_head(f"Log In - {SITE_TITLE}") + body


def member_page(community: Community, member_id: int) -> str:
    member = community.member(member_id)
    body = f"""<body>
{logo_bar()}
{navbar()}
<table id="profile" class="tborder" cellpadding="6" cellspacing="1"
 border="0" width="100%">
<tr><td class="thead" colspan="2">{member.username}</td></tr>
<tr><td class="alt1">Join Date</td>
<td class="alt2">{_format_day(member.joined_day)}</td></tr>
<tr><td class="alt1">Total Posts</td>
<td class="alt2">{member.post_count:,}</td></tr>
<tr><td class="alt1">Birthday</td>
<td class="alt2">{member.birthday_month}/{member.birthday_day}</td></tr>
</table>
{footer()}
</body>
</html>"""
    return page_head(f"{member.username} - {SITE_TITLE}") + body
