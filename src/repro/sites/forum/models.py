"""Domain model for the synthetic online community."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Member:
    """A registered community member."""

    member_id: int
    username: str
    joined_day: int  # days since site launch
    post_count: int
    birthday_month: int
    birthday_day: int

    @property
    def profile_path(self) -> str:
        return f"/members.php?u={self.member_id}"


@dataclass
class Thread:
    """A discussion thread."""

    thread_id: int
    forum_id: int
    title: str
    author_id: int
    author_name: str
    reply_count: int
    view_count: int
    last_post_day: int
    last_poster_name: str
    sticky: bool = False

    @property
    def path(self) -> str:
        return f"/showthread.php?t={self.thread_id}"


@dataclass
class Post:
    """One post within a thread."""

    post_id: int
    thread_id: int
    author_id: int
    author_name: str
    author_post_count: int
    day: int
    body: str


@dataclass
class Forum:
    """A forum (board) within a category."""

    forum_id: int
    category_id: int
    title: str
    description: str
    thread_count: int
    post_count: int
    last_thread_title: str
    last_thread_id: int
    last_poster_name: str
    last_post_day: int
    private: bool = False

    @property
    def path(self) -> str:
        return f"/forumdisplay.php?f={self.forum_id}"


@dataclass
class Category:
    """A grouping of forums on the entry page."""

    category_id: int
    title: str
    forums: list[Forum] = field(default_factory=list)


@dataclass(frozen=True)
class SiteStatistics:
    """The entry page's statistics box."""

    member_count: int
    thread_count: int
    post_count: int
    newest_member: str
    online_count: int
    online_record: int


@dataclass(frozen=True)
class CalendarEvent:
    """A public calendar entry shown on the entry page."""

    day: int
    title: str
