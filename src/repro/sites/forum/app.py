"""The forum origin application: routing, sessions, AJAX endpoints.

Implements the origin-side behaviours the proxy must interpose on:

* cookie-based login sessions (``bbuserid``/``bbsessionhash``),
* an HTTP-Basic protected area (§3.3's authentication attribute),
* vBulletin-style AJAX endpoints (``ajax.php?do=...``) whose links the
  AJAX-rewriting attribute translates (§4.4),
* all static assets (stylesheet, ~12 client scripts, entry-page images).
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.net.messages import Request, Response
from repro.net.server import Application, Router
from repro.sites.forum import assets, templates
from repro.sites.forum.data import Community, CommunityGenerator


def _session_token(username: str) -> str:
    return f"sess{zlib.crc32(username.encode('utf-8')):08x}"


class ForumApplication(Application):
    """The SawmillCreek-analog origin server."""

    def __init__(self, community: Optional[Community] = None) -> None:
        self.community = community or CommunityGenerator().generate()
        self.hits = 0
        self._sessions: dict[str, str] = {}  # token -> username
        self._router = Router()
        self._register_routes()

    # -- plumbing ----------------------------------------------------------

    def handle(self, request: Request) -> Response:
        self.hits += 1
        return self._router.handle(request)

    def _register_routes(self) -> None:
        router = self._router
        router.add_route("/", self.index, ("GET",))
        router.add_route("/index.php", self.index, ("GET",))
        router.add_route("/forumdisplay.php", self.forumdisplay, ("GET",))
        router.add_route("/showthread.php", self.showthread, ("GET",))
        router.add_route("/login.php", self.login, ("GET", "POST"))
        router.add_route("/logout.php", self.logout, ("GET",))
        router.add_route("/members.php", self.member_profile, ("GET",))
        router.add_route("/ajax.php", self.ajax, ("GET", "POST"))
        router.add_route("/private.php", self.private_area, ("GET",))
        router.add_route("/calendar.php", self.calendar, ("GET",))
        router.add_route(
            "/clientscript/<name>", self.client_script, ("GET",)
        )
        router.add_route("/images/<name>", self.image, ("GET",))

    def current_user(self, request: Request) -> Optional[str]:
        token = request.cookies.get("bbsessionhash")
        if token:
            return self._sessions.get(token)
        return None

    # -- pages ------------------------------------------------------------

    def index(self, request: Request) -> Response:
        user = self.current_user(request)
        return Response.html(
            templates.entry_page(self.community, logged_in_user=user)
        )

    def forumdisplay(self, request: Request) -> Response:
        try:
            forum_id = int(request.params.get("f", ""))
        except ValueError:
            return Response.not_found("bad forum id")
        forum = self.community.forum(forum_id)
        if forum is None:
            return Response.not_found("no such forum")
        if forum.private and self.current_user(request) is None:
            return Response.redirect("/login.php")
        return Response.html(
            templates.forumdisplay_page(self.community, forum)
        )

    def showthread(self, request: Request) -> Response:
        try:
            thread_id = int(request.params.get("t", ""))
        except ValueError:
            return Response.not_found("bad thread id")
        thread = self.community.thread(thread_id)
        if thread is None:
            return Response.not_found("no such thread")
        posts = self.community.thread_posts(thread)
        return Response.html(
            templates.showthread_page(self.community, thread, posts)
        )

    def login(self, request: Request) -> Response:
        if request.method == "GET":
            return Response.html(
                templates.page_head("Log In") + "<body>"
                + templates.login_box() + "</body></html>"
            )
        form = request.form
        username = form.get("vb_login_username", "")
        password = form.get("vb_login_password", "")
        expected = self.community.registered_accounts.get(username)
        if expected is not None and expected == password:
            token = _session_token(username)
            self._sessions[token] = username
            response = Response.html(
                templates.login_result_page(True, username)
            )
            response.set_cookie("bbsessionhash", token, http_only=True)
            response.set_cookie("bbuserid", str(zlib.crc32(username.encode())))
            return response
        return Response.html(
            templates.login_result_page(False, username), status=200
        )

    def logout(self, request: Request) -> Response:
        token = request.cookies.get("bbsessionhash")
        if token:
            self._sessions.pop(token, None)
        response = Response.redirect("/index.php")
        response.set_cookie("bbsessionhash", "", max_age=0)
        return response

    def member_profile(self, request: Request) -> Response:
        raw = request.params.get("u")
        if raw is None:
            return Response.html(
                templates.page_head("Members") + "<body><p>Member list "
                "requires login.</p></body></html>"
            )
        try:
            member_id = int(raw)
        except ValueError:
            return Response.not_found("bad member id")
        return Response.html(templates.member_page(self.community, member_id))

    def calendar(self, request: Request) -> Response:
        events = "".join(
            f"<li>{event.title}</li>"
            for event in self.community.calendar_events
        )
        return Response.html(
            templates.page_head("Calendar") + f"<body><ul>{events}</ul>"
            "</body></html>"
        )

    # -- AJAX -----------------------------------------------------------

    def ajax(self, request: Request) -> Response:
        action = request.params.get("do", "")
        if action == "showpic":
            pic_id = request.params.get("id", "0")
            return Response.html(
                f'<img src="/images/attachment{pic_id}.jpg" '
                f'alt="attachment {pic_id}" width="640" height="480" />'
            )
        if action == "quickstats":
            stats = self.community.statistics
            return Response.json(
                {
                    "members": stats.member_count,
                    "threads": stats.thread_count,
                    "posts": stats.post_count,
                    "online": stats.online_count,
                }
            )
        if action == "usersearch":
            prefix = request.params.get("fragment", "").lower()
            matches = []
            for member_id in self.community.online_member_ids[:400]:
                member = self.community.member(member_id)
                if member.username.lower().startswith(prefix):
                    matches.append(member.username)
                if len(matches) >= 15:
                    break
            return Response.json({"matches": matches})
        return Response.not_found(f"unknown ajax action {action!r}")

    # -- protected area -----------------------------------------------------

    def private_area(self, request: Request) -> Response:
        credentials = request.basic_auth()
        if credentials is None:
            return Response.unauthorized(realm="Sawmill Creek private")
        username, password = credentials
        expected = self.community.registered_accounts.get(username)
        if expected is None or expected != password:
            return Response.unauthorized(realm="Sawmill Creek private")
        return Response.html(
            templates.page_head("Private Messages")
            + f"<body><div id='pmbox'><h2>Private messages for "
            f"{username}</h2><p>No new messages.</p></div></body></html>"
        )

    # -- static assets -----------------------------------------------------

    def client_script(self, request: Request, name: str) -> Response:
        if name == "vbulletin_stylesheet.css":
            return Response.binary(
                assets.stylesheet_css().encode("utf-8"), "text/css"
            )
        for script_name, size in assets.SCRIPT_MANIFEST:
            if script_name == name:
                return Response.binary(
                    assets.script_body(script_name, size).encode("utf-8"),
                    "application/javascript",
                )
        return Response.not_found(f"no script {name}")

    def image(self, request: Request, name: str) -> Response:
        for image_name, size in assets.IMAGE_MANIFEST:
            if image_name == name:
                return Response.binary(
                    assets.image_bytes(image_name, size), "image/gif"
                )
        if name.startswith("attachment"):
            return Response.binary(
                assets.image_bytes(name, 38_000), "image/jpeg"
            )
        return Response.not_found(f"no image {name}")
