"""Synthetic origin sites used by the evaluation.

* :mod:`repro.sites.forum` — a vBulletin-style online community modeled on
  the paper's test site (SawmillCreek.org: ~66,000 members, ~30 forums,
  2.2 million hits/day), serving the entry page whose adaptation the
  paper's Table 1 measures.
* :mod:`repro.sites.classifieds` — a Craigslist-style listing site used by
  the AJAX-adaptation case study (§4.5, Figure 6).
* :mod:`repro.sites.news` — a metro-daily site whose section fronts pair
  a long headline list with an infinite-scroll AJAX feed, exercising the
  feed-windowing and pagination-splitting attributes the forum never
  touches.
"""

from repro.sites.forum.app import ForumApplication
from repro.sites.classifieds.app import ClassifiedsApplication
from repro.sites.news.app import NewsApplication

__all__ = ["ForumApplication", "ClassifiedsApplication", "NewsApplication"]
