"""Compiled transform plans: one spec → one reusable execution plan.

The original pipeline re-interpreted the spec on every request: each
binding looked its attribute up in the registry, and each CSS selector
string was re-parsed at match time.  A deployment's spec never changes
between requests, so all of that is compile-once work.

:class:`TransformPlan` resolves every binding to its
:class:`~repro.core.attributes.AttributeDefinition`, groups the steps by
phase in spec order, pre-parses CSS selectors through the memoized
:func:`~repro.dom.selectors.parse_selector`, and classifies the spec:

* ``filter_only`` — no DOM-phase steps at all;
* ``stream_eligible`` — additionally, every page-phase step only sets
  pipeline flags (no prerender), so the whole adaptation is the paper's
  "source filter" case and the pipeline may emit through the one-pass
  streaming serializer instead of parse+serialize.

The plan also carries the spec *fingerprint* used by the fast-path
response cache: a change to the spec (or to the proxy base URL it is
deployed under) changes the fingerprint and therefore every cache key
derived from it — stale adaptations can never be replayed across a spec
edit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.core.attributes import ATTRIBUTE_REGISTRY, AttributeDefinition
from repro.core.spec import AdaptationSpec, AttributeBinding
from repro.dom.selectors import SelectorGroup, parse_selector
from repro.errors import AdaptationError, ParseError
from repro.observability.tracing import span

# Page-phase attributes that only set pipeline flags: running them does
# not require (or mutate) a parsed document, so they are compatible with
# the streaming emission path.  ``prerender`` is deliberately absent —
# it routes the request through the browser/snapshot machinery.
_STREAM_SAFE_PAGE = frozenset({"cacheable", "http_auth", "form_login"})


@dataclass(frozen=True)
class PlanStep:
    """One binding, resolved once: registry lookup + parsed selector."""

    binding: AttributeBinding
    definition: AttributeDefinition
    #: Pre-parsed group for CSS selectors; ``None`` for other selector
    #: kinds or for expressions that fail to parse (those keep their
    #: request-time error semantics).
    selector_group: Optional[SelectorGroup] = None


class TransformPlan:
    """The per-deployment compiled form of an :class:`AdaptationSpec`."""

    def __init__(
        self,
        spec: AdaptationSpec,
        proxy_base: str,
        namespace: str,
        fingerprint: str,
        filter_steps: list[PlanStep],
        dom_steps: list[PlanStep],
        page_steps: list[PlanStep],
    ) -> None:
        self.spec = spec
        self.proxy_base = proxy_base
        self.namespace = namespace
        self.fingerprint = fingerprint
        self.filter_steps = filter_steps
        self.dom_steps = dom_steps
        self.page_steps = page_steps

    @classmethod
    def compile(
        cls,
        spec: AdaptationSpec,
        proxy_base: str = "proxy.php",
        namespace: str = "",
        registry=None,
    ) -> "TransformPlan":
        """Resolve the spec once, at deployment time."""
        with span("plan"):
            spec.validate()
            phases: dict[str, list[PlanStep]] = {
                "filter": [], "dom": [], "page": [],
            }
            for binding in spec.bindings:
                definition = ATTRIBUTE_REGISTRY.get(binding.attribute)
                if definition is None:
                    raise AdaptationError(
                        f"unknown attribute {binding.attribute!r}"
                    )
                group = None
                if (
                    binding.selector is not None
                    and binding.selector.kind == "css"
                ):
                    try:
                        # Memoized: also warms the process-wide selector
                        # cache for request-time identify() calls.
                        group = parse_selector(binding.selector.expression)
                    except ParseError:
                        group = None
                phases[definition.phase].append(
                    PlanStep(binding, definition, group)
                )
            plan = cls(
                spec=spec,
                proxy_base=proxy_base,
                namespace=namespace,
                fingerprint=compute_fingerprint(
                    spec, proxy_base, namespace
                ),
                filter_steps=phases["filter"],
                dom_steps=phases["dom"],
                page_steps=phases["page"],
            )
        if registry is not None:
            registry.counter(
                "msite_plan_compiles_total",
                "Transform plans compiled (once per deployment).",
            ).inc()
        return plan

    def steps_for(self, phase: str) -> list[PlanStep]:
        if phase == "filter":
            return self.filter_steps
        if phase == "dom":
            return self.dom_steps
        if phase == "page":
            return self.page_steps
        raise ValueError(f"unknown phase {phase!r}")

    @property
    def filter_only(self) -> bool:
        """No DOM-phase steps: nothing ever queries the parsed tree."""
        return not self.dom_steps

    @property
    def stream_eligible(self) -> bool:
        """The whole adaptation is source filters plus pipeline flags."""
        return self.filter_only and all(
            step.definition.name in _STREAM_SAFE_PAGE
            for step in self.page_steps
        )


def compute_fingerprint(
    spec: AdaptationSpec, proxy_base: str, namespace: str
) -> str:
    """Stable digest of everything that shapes the adapted output.

    ``spec.to_json()`` sorts keys, so semantically-equal specs
    fingerprint identically across processes and restarts.
    """
    basis = f"{spec.to_json()}|{proxy_base}|{namespace}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]
