"""The shared pre-render cache.

"Certain areas of a site may be defined as cachable across sessions,
amortizing the initial pre-rendering cost across many users. ... a cached
snapshot of the main page of a site can be set to expire after an hour."
(§3.3)

The cache is safe to share across request-handling threads.  All
bookkeeping happens under one internal lock, and misses can be collapsed
with **single-flight** semantics (:meth:`PrerenderCache.load_or_join`):
when many concurrent requests miss on the same key, exactly one of them
runs the expensive loader (a browser render, an origin fetch) while the
rest block and share its result.  This is the proxy-side analog of the
request-collapsing DRIVESHAFT applies to CDN-scale snapshotting —
amortization only works if a stampede of cold misses costs one render,
not N.  Suppressed stampedes are counted in :class:`CacheStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DegradedServeError
from repro.observability.metrics import MetricsRegistry


@dataclass
class CacheEntry:
    key: str
    data: bytes
    content_type: str
    stored_at: float
    ttl_s: float
    hits: int = 0

    def fresh(self, now: float) -> bool:
        """Strictly-less-than freshness: an entry whose TTL has *exactly*
        elapsed is expired, and ``ttl_s <= 0`` is never fresh — even on a
        clock that has not advanced since the store."""
        if self.ttl_s <= 0:
            return False
        return now - self.stored_at < self.ttl_s

    @property
    def size(self) -> int:
        return len(self.data)


class CacheStats:
    """Cache counters, delegated to :class:`MetricsRegistry` instruments.

    The historical field names (``stats.hits`` etc.) remain readable
    attributes; the numbers themselves live in thread-safe counters that
    can be :meth:`bind`-ed into a deployment-wide registry so the
    ``/metrics`` endpoint and the bench read the same values.

    Single-flight accounting: ``flights`` counts loader executions,
    ``stampedes_suppressed`` counts callers that joined an in-progress
    flight instead of rendering redundantly.
    """

    _COUNTERS = {
        "hits": ("msite_cache_hits_total",
                 "Cache lookups served from a fresh entry."),
        "misses": ("msite_cache_misses_total",
                   "Cache lookups that found nothing fresh."),
        "expirations": ("msite_cache_expirations_total",
                        "Entries dropped because their TTL elapsed."),
        "stores": ("msite_cache_stores_total",
                   "Entries written into the cache."),
        "evictions": ("msite_cache_evictions_total",
                      "Entries evicted by the byte-budget policy."),
        "flights": ("msite_cache_flights_total",
                    "Single-flight loader executions."),
        "stampedes_suppressed": (
            "msite_cache_stampedes_suppressed_total",
            "Callers that joined an in-progress flight instead of "
            "loading redundantly."),
        "stale_hits": (
            "msite_cache_stale_hits_total",
            "Stale lookups served from an expired entry kept for "
            "graceful degradation."),
        "stale_misses": (
            "msite_cache_stale_misses_total",
            "Stale lookups that found nothing servable."),
        "stale_evictions": (
            "msite_cache_stale_evictions_total",
            "Retired entries dropped from the stale store."),
        "invalidated_loads": (
            "msite_cache_invalidated_loads_total",
            "Single-flight loads whose key was invalidated mid-flight; "
            "the result was served to the waiting callers but never "
            "stored, so the invalidation is not resurrected."),
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry or MetricsRegistry()
        self._counters = {
            field_name: registry.counter(metric_name, help_text)
            for field_name, (metric_name, help_text) in self._COUNTERS.items()
        }

    def record(self, field_name: str, by: float = 1) -> None:
        self._counters[field_name].inc(by)

    def bind(self, registry: MetricsRegistry) -> None:
        """Register these instruments into a shared registry."""
        for counter in self._counters.values():
            registry.register(counter)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={int(counter.value)}"
            for name, counter in self._counters.items()
        )
        return f"CacheStats({body})"


class _Flight:
    """One in-progress loader execution that concurrent misses join."""

    __slots__ = ("done", "result", "error", "owner")

    def __init__(self, owner: int) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.owner = owner  # thread id of the leader, for reentrancy


class PrerenderCache:
    """TTL cache for rendered snapshots and adapted fragments.

    Thread-safe; the internal lock is never held while a single-flight
    loader runs, so loaders may freely call back into the cache.
    """

    def __init__(
        self,
        clock=None,
        max_bytes: int = 64 * 1024 * 1024,
        metrics: Optional[MetricsRegistry] = None,
        stale_grace_s: float = 24 * 3600.0,
        stale_max_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        self.clock = clock
        self.max_bytes = max_bytes
        self.stale_grace_s = stale_grace_s
        self.stale_max_bytes = stale_max_bytes
        self._entries: dict[str, CacheEntry] = {}
        # Expired entries retired here (instead of vanishing) so the
        # degradation ladder can serve a stale snapshot when the fresh
        # path fails.  Bounded separately; never served as fresh.
        self._stale: dict[str, CacheEntry] = {}
        self._flights: dict[str, _Flight] = {}
        # Per-key invalidation counters, kept only while a flight is in
        # progress: an invalidation that lands between a single-flight
        # load starting and its result being stored must win — the
        # loader's result is served to its waiters but never stored, so
        # the invalidated entry is not resurrected.  Entries are dropped
        # when their flight completes, so the dict stays bounded by the
        # number of concurrent flights.
        self._flight_invalidations: dict[str, int] = {}
        self._lock = threading.RLock()
        self.stats = CacheStats(registry=metrics)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Expose this cache's counters through a shared registry."""
        self.stats.bind(registry)

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def get(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.record("misses")
                return None
            if not entry.fresh(self._now):
                self._retire(key)
                self.stats.record("expirations")
                self.stats.record("misses")
                return None
            entry.hits += 1
            self.stats.record("hits")
            return entry

    def _retire(self, key: str) -> None:
        """Move an expired entry to the stale store (caller holds the
        lock).  Entries with no positive TTL were never servable and are
        dropped outright."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        if entry.ttl_s > 0 and self._stale_age(entry) <= self.stale_grace_s:
            self._stale[key] = entry
            self._evict_stale_if_needed()

    def _stale_age(self, entry: CacheEntry) -> float:
        """Seconds past the entry's expiry instant (negative = fresh)."""
        return self._now - (entry.stored_at + entry.ttl_s)

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Lookup without touching hit/miss statistics or entry hit
        counts.  Single-flight loaders use this for their double-check so
        a collapsed stampede is not double-counted as misses."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry.fresh(self._now):
                return None
            return entry

    def put(
        self,
        key: str,
        data: bytes | str,
        content_type: str = "application/octet-stream",
        ttl_s: float = 3600.0,
    ) -> CacheEntry:
        if isinstance(data, str):
            data = data.encode("utf-8")
        with self._lock:
            entry = CacheEntry(
                key=key,
                data=data,
                content_type=content_type,
                stored_at=self._now,
                ttl_s=ttl_s,
            )
            self._entries[key] = entry
            self._stale.pop(key, None)  # a fresh store supersedes stale
            self.stats.record("stores")
            self._evict_if_needed()
            return entry

    def invalidate(self, key: str) -> bool:
        with self._lock:
            self._mark_flight_invalidated(key)
            self._stale.pop(key, None)
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            for key in self._flights:
                self._mark_flight_invalidated(key)
            self._entries.clear()
            self._stale.clear()

    def invalidate_matching(self, predicate: Callable[[str], bool]) -> int:
        """Drop every fresh and stale entry whose key satisfies
        ``predicate``; returns the number of distinct keys removed.

        Unlike :meth:`invalidate` on the shared subclass, this is a
        *silent* reconciliation primitive (no per-key bus events): the
        CDC replay path uses it to purge a region's derived state for a
        whole site, announcing the purge once itself.  In-progress
        flights on matching keys are marked invalidated so their results
        are served but not stored.
        """
        with self._lock:
            doomed = {k for k in self._entries if predicate(k)}
            retired = {k for k in self._stale if predicate(k)}
            for key in doomed:
                del self._entries[key]
            for key in retired:
                self._stale.pop(key, None)
            for key in self._flights:
                if predicate(key):
                    self._mark_flight_invalidated(key)
            return len(doomed | retired)

    def _mark_flight_invalidated(self, key: str) -> None:
        """Caller holds the lock.  Record that any in-progress flight's
        result for ``key`` is superseded and must not be stored."""
        if key in self._flights:
            self._flight_invalidations[key] = (
                self._flight_invalidations.get(key, 0) + 1
            )

    def keys(self) -> list[str]:
        """Keys of the fresh entries (the current working set)."""
        with self._lock:
            return list(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry.size for entry in self._entries.values())

    @property
    def stale_bytes(self) -> int:
        with self._lock:
            return sum(entry.size for entry in self._stale.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # stale serving (graceful degradation)

    def load_stale(
        self, key: str, max_stale_s: Optional[float] = None
    ) -> Optional[CacheEntry]:
        """Best available entry for ``key``, expired entries included.

        A fresh entry is returned as-is (without touching hit/miss
        accounting — this path only runs when the fresh path already
        failed).  Otherwise an expired entry no more than ``max_stale_s``
        (default: the cache's ``stale_grace_s``) past its TTL is served
        and counted as a ``stale_hit``.  Returns ``None`` when nothing
        servable survives.
        """
        limit = self.stale_grace_s if max_stale_s is None else max_stale_s
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.fresh(self._now):
                    return entry
                # Expired in place (no get noticed yet): retire it now so
                # the fresh map matches the documented semantics, then
                # fall through to the stale check.
                self._retire(key)
            entry = self._stale.get(key)
            if entry is not None and self._stale_age(entry) <= limit:
                entry.hits += 1
                self.stats.record("stale_hits")
                return entry
            if entry is not None:
                del self._stale[key]
                self.stats.record("stale_evictions")
            self.stats.record("stale_misses")
            return None

    def serve_stale_while_revalidate(
        self,
        key: str,
        loader: Callable[[], bytes | str],
        content_type: str = "application/octet-stream",
        ttl_s: float = 3600.0,
        max_stale_s: Optional[float] = None,
    ) -> tuple[CacheEntry, bool]:
        """``get_or_load``, but a loader failure falls back to stale.

        Returns ``(entry, is_stale)``.  The revalidation (the loader) is
        attempted on every call while only stale data exists — a later
        success replaces the stale copy — and its failure surfaces as
        :class:`~repro.errors.DegradedServeError` (the ladder ran out of
        rungs; ``__cause__`` carries the loader's error) only when no
        stale fallback survives.
        """
        try:
            return (
                self.get_or_load(
                    key, loader, content_type=content_type, ttl_s=ttl_s
                ),
                False,
            )
        except Exception as exc:
            entry = self.load_stale(key, max_stale_s=max_stale_s)
            if entry is None:
                raise DegradedServeError(
                    f"no stale fallback for {key!r} after loader failure: "
                    f"{exc}"
                ) from exc
            return entry, True

    # ------------------------------------------------------------------
    # single-flight

    def load_or_join(self, key: str, loader: Callable[[], object]) -> object:
        """Run ``loader`` once per key across concurrent callers.

        The first caller for ``key`` becomes the leader and executes
        ``loader`` (with no cache lock held); every caller that arrives
        while the flight is in progress blocks until the leader finishes
        and receives the same result (or the same exception).  The flight
        is forgotten once it completes, so a later expiry triggers a
        fresh load.  A leader that re-enters the same key on the same
        thread runs the loader directly rather than deadlocking on its
        own flight.
        """
        me = threading.get_ident()
        with self._lock:
            existing = self._flights.get(key)
            if existing is not None and existing.owner == me:
                # Reentrant: the leader's loader consulted the cache
                # again; run directly rather than joining our own flight.
                existing = None
                flight = None
            elif existing is not None:
                self.stats.record("stampedes_suppressed")
                flight = None
            else:
                flight = _Flight(owner=me)
                self._flights[key] = flight
                self.stats.record("flights")
        if existing is not None:
            existing.done.wait()
            if existing.error is not None:
                raise existing.error
            return existing.result
        if flight is None:  # reentrant leader
            return loader()
        try:
            flight.result = loader()
        except BaseException as exc:
            flight.error = exc
        finally:
            with self._lock:
                self._flights.pop(key, None)
                self._flight_invalidations.pop(key, None)
            flight.done.set()
        if flight.error is not None:
            raise flight.error
        return flight.result

    def get_or_load(
        self,
        key: str,
        loader: Callable[[], bytes | str],
        content_type: str = "application/octet-stream",
        ttl_s: float = 3600.0,
    ) -> CacheEntry:
        """``get`` with a single-flight fill on miss: concurrent misses
        on one key run ``loader`` exactly once and all receive the stored
        entry."""
        entry = self.get(key)
        if entry is not None:
            return entry

        def _fill() -> CacheEntry:
            cached = self.peek(key)
            if cached is not None:
                return cached
            with self._lock:
                token = self._flight_invalidations.get(key, 0)
            data = loader()
            if isinstance(data, str):
                data = data.encode("utf-8")
            with self._lock:
                if self._flight_invalidations.get(key, 0) != token:
                    # The key was invalidated while the loader ran: the
                    # waiting callers still get the loaded bytes, but
                    # storing them would resurrect the invalidated
                    # entry — the next lookup must re-load.
                    self.stats.record("invalidated_loads")
                    return CacheEntry(
                        key=key,
                        data=data,
                        content_type=content_type,
                        stored_at=self._now,
                        ttl_s=ttl_s,
                    )
                return self.put(
                    key, data, content_type=content_type, ttl_s=ttl_s
                )

        return self.load_or_join(key, _fill)

    # ------------------------------------------------------------------

    def _evict_if_needed(self) -> None:
        """Oldest-first eviction when over the byte budget (caller holds
        the lock)."""
        while (
            sum(e.size for e in self._entries.values()) > self.max_bytes
            and self._entries
        ):
            oldest_key = min(
                self._entries, key=lambda key: self._entries[key].stored_at
            )
            del self._entries[oldest_key]
            self.stats.record("evictions")

    def _evict_stale_if_needed(self) -> None:
        """Oldest-first eviction of the stale store (caller holds the
        lock); the stale budget is independent of the fresh budget."""
        while (
            sum(e.size for e in self._stale.values()) > self.stale_max_bytes
            and self._stale
        ):
            oldest_key = min(
                self._stale, key=lambda key: self._stale[key].stored_at
            )
            del self._stale[oldest_key]
            self.stats.record("stale_evictions")
