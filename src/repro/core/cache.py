"""The shared pre-render cache.

"Certain areas of a site may be defined as cachable across sessions,
amortizing the initial pre-rendering cost across many users. ... a cached
snapshot of the main page of a site can be set to expire after an hour."
(§3.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheEntry:
    key: str
    data: bytes
    content_type: str
    stored_at: float
    ttl_s: float
    hits: int = 0

    def fresh(self, now: float) -> bool:
        return now - self.stored_at < self.ttl_s

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PrerenderCache:
    """TTL cache for rendered snapshots and adapted fragments."""

    def __init__(self, clock=None, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.clock = clock
        self.max_bytes = max_bytes
        self._entries: dict[str, CacheEntry] = {}
        self.stats = CacheStats()

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if not entry.fresh(self._now):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        entry.hits += 1
        self.stats.hits += 1
        return entry

    def put(
        self,
        key: str,
        data: bytes | str,
        content_type: str = "application/octet-stream",
        ttl_s: float = 3600.0,
    ) -> CacheEntry:
        if isinstance(data, str):
            data = data.encode("utf-8")
        entry = CacheEntry(
            key=key,
            data=data,
            content_type=content_type,
            stored_at=self._now,
            ttl_s=ttl_s,
        )
        self._entries[key] = entry
        self.stats.stores += 1
        self._evict_if_needed()
        return entry

    def invalidate(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    @property
    def total_bytes(self) -> int:
        return sum(entry.size for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def _evict_if_needed(self) -> None:
        """Oldest-first eviction when over the byte budget."""
        while self.total_bytes > self.max_bytes and self._entries:
            oldest_key = min(
                self._entries, key=lambda key: self._entries[key].stored_at
            )
            del self._entries[oldest_key]
