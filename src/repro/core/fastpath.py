"""The fast path: a content-addressed cache of whole adapted responses.

The paper's throughput headroom (Figure 7: 224 → 29,038 req/min) comes
from how much per-request work the proxy can avoid.  After PR 1-3 the
renderer is pooled, cached, and breakered — but every request still pays
parse → attributes → serialize.  This module provides the primitives for
skipping all of it: once a page has been adapted, the complete response
bundle (entry HTML plus every session artifact the run wrote) is stored
in the shared pre-render cache, keyed by

``fastpath:<site>:<path>:<device class>:<spec fp>:<content fp>``

* **content fingerprint** — a digest of the *fetched origin source*, so
  the proxy revalidates against the origin on every request and a
  changed page misses naturally.  Per-session origin differences (login
  state rendered into the page) produce different digests, so sessions
  can never be served each other's personalized bundles.
* **device class** — phone/tablet/desktop/default from UA detection;
  device-targeted variants never collide.
* **spec fingerprint** — from the compiled transform plan; editing the
  spec (or redeploying under a new proxy base) invalidates everything.

A companion ``fastpath-latest`` pointer entry records the most recent
content key per (site, path, device, spec).  It is the stale-serve hook:
when the origin is down there is no source to fingerprint, and the
pointer lets the degradation ladder find the last good bundle without
knowing its content hash.

The ETag served to clients is derived from the same three components,
which makes If-None-Match revalidation exact: a 304 means the origin
bytes, the device class, and the spec are all unchanged.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache import PrerenderCache

#: Bump when the bundle layout changes; old entries miss instead of
#: deserializing wrongly.
BUNDLE_VERSION = 1

_BUNDLE_CONTENT_TYPE = "application/x-msite-fastpath+json"

#: Whitespace runs between two tags that contain at least one newline —
#: template indentation, in other words.  Runs *without* a newline are
#: left alone: a single space between two inline tags can be
#: significant, but a line break plus indentation never is.
_INTER_TAG_WS = re.compile(r"(?<=>)[ \t\r\f\v]*\n[ \t\r\f\v\n]*(?=<)")


def normalize_origin(source: str) -> str:
    """Collapse insignificant inter-tag whitespace in origin HTML.

    Origin templates churn cosmetically — a reindented block, a
    trailing newline — without the rendered content changing.  Each
    inter-tag whitespace run containing a newline collapses to a single
    ``"\\n"`` so those renders share one :func:`content_fingerprint`
    and keep hitting the same fastpath bundle.  Applied to the fetched
    source *before* fingerprinting and adaptation, so the bundle's
    entry HTML matches what a full run over the normalized source
    produces.
    """
    return _INTER_TAG_WS.sub("\n", source)


def content_fingerprint(source: str) -> str:
    """Digest of the fetched origin source (pre-adaptation)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def fastpath_key(
    site: str,
    page_path: str,
    device_class: str,
    spec_fingerprint: str,
    content_fp: str,
) -> str:
    return (
        f"fastpath:{site}:{page_path}:{device_class}"
        f":{spec_fingerprint}:{content_fp}"
    )


def latest_key(
    site: str,
    page_path: str,
    device_class: str,
    spec_fingerprint: str,
) -> str:
    """Key of the pointer to the newest stored bundle's content key."""
    return (
        f"fastpath-latest:{site}:{page_path}:{device_class}"
        f":{spec_fingerprint}"
    )


def make_etag(
    spec_fingerprint: str, device_class: str, content_fp: str
) -> str:
    """A strong validator covering spec, device class, and content."""
    return f'"{spec_fingerprint}.{device_class}.{content_fp}"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 7232 If-None-Match: ``*`` or a comma-separated ETag list."""
    header = if_none_match.strip()
    if header == "*":
        return True
    return any(
        candidate.strip() == etag for candidate in header.split(",")
    )


@dataclass
class BundleFile:
    """One artifact the adaptation run wrote under the page directory."""

    relpath: str
    content_type: str
    data: bytes
    #: Lazily cached base64 form.  Bundles share ``BundleFile`` objects
    #: across delta re-stores, so every unchanged artifact is encoded
    #: once per object instead of once per store.
    _b64: Optional[str] = field(default=None, repr=False, compare=False)

    def data_b64(self) -> str:
        if self._b64 is None:
            self._b64 = base64.b64encode(self.data).decode("ascii")
        return self._b64


@dataclass
class FastpathBundle:
    """Everything needed to replay one adapted response.

    ``files`` carries the exact artifact set the original run wrote
    (entry page, subpages, fragments, snapshot, images) so the replay
    restores the session directory for the ``?page=``/``?file=``
    handlers — no listing of the live directory, which could leak stale
    files from an earlier, different run.
    """

    etag: str
    entry_rel: str
    entry_html: str
    files: list[BundleFile] = field(default_factory=list)
    subpages: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    snapshot_bytes: int = 0
    used_browser: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": BUNDLE_VERSION,
                "etag": self.etag,
                "entry_rel": self.entry_rel,
                "entry_html": self.entry_html,
                "files": [
                    {
                        "relpath": item.relpath,
                        "content_type": item.content_type,
                        "data": item.data_b64(),
                    }
                    for item in self.files
                ],
                "subpages": self.subpages,
                "notes": self.notes,
                "snapshot_bytes": self.snapshot_bytes,
                "used_browser": self.used_browser,
            }
        )

    @classmethod
    def from_json(cls, raw: str) -> Optional["FastpathBundle"]:
        try:
            payload = json.loads(raw)
        except (ValueError, TypeError):
            return None
        if payload.get("version") != BUNDLE_VERSION:
            return None
        return cls(
            etag=payload["etag"],
            entry_rel=payload["entry_rel"],
            entry_html=payload["entry_html"],
            files=[
                BundleFile(
                    relpath=item["relpath"],
                    content_type=item["content_type"],
                    data=base64.b64decode(item["data"]),
                    _b64=item["data"],
                )
                for item in payload.get("files", [])
            ],
            subpages=list(payload.get("subpages", [])),
            notes=list(payload.get("notes", [])),
            snapshot_bytes=int(payload.get("snapshot_bytes", 0)),
            used_browser=bool(payload.get("used_browser", False)),
        )


def store_bundle(
    cache: PrerenderCache,
    key: str,
    pointer_key: str,
    bundle: FastpathBundle,
    ttl_s: float,
) -> None:
    """Store the bundle and repoint ``fastpath-latest`` at it.

    One cache entry per bundle keeps freshness atomic: a bundle can
    never be half-expired the way a split manifest+payload pair could.
    """
    cache.put(
        key,
        bundle.to_json(),
        content_type=_BUNDLE_CONTENT_TYPE,
        ttl_s=ttl_s,
    )
    cache.put(
        pointer_key,
        key,
        content_type="text/plain",
        ttl_s=ttl_s,
    )


def load_bundle(
    cache: PrerenderCache, key: str
) -> Optional[FastpathBundle]:
    """A fresh bundle, or ``None`` (counted as a normal cache get)."""
    entry = cache.get(key)
    if entry is None:
        return None
    return FastpathBundle.from_json(entry.data.decode("utf-8"))


def load_stale_bundle(
    cache: PrerenderCache, pointer_key: str
) -> Optional[FastpathBundle]:
    """The last stored bundle, fresh *or* stale — the degradation rung.

    Two hops: the pointer names the newest content key, then the bundle
    itself is loaded through the cache's stale grace store.
    """
    pointer = cache.load_stale(pointer_key)
    if pointer is None:
        return None
    content_key = pointer.data.decode("utf-8")
    entry = cache.load_stale(content_key)
    if entry is None:
        return None
    return FastpathBundle.from_json(entry.data.decode("utf-8"))


_COUNTER_HELP = {
    "hits": "Fast-path bundle cache hits (full adaptation skipped).",
    "misses": "Fast-path lookups that fell through to a full run.",
    "stores": "Adapted-response bundles stored into the fast path.",
    "not_modified": "Entry requests answered 304 via If-None-Match.",
    "stream": "Adaptations emitted by the streaming serializer.",
    "dom": "Adaptations emitted through the full DOM round-trip.",
    "stream_fallback":
        "Streaming attempts that fell back to the DOM path.",
    "stale_serves": "Degraded requests served from a stale bundle.",
}


def fastpath_counter(registry, name: str):
    """The ``msite_fastpath_*`` counter family on one registry."""
    return registry.counter(
        f"msite_fastpath_{name}_total", _COUNTER_HELP[name]
    )
