"""Incremental re-adaptation: the warm cache-*miss* fast path.

The fast path (:mod:`repro.core.fastpath`) replays whole adapted
responses, but any origin content change busts the ``content-fp``
component of the bundle key and forces a full pipeline replay — parse,
every plan phase, serialize — even when consecutive origin renders
differ in a handful of subtrees.  This module turns that warm miss into
a near-hit:

1.  After a full run stores a bundle, :meth:`DeltaEngine.seed` captures
    a *memo* for the (site, path, device, spec) key: the post-filter
    source split into top-level **segments** (the ``<body>``'s direct
    children, each keyed by stable identity), the post-run residual
    document whose serialization produced the entry page, per-step
    selector footprints (which segments each compiled plan step may
    touch), and the stored bundle itself.

2.  On the next warm miss for the same key, :meth:`DeltaEngine.attempt`
    re-runs only the filter phase over the new origin source, re-scans
    its segments, and aligns them against the memo by identity.  Each
    changed segment is handled by the cheapest sound rung:

    * **identical** — the filtered sources are byte-equal (the change
      was filtered away): the old bundle is re-stored under the new
      content fingerprint, nothing is recomputed;
    * **patch** — no plan step's footprint intersects the segment: the
      residual's subtree is patched in place with a stable-identity
      change-set from :mod:`repro.dom.diff`;
    * **localize** — every implicated step is a *localizable* transform
      confined to this one segment: the steps re-run on the parsed new
      fragment in a scratch document and the result splices into the
      residual;
    * **fallback** — anything else (structural upheaval, a non-local
      step, a scanner bail) falls through to the full pipeline replay.

    The patched residual re-serializes into the entry page, the entry
    artifact is swapped inside a copy of the cached bundle, and the
    result is stored under the new ``content-fp`` — so subsequent
    requests for the same render are plain fast-path hits.

The hard invariant — enforced by the differential suites — is that a
delta-patched response is **byte-identical** to a from-scratch full
adaptation of the new origin.  Every shortcut in this module is either
verified at seed time (the segment scanner is cross-checked against the
real parser; the entry reconstruction is cross-checked against the run
that just happened) or guarded by a conservative bail that takes the
full-replay path instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Any, Optional

from repro.core import fastpath
from repro.dom import diff
from repro.dom.document import Document
from repro.dom.element import Element, RAW_TEXT_ELEMENTS, VOID_ELEMENTS
from repro.dom.node import Comment, Node, Text
from repro.html.parser import _IMPLIED_CLOSERS, parse_fragment, parse_html
from repro.html.serializer import serialize
from repro.html.tokenizer import _WHITESPACE, _consume_start_tag

#: DOM-phase attributes whose effect is a pure function of the matched
#: subtree — safe to re-run on an isolated fragment.  Everything else
#: (subpage minting, pagination, relocation…) forces a full replay when
#: its footprint intersects a changed segment.
LOCALIZABLE_STEPS = frozenset({"feed_window", "remove_object", "hide_object"})

#: Filter attributes that are *piecewise-safe*: pure all-matches
#: substitutions whose every match lies wholly inside one well-formed
#: element or tag, so filtering segment-by-segment concatenates to the
#: same bytes as filtering the whole page.  Attributes with insertion
#: or first-match semantics (``doctype_rewrite``, ``title_rewrite``,
#: counted ``source_replace``) are excluded — their output depends on
#: content elsewhere in the page.
PIECEWISE_FILTERS = frozenset(
    {"strip_scripts", "strip_css", "rewrite_images"}
)

#: DOM-phase attributes that may insert or move nodes at the top level
#: of the body — they would break the segment↔residual mapping, so a
#: plan containing one is never memoized.
_TOPLEVEL_REWRITERS = frozenset(
    {"insert_object", "relocate_object", "replace_object", "insert_js"}
)

#: A changed fraction above this is a rebuild, not an edit.
UPHEAVAL_FRACTION = 0.5


# ---------------------------------------------------------------------------
# segment scanning


@dataclass
class Segment:
    """One top-level body child, as a raw slice of the filtered source."""

    identity: tuple
    raw: str
    kind: str  # 'element' | 'text' | 'comment'
    tag: str = ""
    elem_id: Optional[str] = None
    assigned: Optional[str] = None
    classes: str = ""

    @property
    def facts(self) -> tuple:
        return (
            self.kind, self.raw, self.tag,
            self.elem_id, self.assigned, self.classes,
        )


@dataclass
class ScanResult:
    """A source split into prelude + body segments + tail."""

    prelude: str
    segments: list[Segment]
    tail: str


class _ScanBail(Exception):
    """The source is not strictly well-formed enough to segment."""


def scan_segments(source: str) -> Optional[ScanResult]:
    """Split a page into ``<body>`` prelude, segments, and tail.

    Returns ``None`` whenever the markup needs any of the parser's soup
    recovery (implied closers, stray end tags, head scaffolding inside
    the body…) — those cases re-adapt through the full pipeline.  The
    guarantee this strictness buys: every returned element segment
    parses identically via :func:`parse_fragment` and in page context,
    so fragments patched into the residual match a full re-parse.
    """
    lowered = source.lower()
    body_at = lowered.find("<body")
    if body_at == -1 or lowered[body_at + 5 : body_at + 6] not in (
        "",
        ">",
        *(_WHITESPACE),
    ):
        return None
    try:
        _, body_end = _consume_start_tag(source, body_at)
    except Exception:  # pragma: no cover - tokenizer never raises today
        return None
    close_at = lowered.rfind("</body")
    if close_at == -1 or close_at < body_end:
        return None
    try:
        facts = _scan_region(source, body_end, close_at)
    except _ScanBail:
        return None
    return ScanResult(
        prelude=source[:body_end],
        segments=_assign_identities(facts),
        tail=source[close_at:],
    )


def rescan_segments(source: str, baseline: ScanResult) -> Optional[ScanResult]:
    """:func:`scan_segments`, reusing a previous scan of a similar page.

    Unchanged segments are recognized by raw byte equality from both
    ends of the body region, so only the changed middle pays for a real
    depth-tracked scan — the delta path's cost then scales with the
    size of the change, not the page.  Falls back to a full scan (and
    its verdict) whenever the shortcut's preconditions wobble; the
    result is always exactly what :func:`scan_segments` would return.
    """
    prelude, tail = baseline.prelude, baseline.tail
    if not (source.startswith(prelude) and source.endswith(tail)):
        return scan_segments(source)
    start = len(prelude)
    end = len(source) - len(tail)
    if end < start:
        return scan_segments(source)
    old = baseline.segments
    front = 0
    cursor = start
    while front < len(old):
        raw = old[front].raw
        if cursor + len(raw) <= end and source.startswith(raw, cursor):
            cursor += len(raw)
            front += 1
        else:
            break
    back = 0
    back_cursor = end
    while back < len(old) - front:
        raw = old[len(old) - 1 - back].raw
        if back_cursor - len(raw) >= cursor and source.startswith(
            raw, back_cursor - len(raw)
        ):
            back_cursor -= len(raw)
            back += 1
        else:
            break
    try:
        middle = _scan_region(source, cursor, back_cursor)
    except _ScanBail:
        # The middle may only be malformed *relative to the splice
        # boundaries* (e.g. an element left open across them); the full
        # scan is the authority.
        return scan_segments(source)
    facts = (
        [seg.facts for seg in old[:front]]
        + middle
        + [seg.facts for seg in old[len(old) - back :]]
    )
    # Two adjacent text runs would have been one segment in a full
    # scan — the splice boundaries cut through a text run.  Re-scan.
    for before, after in zip(facts, facts[1:]):
        if before[0] == "text" and after[0] == "text":
            return scan_segments(source)
    return ScanResult(
        prelude=prelude,
        segments=_assign_identities(facts),
        tail=tail,
    )


_Facts = tuple  # (kind, raw, tag, elem_id, assigned, classes)


def _scan_region(source: str, start: int, end: int) -> list[_Facts]:
    """Depth-tracked scan of the body region into top-level fact tuples."""
    segments: list[_Facts] = []
    stack: list[str] = []
    pos = start
    seg_start = start

    def _flush_text(until: int) -> None:
        if until > seg_start:
            segments.append(
                ("text", source[seg_start:until], "", None, None, "")
            )

    while pos < end:
        lt = source.find("<", pos)
        if lt == -1 or lt >= end:
            if stack:
                raise _ScanBail("region ends with open elements")
            _flush_text(end)
            seg_start = end
            break
        next_char = source[lt + 1 : lt + 2]
        if next_char == "!":
            if not source.startswith("<!--", lt):
                raise _ScanBail("markup declaration inside body")
            gt = source.find("-->", lt + 4)
            if gt == -1 or gt + 3 > end:
                raise _ScanBail("unterminated comment")
            if not stack:
                _flush_text(lt)
                segments.append(
                    ("comment", source[lt : gt + 3], "", None, None, "")
                )
                seg_start = gt + 3
            pos = gt + 3
            continue
        if next_char == "/":
            gt = source.find(">", lt)
            if gt == -1 or gt >= end:
                raise _ScanBail("unterminated end tag")
            name = source[lt + 2 : gt].strip().lower()
            if not stack or stack[-1] != name:
                raise _ScanBail(f"end tag </{name}> does not close the top")
            stack.pop()
            pos = gt + 1
            if not stack:
                segments.append(
                    ("element", source[seg_start:pos], "", None, None, "")
                )
                seg_start = pos
            continue
        if not next_char.isalpha():
            raise _ScanBail("literal '<' or processing instruction")
        token, after = _consume_start_tag(source, lt)
        if after > end:
            raise _ScanBail("start tag crosses the body close")
        name = token.name
        if name in ("html", "head", "body"):
            raise _ScanBail(f"<{name}> inside body")
        closers = _IMPLIED_CLOSERS.get(name)
        if closers is not None and any(tag in closers for tag in stack):
            raise _ScanBail(f"<{name}> would imply-close an open element")
        if token.self_closing and name not in VOID_ELEMENTS:
            raise _ScanBail(f"self-closing <{name}/>")
        if not stack:
            _flush_text(lt)
            seg_start = lt
        attrs = token.attributes
        facts = (
            name,
            attrs.get("id"),
            attrs.get(diff.IDENTITY_ATTRIBUTE),
            attrs.get("class", ""),
        )
        if name in RAW_TEXT_ELEMENTS and not token.self_closing:
            after = _skip_raw_text(source, after, end, name)
            if not stack:
                segments.append(
                    ("element", source[seg_start:after], *facts)
                )
                seg_start = after
            pos = after
            continue
        if name in VOID_ELEMENTS or token.self_closing:
            if not stack:
                segments.append(
                    ("element", source[seg_start:after], *facts)
                )
                seg_start = after
            pos = after
            continue
        if not stack:
            # Record the root tag's identity facts now; the segment raw
            # completes when the stack empties again.
            segments.append(("open", "", *facts))
        stack.append(name)
        pos = after
    if stack:
        raise _ScanBail("body region ends with open elements")
    _flush_text(end)
    return _merge_opens(segments)


def _skip_raw_text(source: str, start: int, end: int, tag: str) -> int:
    """Position just past ``</tag>`` for a raw-text element."""
    lowered = source.lower()
    needle = f"</{tag}"
    pos = start
    while True:
        at = lowered.find(needle, pos)
        if at == -1 or at >= end:
            raise _ScanBail(f"unterminated <{tag}>")
        after = at + len(needle)
        if after < len(source) and source[after] not in _WHITESPACE + "/>":
            pos = after
            continue
        gt = source.find(">", after)
        if gt == -1 or gt >= end:
            raise _ScanBail(f"unterminated </{tag}>")
        return gt + 1


def _merge_opens(raw: list[_Facts]) -> list[_Facts]:
    """Fuse each ``open`` marker with the ``element`` that closed it."""
    merged: list[_Facts] = []
    pending: Optional[_Facts] = None
    for entry in raw:
        if entry[0] == "open":
            pending = entry
            continue
        if pending is not None:
            if entry[0] != "element":  # pragma: no cover - defensive
                raise _ScanBail("scanner state desync")
            merged.append(("element", entry[1], *pending[2:]))
            pending = None
            continue
        merged.append(entry)
    if pending is not None:  # pragma: no cover - defensive
        raise _ScanBail("scanner state desync")
    return merged


def _assign_identities(merged: list[_Facts]) -> list[Segment]:
    """Identity keys mirroring :func:`repro.dom.diff.child_keys`."""
    segments: list[Segment] = []
    ordinals: dict[tuple, int] = {}

    def _next(bucket: tuple) -> int:
        ordinal = ordinals.get(bucket, 0)
        ordinals[bucket] = ordinal + 1
        return ordinal

    for kind, raw, tag, elem_id, assigned, classes in merged:
        if kind == "element":
            if elem_id is not None:
                identity = ("e", tag, "#", elem_id)
            elif assigned is not None:
                identity = ("e", tag, "@", assigned)
            else:
                shape = (tag, classes)
                identity = ("e", *shape, _next(("e", *shape)))
        elif kind == "text":
            identity = ("t", _next(("t",)))
        else:
            identity = ("c", _next(("c",)))
        segments.append(
            Segment(
                identity=identity,
                raw=raw,
                kind=kind,
                tag=tag,
                elem_id=elem_id,
                assigned=assigned,
                classes=classes,
            )
        )
    return segments


# ---------------------------------------------------------------------------
# selector footprints


def compound_may_match(compound, element: Element) -> bool:
    """Context-free over-approximation of one compound selector.

    Evaluates only the locally-decidable simple selectors (tag, id,
    class, attribute tests); pseudo-classes are conservatively assumed
    to match.  Any full right-to-left selector match requires the
    rightmost compound to accept the subject element, so *may-match
    nowhere in a subtree* soundly implies *matches nowhere in it*.
    """
    if compound.tag is not None and element.tag != compound.tag:
        return False
    if compound.element_id is not None and element.id != compound.element_id:
        return False
    for class_name in compound.class_names:
        if not element.has_class(class_name):
            return False
    for test in compound.attribute_tests:
        if not test.matches(element):
            return False
    return True


def _rightmost_compounds(step) -> list:
    group = step.selector_group
    if group is None:
        return []
    return [alt.compounds[-1] for alt in group.alternatives]


def step_touches(step, nodes: list[Node]) -> bool:
    """May this plan step select anything inside these subtrees?"""
    compounds = _rightmost_compounds(step)
    if not compounds:
        return False
    for node in nodes:
        if not isinstance(node, Element):
            continue
        for element in (node, *node.descendant_elements()):
            for compound in compounds:
                if compound_may_match(compound, element):
                    return True
    return False


@dataclass
class SubtreeSummary:
    """Aggregate facts about a forest, for batched footprint tests.

    Loses the per-element conjunction (an element that is ``div`` and
    an element that is ``#feed`` satisfy a ``div#feed`` probe even if
    they are different elements), which only *widens* footprints —
    still sound, one walk instead of one per step.
    """

    tags: set
    ids: set
    classes: set

    @classmethod
    def of(cls, nodes: list[Node]) -> "SubtreeSummary":
        tags: set = set()
        ids: set = set()
        classes: set = set()
        for node in nodes:
            if not isinstance(node, Element):
                continue
            for element in (node, *node.descendant_elements()):
                tags.add(element.tag)
                elem_id = element.id
                if elem_id is not None:
                    ids.add(elem_id)
                class_attr = element.attributes.get("class")
                if class_attr:
                    classes.update(class_attr.split())
        return cls(tags=tags, ids=ids, classes=classes)

    def may_contain_match(self, compound) -> bool:
        if compound.tag is not None and compound.tag not in self.tags:
            return False
        if (
            compound.element_id is not None
            and compound.element_id not in self.ids
        ):
            return False
        for class_name in compound.class_names:
            if class_name not in self.classes:
                return False
        # Attribute and pseudo tests are conservatively assumed to pass.
        return True


def steps_touching(plan_steps, nodes: list[Node]) -> set[int]:
    """Indices of steps whose footprint may intersect these subtrees."""
    summary = SubtreeSummary.of(nodes)
    return {
        index
        for index, step in enumerate(plan_steps)
        if any(
            summary.may_contain_match(compound)
            for compound in _rightmost_compounds(step)
        )
    }


def _selector_is_localizable(step) -> bool:
    """No pseudo-classes, no sibling combinators — the match outcome
    cannot depend on anything outside the fragment's own subtree (its
    ancestors in a scratch document are ``html > body``, exactly as in
    the real page, because segments are top-level body children)."""
    group = step.selector_group
    if group is None:
        return False
    for alternative in group.alternatives:
        if any(c in ("+", "~") for c in alternative.combinators):
            return False
        for compound in alternative.compounds:
            if compound.pseudo_tests:
                return False
    return True


# ---------------------------------------------------------------------------
# the memo


@dataclass
class DeltaMemo:
    """Everything needed to re-adapt one page incrementally."""

    #: The full filtered source, kept only in *global-filter* mode
    #: (``raw_scan is None``) where it is the identical-rung baseline.
    filtered_source: Optional[str]
    scan: ScanResult
    #: Piecewise-filter mode: a scan of the *unfiltered* (normalized)
    #: origin source, plus each raw segment's filter output and that
    #: output's scanned facts.  A delta then rescans the cheap raw
    #: source and runs the filter phase only over segments whose raw
    #: bytes changed; seed time verified that the pieces concatenate to
    #: exactly the globally filtered page.  ``None`` when the plan's
    #: filter phase is not piecewise-safe.
    raw_scan: Optional[ScanResult]
    pieces: Optional[list]
    piece_facts: Optional[list]
    #: The post-run document whose serialization is the entry body; it
    #: is patched in place on every applied delta.
    residual: Document
    #: identity → residual top-level node (absent keys were detached
    #: into subpages or removed by the original run).
    residual_by_key: dict[tuple, Node]
    #: identity → indices (into plan.dom_steps) of steps whose selector
    #: footprint intersects that segment.
    seg_steps: dict[tuple, set[int]]
    menu: str
    ajax_injection: str
    #: Per-segment serialized HTML keyed by identity, with the shell
    #: around the body children, so a delta re-serializes only patched
    #: segments.  ``None`` when the seed-time concatenation check
    #: failed (the full-document serializer is the fallback).
    entry_parts: Optional[dict]
    shell_prefix: str
    shell_suffix: str
    bundle: fastpath.FastpathBundle
    entry_rel: str
    ttl_s: float
    #: Clock time past which the memo's frozen artifacts (subpage
    #: renders, images) are no longer fresh; delta attempts after this
    #: take the full pipeline, which re-validates every component.
    deadline: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)


_COUNTER_HELP = {
    "seeds": "Delta memos captured after full adaptation runs.",
    "seed_skips": "Full runs that were not delta-eligible.",
    "applied": "Warm misses served by patching the cached bundle.",
    "identical":
        "Warm misses where filtering erased the origin change entirely.",
    "fallbacks": "Delta attempts that fell back to a full replay.",
    "patched_segments": "Segments patched in place across all deltas.",
    "no_memo": "Warm misses with no memo to delta against.",
    "expired": "Delta memos dropped because their freshness lapsed.",
    "session_served": "Entry responses shipped as session patch manifests.",
    "session_fallback":
        "Session delta requests answered with the full body.",
}


def delta_counter(registry, name: str):
    """The ``msite_delta_*`` counter family on one registry."""
    return registry.counter(
        f"msite_delta_{name}_total", _COUNTER_HELP[name]
    )


class DeltaEngine:
    """Per-deployment incremental re-adaptation state and logic."""

    def __init__(self, registry) -> None:
        self._registry = registry
        self._memos: dict[tuple, DeltaMemo] = {}
        self._lock = threading.Lock()

    def _counter(self, name: str):
        return delta_counter(self._registry, name)

    def _memo_key(self, pipeline, device_class: str) -> tuple:
        return (
            pipeline.spec.site,
            pipeline.spec.page_path,
            device_class,
            pipeline.plan.fingerprint,
        )

    def forget(self, site: Optional[str] = None) -> None:
        """Drop memos (all, or one site's) after an invalidation."""
        with self._lock:
            if site is None:
                self._memos.clear()
            else:
                for key in [k for k in self._memos if k[0] == site]:
                    del self._memos[key]

    # ------------------------------------------------------------------
    # seeding

    def seed(
        self,
        pipeline,
        ctx,
        result,
        bundle: fastpath.FastpathBundle,
        ttl_s: float,
        device_class: str,
        raw_source: Optional[str] = None,
    ) -> bool:
        """Capture a memo from a just-completed full run.

        ``raw_source`` is the normalized origin source *before* the
        filter phase ran; when given (and the filter phase is
        piecewise-safe) the memo also captures per-segment filter
        output so deltas can filter only what changed.

        Returns ``False`` (and counts ``seed_skips``) whenever any
        precondition fails; the run itself is unaffected.
        """
        key = self._memo_key(pipeline, device_class)
        memo = self._build_memo(
            pipeline, ctx, result, bundle, ttl_s, raw_source
        )
        if memo is None:
            self._counter("seed_skips").inc()
            with self._lock:
                self._memos.pop(key, None)
            return False
        with self._lock:
            self._memos[key] = memo
        self._counter("seeds").inc()
        return True

    def _build_memo(
        self, pipeline, ctx, result, bundle, ttl_s, raw_source=None
    ) -> Optional[DeltaMemo]:
        if ctx.document is None or ctx.streamed_html is not None:
            return None
        if ctx.prerender_page or ctx.partial_prerender_targets:
            return None
        if ctx.media_thumbnails:
            return None
        if result.degraded is not None:
            return None
        steps = pipeline.plan.dom_steps
        for step in steps:
            if step.definition.name in _TOPLEVEL_REWRITERS:
                return None
            if step.selector_group is None:
                return None
        scan = scan_segments(ctx.source)
        if scan is None:
            return None
        # Cross-check the scanner against the real parser: the pristine
        # parse's body children must agree with the scanned segments in
        # count and identity.  This makes scanner correctness a
        # *verified* property of each memo, not an assumption.
        pristine = parse_html(ctx.source)
        body = pristine.body
        if body is None:
            return None
        pristine_children = list(body.children)
        pristine_keys = diff.child_keys(pristine_children)
        if pristine_keys != [seg.identity for seg in scan.segments]:
            return None
        # A step whose rightmost compound could select the scaffolding
        # (or anything in the head) has effects the segment model cannot
        # scope; skip the memo for such "global" plans.
        html_el = pristine.document_element
        head = pristine.head
        scaffold: list[Node] = [n for n in (html_el, head, body) if n is not None]
        for step in steps:
            for compound in _rightmost_compounds(step):
                for element in scaffold:
                    if compound_may_match(compound, element):
                        return None
                if head is not None and any(
                    compound_may_match(compound, el)
                    for el in head.descendant_elements()
                ):
                    return None
        # Per-segment step footprints over the pristine subtrees.
        seg_steps: dict[tuple, set[int]] = {}
        for segment, child in zip(scan.segments, pristine_children):
            touching = {
                index
                for index, step in enumerate(steps)
                if step_touches(step, [child])
            }
            if touching:
                seg_steps[segment.identity] = touching
        # Residual mapping: every top-level survivor of the run must be
        # one of the scanned segments (an ordered subsequence — steps
        # may only have removed or detached top-level children).
        residual_body = ctx.document.body
        if residual_body is None:
            return None
        residual_children = list(residual_body.children)
        residual_keys = diff.child_keys(residual_children)
        if not _is_subsequence(residual_keys, pristine_keys):
            return None
        residual_by_key = dict(zip(residual_keys, residual_children))
        # Reconstruct the entry exactly as _emit_entry does and verify
        # byte equality against the run that just happened — if the
        # reconstruction recipe cannot reproduce *this* run, it cannot
        # be trusted to reproduce a patched one.
        menu = _menu_html(ctx)
        ajax_injection = _ajax_injection_html(ctx)
        body_html = serialize(ctx.document)
        rebuilt = _rebuild_entry(body_html, menu, ajax_injection)
        if rebuilt != result.entry_html:
            return None
        # Per-segment serialization: valid only if the document's
        # serialization is exactly shell + concatenated children.
        entry_parts: Optional[dict] = {
            key: serialize(node)
            for key, node in zip(residual_keys, residual_children)
        }
        joined = "".join(entry_parts[key] for key in residual_keys)
        shell_prefix = shell_suffix = ""
        split = body_html.find(joined) if joined else -1
        if joined and split != -1 and body_html.count(joined) == 1:
            shell_prefix = body_html[:split]
            shell_suffix = body_html[split + len(joined) :]
        else:
            entry_parts = None
        entry_rel = pipeline._relpath(result.entry_path)
        if not any(item.relpath == entry_rel for item in bundle.files):
            return None
        filtered_source: Optional[str] = ctx.source
        raw_scan = pieces = piece_facts = None
        piecewise = self._piecewise_setup(
            pipeline, raw_source, ctx.source, scan
        )
        if piecewise is not None:
            raw_scan, pieces, piece_facts = piecewise
            filtered_source = None
        return DeltaMemo(
            filtered_source=filtered_source,
            scan=scan,
            raw_scan=raw_scan,
            pieces=pieces,
            piece_facts=piece_facts,
            residual=ctx.document,
            residual_by_key=residual_by_key,
            seg_steps=seg_steps,
            menu=menu,
            ajax_injection=ajax_injection,
            entry_parts=entry_parts,
            shell_prefix=shell_prefix,
            shell_suffix=shell_suffix,
            bundle=bundle,
            entry_rel=entry_rel,
            ttl_s=ttl_s,
            deadline=pipeline.services.now + ttl_s,
        )

    def _filter_piece(self, pipeline, piece: str) -> str:
        """The plan's filter phase over one source slice."""
        from repro.core.pipeline import PipelineContext

        ctx = PipelineContext(pipeline.spec, piece, pipeline.proxy_base)
        pipeline._apply_phase(ctx, "filter")
        return ctx.source

    def _piecewise_setup(
        self, pipeline, raw_source, filtered_source, filtered_scan
    ):
        """Per-segment filter state, or ``None`` if unverifiable.

        The scheme is admitted only when (a) every filter step is in
        :data:`PIECEWISE_FILTERS`, and (b) filtering this page's raw
        prelude, segments, and tail one by one concatenates to exactly
        the globally filtered source *and* splices to exactly its
        direct scan — a per-page proof that segment filtering commutes
        with concatenation here.
        """
        if raw_source is None:
            return None
        if any(
            step.definition.name not in PIECEWISE_FILTERS
            for step in pipeline.plan.filter_steps
        ):
            return None
        raw_scan = scan_segments(raw_source)
        if raw_scan is None:
            return None
        try:
            prelude = self._filter_piece(pipeline, raw_scan.prelude)
            tail = self._filter_piece(pipeline, raw_scan.tail)
            pieces = [
                self._filter_piece(pipeline, seg.raw)
                for seg in raw_scan.segments
            ]
        except Exception:
            return None
        if prelude != filtered_scan.prelude or tail != filtered_scan.tail:
            return None
        if prelude + "".join(pieces) + tail != filtered_source:
            return None
        piece_facts: list = []
        spliced: list = []
        for seg, piece in zip(raw_scan.segments, pieces):
            if piece == seg.raw:
                # The filter was an identity on this segment, so the raw
                # scan's facts are the filtered facts.
                facts = [seg.facts]
            else:
                try:
                    facts = _scan_region(piece, 0, len(piece))
                except _ScanBail:
                    return None
            piece_facts.append(facts)
            spliced.extend(facts)
        if spliced != [seg.facts for seg in filtered_scan.segments]:
            return None
        return raw_scan, pieces, piece_facts

    # ------------------------------------------------------------------
    # the delta attempt

    def attempt(
        self,
        pipeline,
        source: str,
        origin_bytes: int,
        device_class: str,
        etag: Optional[str],
        bundle_key: str,
        pointer_key: str,
    ):
        """Serve this warm miss by patching, or return ``None``.

        ``None`` sends the caller down the full pipeline (which will
        re-seed the memo for the next change).
        """
        key = self._memo_key(pipeline, device_class)
        with self._lock:
            memo = self._memos.get(key)
        if memo is None:
            self._counter("no_memo").inc()
            return None
        if pipeline.services.now >= memo.deadline:
            self._counter("expired").inc()
            with self._lock:
                if self._memos.get(key) is memo:
                    del self._memos[key]
            return None
        with memo.lock:
            outcome = self._attempt_locked(
                pipeline, memo, source, origin_bytes, etag,
                bundle_key, pointer_key,
            )
        if outcome is _DROP_MEMO:
            with self._lock:
                if self._memos.get(key) is memo:
                    del self._memos[key]
            return None
        return outcome

    def _attempt_locked(
        self, pipeline, memo, source, origin_bytes, etag,
        bundle_key, pointer_key,
    ):
        try:
            if memo.raw_scan is not None:
                scan, refresh = self._refilter_piecewise(
                    pipeline, memo, source
                )
            else:
                scan, refresh = self._refilter_global(
                    pipeline, memo, source
                )
        except _Fallback as bail:
            return self._fallback(bail.reason)
        if scan is None:
            # The origin change was entirely filtered away (a script
            # edit under strip_scripts, say): re-store the cached bundle
            # under the new content fingerprint, byte-for-byte.
            self._counter("identical").inc()
            new_bundle = _rebundle(memo.bundle, memo.bundle.entry_html, etag)
            self._store(pipeline, bundle_key, pointer_key, new_bundle, memo)
            memo.bundle = new_bundle
            refresh()
            return pipeline._replay_bundle(new_bundle, origin_bytes, etag)
        plan_steps = pipeline.plan.dom_steps
        try:
            patches = self._classify(memo, scan, plan_steps, pipeline)
        except _Fallback as bail:
            return self._fallback(bail.reason)
        try:
            patched = self._apply(memo, scan, patches)
        except Exception:
            # The residual may be half-patched; the memo is unusable.
            self._counter("fallbacks").inc()
            return _DROP_MEMO
        entry_html = _rebuild_entry(
            self._render_body(memo), memo.menu, memo.ajax_injection
        )
        new_bundle = _rebundle(memo.bundle, entry_html, etag)
        self._store(pipeline, bundle_key, pointer_key, new_bundle, memo)
        # Refresh the memo in place: the residual already evolved, the
        # new scan becomes the baseline, and footprints update only for
        # the segments that changed.
        memo.scan = scan
        memo.bundle = new_bundle
        refresh()
        self._reindex(memo, patches)
        self._counter("applied").inc()
        self._counter("patched_segments").inc(len(patches))
        return pipeline._replay_bundle(new_bundle, origin_bytes, etag)

    def _refilter_global(self, pipeline, memo, source):
        """Filter the whole page and rescan; ``(None, …)`` if identical.

        Returns ``(scan, refresh)`` where ``refresh`` moves the memo's
        filter baseline forward once the delta has been applied, or a
        ``None`` scan when filtering erased the change entirely.
        """
        from repro.core.pipeline import PipelineContext

        ctx = PipelineContext(
            pipeline.spec, source, pipeline.proxy_base
        )
        pipeline._apply_phase(ctx, "filter")
        filtered = ctx.source
        if filtered == memo.filtered_source:
            return None, lambda: None
        scan = rescan_segments(filtered, memo.scan)
        if scan is None:
            raise _Fallback("scan")
        if scan.prelude != memo.scan.prelude or scan.tail != memo.scan.tail:
            raise _Fallback("structure")

        def refresh() -> None:
            memo.filtered_source = filtered

        return scan, refresh

    def _refilter_piecewise(self, pipeline, memo, source):
        """Rescan the raw source and filter only what changed.

        The whole-page filter run is the delta path's largest fixed
        cost; this replaces it with a raw rescan (which already scales
        with the change) plus a filter pass over just the changed
        segments, splicing memoized filter output for everything else.
        Seed time proved piecewise filtering byte-equal to the global
        pass for this page and plan (:meth:`_piecewise_setup`).
        """
        raw_scan = rescan_segments(source, memo.raw_scan)
        if raw_scan is None:
            raise _Fallback("scan")
        if (
            raw_scan.prelude != memo.raw_scan.prelude
            or raw_scan.tail != memo.raw_scan.tail
        ):
            raise _Fallback("structure")
        old = {
            seg.identity: (seg.raw, memo.pieces[i], memo.piece_facts[i])
            for i, seg in enumerate(memo.raw_scan.segments)
        }
        pieces: list = []
        piece_facts: list = []
        spliced: list = []
        for seg in raw_scan.segments:
            hit = old.get(seg.identity)
            if hit is not None and hit[0] == seg.raw:
                piece, facts = hit[1], hit[2]
            else:
                try:
                    piece = self._filter_piece(pipeline, seg.raw)
                    if piece == seg.raw:
                        facts = [seg.facts]
                    else:
                        facts = _scan_region(piece, 0, len(piece))
                except Exception:
                    raise _Fallback("scan")
            pieces.append(piece)
            piece_facts.append(facts)
            spliced.extend(facts)
        # Adjacent text runs would have merged in a direct scan of the
        # filtered page (e.g. a filtered-away segment between them);
        # the splice model cannot represent that.
        for before, after in zip(spliced, spliced[1:]):
            if before[0] == "text" and after[0] == "text":
                raise _Fallback("scan")

        def refresh() -> None:
            memo.raw_scan = raw_scan
            memo.pieces = pieces
            memo.piece_facts = piece_facts

        if pieces == memo.pieces:
            return None, refresh
        scan = ScanResult(
            prelude=memo.scan.prelude,
            segments=_assign_identities(spliced),
            tail=memo.scan.tail,
        )
        return scan, refresh

    def _render_body(self, memo) -> str:
        """The residual's body HTML, re-serializing changed parts only."""
        if memo.entry_parts is None:
            return serialize(memo.residual)
        inverse = {
            id(node): key for key, node in memo.residual_by_key.items()
        }
        parts: list[str] = []
        for child in memo.residual.body.children:
            key = inverse.get(id(child))
            part = (
                memo.entry_parts.get(key) if key is not None else None
            )
            if part is None:  # pragma: no cover - defensive
                return serialize(memo.residual)
            parts.append(part)
        return memo.shell_prefix + "".join(parts) + memo.shell_suffix

    def _fallback(self, reason: str):
        self._counter("fallbacks").inc()
        counter = self._registry.counter(
            f"msite_delta_fallback_{reason}_total",
            f"Delta fallbacks to full replay: {reason}.",
        )
        counter.inc()
        return None

    def _store(self, pipeline, bundle_key, pointer_key, bundle, memo):
        # The re-stored bundle still embeds the memo's frozen artifacts,
        # so it may only live out their *remaining* freshness.
        remaining = memo.deadline - pipeline.services.now
        fastpath.store_bundle(
            pipeline.services.cache,
            bundle_key,
            pointer_key,
            bundle,
            ttl_s=max(remaining, 0.0),
        )

    # -- classification (no mutation) ----------------------------------

    def _classify(self, memo, scan, plan_steps, pipeline) -> list["_Patch"]:
        old_keys = [seg.identity for seg in memo.scan.segments]
        new_keys = [seg.identity for seg in scan.segments]
        old_by_key = {seg.identity: seg for seg in memo.scan.segments}
        new_by_key = {seg.identity: seg for seg in scan.segments}
        matcher = SequenceMatcher(a=old_keys, b=new_keys, autojunk=False)
        changed: list[tuple[str, tuple]] = []
        for op, i1, i2, j1, j2 in matcher.get_opcodes():
            if op == "equal":
                for offset in range(i2 - i1):
                    identity = old_keys[i1 + offset]
                    if (
                        old_by_key[identity].raw
                        != new_by_key[identity].raw
                    ):
                        changed.append(("mutate", identity))
            else:
                # Identity lists pair only on equality; a replace block
                # is removals plus insertions.
                for index in range(i1, i2):
                    changed.append(("remove", old_keys[index]))
                for index in range(j1, j2):
                    changed.append(("insert", new_keys[index]))
        total = max(len(old_keys), len(new_keys), 1)
        if len(changed) / total > UPHEAVAL_FRACTION:
            raise _Fallback("upheaval")
        patches: list[_Patch] = []
        for action, identity in changed:
            patches.append(
                self._classify_one(
                    action, identity, memo, old_by_key, new_by_key,
                    plan_steps, pipeline,
                )
            )
        # Inserts need an anchor: the first *following* new segment that
        # already has a residual node.
        for patch in patches:
            if patch.action == "insert":
                patch.anchor = self._anchor_for(
                    patch.identity, scan.segments, memo, patches
                )
        return patches

    def _classify_one(
        self, action, identity, memo, old_by_key, new_by_key,
        plan_steps, pipeline,
    ) -> "_Patch":
        implicated: set[int] = set(memo.seg_steps.get(identity, ()))
        new_nodes: list[Node] = []
        new_touching: set[int] = set()
        if action in ("mutate", "insert"):
            new_nodes = parse_fragment(new_by_key[identity].raw)
            if len(new_nodes) != 1:
                # One segment must parse to exactly one node, or the
                # residual map (and part cache) would lose track.
                raise _Fallback("fragment")
            new_touching = steps_touching(plan_steps, new_nodes)
            implicated |= new_touching
        if action == "remove":
            if implicated:
                raise _Fallback("steps")
            return _Patch(action, identity, steps=frozenset())
        if not implicated:
            return _Patch(
                action, identity, nodes=new_nodes,
                new_touching=frozenset(new_touching),
            )
        for index in implicated:
            step = plan_steps[index]
            if step.definition.name not in LOCALIZABLE_STEPS:
                raise _Fallback("steps")
            if not _selector_is_localizable(step):
                raise _Fallback("steps")
            footprint = {
                seg_id
                for seg_id, touching in memo.seg_steps.items()
                if index in touching
            }
            footprint.add(identity)
            if footprint != {identity}:
                raise _Fallback("steps")
        transformed = self._localize(
            pipeline, new_nodes, sorted(implicated), plan_steps
        )
        return _Patch(
            action, identity, nodes=transformed,
            steps=frozenset(implicated),
            new_touching=frozenset(new_touching),
        )

    def _localize(
        self, pipeline, nodes: list[Node], step_indices, plan_steps
    ) -> list[Node]:
        """Re-run the implicated steps over the fragment in isolation."""
        from repro.core.pipeline import PipelineContext

        scratch = Document()
        html_el = Element("html")
        body = Element("body")
        html_el.append(Element("head"))
        html_el.append(body)
        scratch.append(html_el)
        for node in nodes:
            body.append(node)
        ctx = PipelineContext(
            pipeline.spec, "", pipeline.proxy_base
        )
        ctx.document = scratch
        for index in step_indices:
            step = plan_steps[index]
            try:
                step.definition.applier(ctx, step.binding)
            except Exception as exc:
                raise _Fallback("localize") from exc
            finally:
                ctx.invalidate_index()
        survivors = list(body.children)
        if len(survivors) > 1:  # pragma: no cover - no such step today
            raise _Fallback("localize")
        return survivors

    def _anchor_for(self, identity, new_segments, memo, patches):
        seen = False
        removed = {
            patch.identity for patch in patches if patch.action == "remove"
        }
        for segment in new_segments:
            if segment.identity == identity:
                seen = True
                continue
            if not seen:
                continue
            node = memo.residual_by_key.get(segment.identity)
            if node is not None and segment.identity not in removed:
                return node
        return None

    # -- application (mutates the residual) ----------------------------

    def _apply(self, memo, scan, patches) -> int:
        count = 0
        for patch in patches:
            count += 1
            if patch.action == "remove":
                node = memo.residual_by_key.pop(patch.identity, None)
                if node is not None:
                    node.detach()
            elif patch.action == "mutate" and not patch.steps:
                node = memo.residual_by_key.get(patch.identity)
                if (
                    node is not None
                    and len(patch.nodes) == 1
                    and _patchable_pair(node, patch.nodes[0])
                ):
                    # Stable-identity diff against the untouched
                    # residual subtree: small edits stay small.
                    diff.apply(
                        node, diff.changeset(node, patch.nodes[0])
                    )
                else:
                    self._swap(memo, patch)
            else:
                self._swap(memo, patch)
            if memo.entry_parts is not None:
                survivor = memo.residual_by_key.get(patch.identity)
                if survivor is None:
                    memo.entry_parts.pop(patch.identity, None)
                else:
                    memo.entry_parts[patch.identity] = serialize(survivor)
        return count

    def _swap(self, memo, patch) -> None:
        """Replace (or insert) a segment's residual nodes outright."""
        old_node = memo.residual_by_key.pop(patch.identity, None)
        nodes = patch.nodes
        if old_node is not None:
            anchor_parent = old_node.parent
            for node in nodes:
                old_node.insert_before(node)
            old_node.detach()
        else:
            body = memo.residual.body
            anchor = patch.anchor
            for node in nodes:
                if anchor is not None:
                    anchor.insert_before(node)
                else:
                    body.append(node)
        if len(nodes) == 1:
            memo.residual_by_key[patch.identity] = nodes[0]
        # A localized step may legitimately empty the segment (e.g. a
        # remove_object matching the root): the key simply stays absent.

    def _reindex(self, memo, patches) -> None:
        """Refresh footprints for changed keys (pristine-new subtrees)."""
        for patch in patches:
            memo.seg_steps.pop(patch.identity, None)
            if patch.action != "remove" and patch.new_touching:
                memo.seg_steps[patch.identity] = set(patch.new_touching)


_DROP_MEMO = object()


class _Fallback(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Patch:
    action: str  # 'mutate' | 'insert' | 'remove'
    identity: tuple
    nodes: list[Node] = field(default_factory=list)
    steps: frozenset = frozenset()
    #: Steps whose footprint intersects the *pristine* new fragment —
    #: the segment's footprint entry for subsequent deltas.
    new_touching: frozenset = frozenset()
    anchor: Optional[Node] = None


def _patchable_pair(old: Node, new: Node) -> bool:
    if isinstance(old, Element) and isinstance(new, Element):
        return old.tag == new.tag
    return type(old) is type(new) and isinstance(
        old, (Text, Comment, Element)
    )


def _is_subsequence(needle: list, haystack: list) -> bool:
    it = iter(haystack)
    return all(item in it for item in needle)


# ---------------------------------------------------------------------------
# entry reconstruction (mirrors AdaptationPipeline._emit_entry)


def _menu_html(ctx) -> str:
    menu_items = "".join(
        f'<li><a href="{ctx.page_url_for(d.subpage_id)}">'
        f"{d.title}</a></li>"
        for d in ctx.plan.top_level()
        if not d.ajax
    )
    return f'<ul id="msite-menu">{menu_items}</ul>' if menu_items else ""


def _ajax_injection_html(ctx) -> str:
    from repro.core.subpages import AJAX_LOADER_JS, ajax_container_html

    ajax_defs = [d for d in ctx.plan.top_level() if d.ajax]
    if not ajax_defs:
        return ""
    containers = "".join(
        ajax_container_html(d.subpage_id) for d in ajax_defs
    )
    return (
        containers
        + f'<script type="text/javascript">{AJAX_LOADER_JS}</script>'
    )


def _rebuild_entry(body_html: str, menu: str, ajax_injection: str) -> str:
    entry_html = (
        body_html.replace("<body>", f"<body>{menu}", 1)
        if "<body>" in body_html
        else menu + body_html
    )
    if ajax_injection:
        if "</body>" in entry_html:
            entry_html = entry_html.replace(
                "</body>", ajax_injection + "</body>", 1
            )
        else:
            entry_html = entry_html + ajax_injection
    return entry_html


def _rebundle(
    bundle: fastpath.FastpathBundle, entry_html: str, etag: Optional[str]
) -> fastpath.FastpathBundle:
    """A copy of the bundle with the entry artifact swapped in."""
    entry_bytes = entry_html.encode("utf-8")
    files = [
        fastpath.BundleFile(
            item.relpath, item.content_type, entry_bytes
        )
        if item.relpath == bundle.entry_rel
        else item
        for item in bundle.files
    ]
    notes = [
        note for note in bundle.notes if not note.startswith("delta:")
    ]
    notes.append("delta: entry patched incrementally")
    return fastpath.FastpathBundle(
        etag=etag or "",
        entry_rel=bundle.entry_rel,
        entry_html=entry_html,
        files=files,
        subpages=[dict(meta) for meta in bundle.subpages],
        notes=notes,
        snapshot_bytes=bundle.snapshot_bytes,
        used_browser=False,
    )
