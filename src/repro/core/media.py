"""Rich-media thumbnail snapshots.

The framework replaces Flash movies, video objects, and applets — which
a 2012 phone cannot run — with server-generated thumbnail images linking
to the original resource.  The thumbnail is produced through the same
raster/encode pipeline as everything else (a deterministic
continuous-tone frame stand-in, since a plugin runtime is out of scope),
so sizes and transfer times are measured honestly.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Text
from repro.render.box import Rect
from repro.render.image import RasterImage, encode_jpeg
from repro.render.raster import Canvas

RICH_MEDIA_TAGS = frozenset({"embed", "object", "video", "applet"})

# Flash movies embedded via <iframe> were common; only treat iframes
# pointing at known media as rich media.
_MEDIA_EXTENSIONS = (".swf", ".mp4", ".mov", ".avi", ".flv", ".wmv")


def is_rich_media(element: Element) -> bool:
    if element.tag in RICH_MEDIA_TAGS:
        return True
    if element.tag == "iframe":
        src = (element.get("src") or "").lower()
        return src.endswith(_MEDIA_EXTENSIONS)
    return False


def media_source(element: Element) -> str:
    """The resource the media element plays."""
    for attribute in ("src", "data", "movie", "code"):
        value = element.get(attribute)
        if value:
            return value
    # <object><param name="movie" value="..."></object>
    for child in element.descendant_elements():
        if child.tag == "param" and (child.get("name") or "").lower() in (
            "movie", "src",
        ):
            return child.get("value") or ""
    return ""


def _declared_size(element: Element) -> tuple[int, int]:
    def parse(value: Optional[str], default: int) -> int:
        if not value:
            return default
        try:
            return max(8, int(float(value.rstrip("px%"))))
        except ValueError:
            return default

    return (
        parse(element.get("width"), 320),
        parse(element.get("height"), 240),
    )


def render_thumbnail(
    source: str, width: int, height: int, quality: int = 45
) -> bytes:
    """A deterministic thumbnail frame for a media resource.

    A real deployment would grab a frame through the plugin; the
    substitution renders a seeded continuous-tone frame with a play
    badge, preserving byte-size behaviour.
    """
    canvas = Canvas(width, height)
    seed = zlib.crc32(source.encode("utf-8"))
    canvas.draw_photo_placeholder(Rect(0, 0, width, height), seed=seed)
    # Play-button badge so the user knows it links to media.
    badge = Rect(width / 2 - 12, height / 2 - 12, 24, 24)
    canvas.fill_rect(badge, (245, 245, 245))
    canvas.stroke_rect(badge, (40, 40, 40))
    encoded = encode_jpeg(RasterImage(canvas.pixels), quality=quality)
    return encoded.data


def replace_rich_media(
    document: Document,
    sink: dict[str, bytes],
    proxy_base: str = "proxy.php",
    targets: Optional[list[Element]] = None,
    max_width: int = 160,
    quality: int = 45,
) -> int:
    """Swap rich-media elements for linked thumbnails.

    Generated thumbnail bytes are placed in ``sink`` under their file
    name; the pipeline writes them to the session's image directory.
    Returns how many elements were replaced.
    """
    if targets is None:
        targets = [
            element
            for element in document.all_elements()
            if is_rich_media(element)
        ]
    else:
        targets = [element for element in targets if is_rich_media(element)]
    replaced = 0
    for index, element in enumerate(targets):
        source = media_source(element)
        width, height = _declared_size(element)
        if width > max_width:
            height = max(8, int(height * max_width / width))
            width = max_width
        name = f"media{index}.jpg"
        sink[name] = render_thumbnail(
            source or f"media-{index}", width, height, quality
        )
        link = Element("a", {"href": source or "#"})
        thumb = Element(
            "img",
            {
                "src": f"{proxy_base}?file={name}",
                "width": str(width),
                "height": str(height),
                "alt": f"media snapshot ({source or 'embedded object'})",
                "class": "msite-media-thumb",
            },
        )
        link.append(thumb)
        caption = Element("div", {"class": "smallfont"})
        caption.append(Text("View media"))
        link.append(caption)
        element.replace_with(link)
        replaced += 1
    return replaced
