"""The adaptation spec: what the visual tool produces.

The admin selects page objects and "assigns one or more attributes to page
objects from a rich collection of pre-defined page modifications" (§1).
A spec is the serializable record of those selections — the input to the
code generator and the proxy pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import Any, Optional

from repro.errors import CodegenError

SELECTOR_KINDS = ("css", "xpath", "regex", "dock")


@dataclass(frozen=True)
class ObjectSelector:
    """Identifies page objects: CSS3, XPath, source regex, or the
    non-visual dock (doctype, title, head, cookies)."""

    kind: str
    expression: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SELECTOR_KINDS:
            raise CodegenError(
                f"selector kind must be one of {SELECTOR_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.expression:
            raise CodegenError("selector expression cannot be empty")

    @classmethod
    def css(cls, expression: str, description: str = "") -> "ObjectSelector":
        return cls("css", expression, description)

    @classmethod
    def xpath(cls, expression: str, description: str = "") -> "ObjectSelector":
        return cls("xpath", expression, description)

    @classmethod
    def regex(cls, expression: str, description: str = "") -> "ObjectSelector":
        return cls("regex", expression, description)

    @classmethod
    def dock(cls, item: str) -> "ObjectSelector":
        """Non-visual dock objects: 'doctype', 'title', 'head', 'cookies'."""
        return cls("dock", item)


@dataclass
class AttributeBinding:
    """One attribute applied to one selection (or to the whole page)."""

    attribute: str
    selector: Optional[ObjectSelector] = None
    params: dict[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass
class AdaptationSpec:
    """A complete adaptation for one originating page."""

    site: str
    origin_host: str
    page_path: str = "/index.php"
    bindings: list[AttributeBinding] = field(default_factory=list)
    viewport_width: int = 1024
    snapshot_scale: float = 0.28
    snapshot_quality: int = 25
    snapshot_ttl_s: float = 3600.0
    mobile_title: str = ""

    # -- construction ---------------------------------------------------------

    def add(
        self,
        attribute: str,
        selector: Optional[ObjectSelector] = None,
        **params: Any,
    ) -> AttributeBinding:
        """Append a binding; returns it for further tweaking."""
        binding = AttributeBinding(
            attribute=attribute, selector=selector, params=params
        )
        self.bindings.append(binding)
        return binding

    def bindings_for(self, attribute: str) -> list[AttributeBinding]:
        return [b for b in self.bindings if b.attribute == attribute]

    def validate(self) -> None:
        """Raise :class:`CodegenError` on an inconsistent spec."""
        from repro.core.attributes import ATTRIBUTE_REGISTRY

        if not self.origin_host:
            raise CodegenError("spec needs an origin host")
        subpage_ids: set[str] = set()
        for binding in self.bindings:
            definition = ATTRIBUTE_REGISTRY.get(binding.attribute)
            if definition is None:
                raise CodegenError(
                    f"unknown attribute {binding.attribute!r}"
                )
            if definition.needs_selector and binding.selector is None:
                raise CodegenError(
                    f"attribute {binding.attribute!r} requires a selector"
                )
            if binding.attribute in ("subpage", "ajax_subpage", "paginate"):
                subpage_id = binding.param("subpage_id")
                if not subpage_id:
                    raise CodegenError("subpage bindings need a subpage_id")
                if subpage_id in subpage_ids:
                    raise CodegenError(
                        f"duplicate subpage_id {subpage_id!r}"
                    )
                subpage_ids.add(subpage_id)
            if binding.attribute == "paginate":
                # Page ids are minted at adaptation time as
                # ``{subpage_id}-p2..pK``; catch the collision here
                # instead of as a runtime AdaptationError.
                prefix = f"{binding.param('subpage_id')}-p"
                clashes = [
                    taken for taken in subpage_ids
                    if taken.startswith(prefix)
                    and taken[len(prefix):].isdigit()
                ]
                if clashes:
                    raise CodegenError(
                        f"paginate {binding.param('subpage_id')!r} would "
                        f"collide with subpage ids {clashes}"
                    )
        for binding in self.bindings:
            parent = binding.param("parent")
            if binding.attribute == "subpage" and parent:
                if parent not in subpage_ids:
                    raise CodegenError(
                        f"sub-subpage parent {parent!r} is not a subpage"
                    )
            if binding.attribute == "copy_dependency":
                target = binding.param("into")
                if target and target not in subpage_ids and target != "entry":
                    raise CodegenError(
                        f"copy_dependency target {target!r} is not a subpage"
                    )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "origin_host": self.origin_host,
            "page_path": self.page_path,
            "viewport_width": self.viewport_width,
            "snapshot_scale": self.snapshot_scale,
            "snapshot_quality": self.snapshot_quality,
            "snapshot_ttl_s": self.snapshot_ttl_s,
            "mobile_title": self.mobile_title,
            "bindings": [
                {
                    "attribute": binding.attribute,
                    "selector": (
                        asdict(binding.selector) if binding.selector else None
                    ),
                    "params": binding.params,
                }
                for binding in self.bindings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "AdaptationSpec":
        spec = cls(
            site=payload["site"],
            origin_host=payload["origin_host"],
            page_path=payload.get("page_path", "/index.php"),
            viewport_width=payload.get("viewport_width", 1024),
            snapshot_scale=payload.get("snapshot_scale", 0.28),
            snapshot_quality=payload.get("snapshot_quality", 25),
            snapshot_ttl_s=payload.get("snapshot_ttl_s", 3600.0),
            mobile_title=payload.get("mobile_title", ""),
        )
        for raw in payload.get("bindings", []):
            selector = None
            if raw.get("selector"):
                selector = ObjectSelector(**raw["selector"])
            spec.bindings.append(
                AttributeBinding(
                    attribute=raw["attribute"],
                    selector=selector,
                    params=dict(raw.get("params", {})),
                )
            )
        return spec

    @classmethod
    def from_json(cls, text: str) -> "AdaptationSpec":
        return cls.from_dict(json.loads(text))
