"""Mobile client detection.

§3.2: "Detection of a mobile device can be accomplished in a number of
ways, but common practice is to use a set of heuristics that are kept
up-to-date with new browsers and devices," after which the client "has
either been automatically redirected to the proxy, or has explicitly
chosen to use the proxy service."

This module provides the detectmobilebrowsers-style heuristics of the
era plus a redirect middleware an origin can wrap itself in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.net.messages import Request, Response
from repro.net.server import Application

# Substring heuristics, ordered roughly by 2012 market share.
_MOBILE_MARKERS = (
    "iphone", "ipod", "ipad", "android", "blackberry", "windows phone",
    "windows ce", "symbian", "symbos", "palm", "webos", "opera mini",
    "opera mobi", "iemobile", "fennec", "kindle", "silk", "nokia",
    "samsung", "htc_", "lg-", "sonyericsson", "midp", "cldc", "up.browser",
    "up.link", "docomo", "j2me", "avantgo", "bada", "maemo", "meego",
)

_MOBILE_RE = re.compile("|".join(re.escape(m) for m in _MOBILE_MARKERS))

# Tablets get the full site by default on many deployments; the paper's
# iPad case study adapts them explicitly instead.
_TABLET_MARKERS = ("ipad", "kindle", "silk", "tablet")


@dataclass(frozen=True)
class DetectionResult:
    """What the heuristics concluded about one request."""

    is_mobile: bool
    is_tablet: bool
    matched_marker: Optional[str] = None

    @property
    def wants_proxy(self) -> bool:
        """Phones get the proxy; tablets keep the full site by default."""
        return self.is_mobile and not self.is_tablet


def detect_user_agent(user_agent: str) -> DetectionResult:
    """Classify a User-Agent string with era heuristics."""
    lowered = (user_agent or "").lower()
    match = _MOBILE_RE.search(lowered)
    if match is None:
        return DetectionResult(is_mobile=False, is_tablet=False)
    is_tablet = any(marker in lowered for marker in _TABLET_MARKERS)
    return DetectionResult(
        is_mobile=True, is_tablet=is_tablet, matched_marker=match.group(0)
    )


def detect_request(request: Request) -> DetectionResult:
    return detect_user_agent(request.headers.get("User-Agent", "") or "")


def device_class(user_agent: Optional[str]) -> str:
    """Bucket a User-Agent into the fast-path / shard device classes.

    The same buckets key the adapted-response cache
    (:mod:`repro.core.fastpath`) and the cluster shard router, so a
    device's requests land on the worker that owns its cached variants.
    """
    if not user_agent:
        return "default"
    detection = detect_user_agent(user_agent)
    if detection.is_tablet:
        return "tablet"
    if detection.is_mobile:
        return "phone"
    return "desktop"


OPT_OUT_COOKIE = "msite_fullsite"


class MobileRedirector(Application):
    """Wraps an origin: phones are redirected to the proxy entry point.

    The user can opt out ("explicitly chosen" full site) via a
    ``?fullsite=1`` parameter, remembered in a cookie — the counterpart
    of the paper's explicit opt-in to the proxy service.
    """

    def __init__(
        self,
        origin: Application,
        proxy_url: str,
        redirect_paths: Optional[set[str]] = None,
    ) -> None:
        self.origin = origin
        self.proxy_url = proxy_url
        # "Note that not all pages require a proxy to be mobile-friendly."
        self.redirect_paths = redirect_paths  # None = every page
        self.redirects_issued = 0

    def handle(self, request: Request) -> Response:
        if request.params.get("fullsite"):
            response = self.origin.handle(request)
            response.set_cookie(OPT_OUT_COOKIE, "1", max_age=30 * 86400)
            return response
        if request.cookies.get(OPT_OUT_COOKIE):
            return self.origin.handle(request)
        if (
            self.redirect_paths is not None
            and request.url.path not in self.redirect_paths
        ):
            return self.origin.handle(request)
        if detect_request(request).wants_proxy:
            self.redirects_issued += 1
            return Response.redirect(self.proxy_url)
        return self.origin.handle(request)


# Well-known User-Agent strings of the paper's evaluation devices, for
# tests and examples.
KNOWN_USER_AGENTS = {
    "blackberry-tour": (
        "BlackBerry9630/4.7.1.40 Profile/MIDP-2.0 Configuration/CLDC-1.1 "
        "VendorID/105"
    ),
    "iphone-4": (
        "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_0 like Mac OS X; en-us) "
        "AppleWebKit/532.9 (KHTML, like Gecko) Version/4.0.5 Mobile/8A293 "
        "Safari/6531.22.7"
    ),
    "ipod-touch-3g": (
        "Mozilla/5.0 (iPod; U; CPU iPhone OS 3_1_3 like Mac OS X; en-us) "
        "AppleWebKit/528.18 (KHTML, like Gecko) Version/4.0 Mobile/7E18 "
        "Safari/528.16"
    ),
    "ipad-1": (
        "Mozilla/5.0 (iPad; U; CPU OS 3_2 like Mac OS X; en-us) "
        "AppleWebKit/531.21.10 (KHTML, like Gecko) Version/4.0.4 "
        "Mobile/7B334b Safari/531.21.10"
    ),
    "desktop": (
        "Mozilla/5.0 (Windows NT 6.0; WOW64) AppleWebKit/535.19 "
        "(KHTML, like Gecko) Chrome/18.0.1025.162 Safari/535.19"
    ),
}
