"""Object identification: resolve selectors against a page.

"The m.Site framework supports multiple object identification techniques,
including source-level rules and heuristics.  As in other systems, a
DOM-based approach is supported using XPath.  Similarly, objects can be
identified using new CSS 3 selector support" (§3.2).
"""

from __future__ import annotations

import re

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.selectors import select
from repro.dom.xpath import xpath
from repro.core.spec import ObjectSelector
from repro.errors import IdentificationError


def identify(
    document: Document, selector: ObjectSelector, index=None
) -> list[Element]:
    """All elements the selector matches, in document order.

    ``index`` is an optional :class:`repro.dom.index.QueryIndex` over
    ``document``; CSS selections then prune candidates through its
    tag/id/class buckets instead of scanning the whole tree.  Results
    are identical — the index verifies every candidate with the full
    matcher.
    """
    if selector.kind == "css":
        if index is not None and index.root is document:
            return index.select(selector.expression)
        return select(document, selector.expression)
    if selector.kind == "xpath":
        return xpath(document, selector.expression)
    if selector.kind == "regex":
        return _identify_by_source_pattern(document, selector.expression)
    if selector.kind == "dock":
        return _identify_dock(document, selector.expression)
    raise IdentificationError(f"unknown selector kind {selector.kind!r}")


def identify_one(
    document: Document, selector: ObjectSelector, index=None
) -> Element:
    """Exactly the first match; raises when nothing matches."""
    matches = identify(document, selector, index=index)
    if not matches:
        raise IdentificationError(
            f"selector {selector.kind}:{selector.expression!r} "
            f"matched nothing"
        )
    return matches[0]


def _identify_by_source_pattern(
    document: Document, pattern: str
) -> list[Element]:
    """Match elements whose serialized form matches a regex.

    Source-rule identification for pages without stable ids/classes; used
    sparingly because it serializes candidate subtrees.
    """
    from repro.html.serializer import serialize

    try:
        compiled = re.compile(pattern, re.IGNORECASE | re.DOTALL)
    except re.error as exc:
        raise IdentificationError(f"bad source pattern {pattern!r}: {exc}")
    matches = []
    for element in document.all_elements():
        if compiled.search(serialize(element)):
            matches.append(element)
    # Prefer the innermost matches: drop any element that has a matching
    # descendant (the outer match is just containment).
    inner: list[Element] = []
    match_ids = {id(el) for el in matches}
    for element in matches:
        if not any(
            id(desc) in match_ids for desc in element.descendant_elements()
        ):
            inner.append(element)
    return inner


def _identify_dock(document: Document, item: str) -> list[Element]:
    """Resolve non-visual dock selections to concrete elements."""
    item = item.lower()
    if item == "title":
        head = document.head
        if head is None:
            return []
        title = head.find(lambda el: el.tag == "title")
        return [title] if title is not None else []
    if item == "head":
        head = document.head
        return [head] if head is not None else []
    if item in ("scripts", "javascript"):
        return [
            el for el in document.all_elements() if el.tag == "script"
        ]
    if item in ("css", "stylesheets"):
        return [
            el
            for el in document.all_elements()
            if el.tag == "style"
            or (
                el.tag == "link"
                and (el.get("rel") or "").lower() == "stylesheet"
            )
        ]
    if item in ("doctype", "cookies"):
        # Handled at the filter/session layer, not as elements.
        return []
    raise IdentificationError(f"unknown dock item {item!r}")
