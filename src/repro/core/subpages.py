"""Page splitting: subpages, sub-subpages, and dependency copying.

§3.3: "Any object, object group, or page can be split and set to render in
its own separate HTML file, thus creating a subpage. ... Subpages can also
be further split into more subpages.  When a subpage is split, it allows
for a hierarchical navigation."  Dependencies (CSS/Javascript living
anywhere in the master document, not just the head) can be copied into any
subpage — the paper's improvement over repeat-the-head-content systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dom.document import Document, new_document
from repro.dom.element import Element
from repro.dom.node import Node, Text
from repro.html.serializer import serialize


@dataclass
class SubpageDefinition:
    """One planned subpage, accumulated during the DOM phase."""

    subpage_id: str
    title: str
    elements: list[Element] = field(default_factory=list)
    dependencies: list[Element] = field(default_factory=list)
    mode: str = "move"  # 'move' or 'copy'
    parent: Optional[str] = None  # subpage_id of the parent (sub-subpage)
    prerender: bool = False
    ajax: bool = False
    engine: str = "html"  # output engine: html | text | pdf
    cacheable: bool = False  # share the pre-rendered image across sessions
    cache_ttl_s: float = 3600.0
    searchable: bool = False
    search_trigger_label: str = "Search this page"
    extras_top: list[str] = field(default_factory=list)  # raw HTML snippets
    extras_bottom: list[str] = field(default_factory=list)

    @property
    def file_name(self) -> str:
        return f"{self.subpage_id}.html"


@dataclass
class SubpagePlan:
    """All subpages for one adapted page, with hierarchy helpers."""

    subpages: dict[str, SubpageDefinition] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    def define(self, definition: SubpageDefinition) -> SubpageDefinition:
        if definition.subpage_id in self.subpages:
            raise ValueError(
                f"duplicate subpage id {definition.subpage_id!r}"
            )
        self.subpages[definition.subpage_id] = definition
        self.order.append(definition.subpage_id)
        return definition

    def get(self, subpage_id: str) -> Optional[SubpageDefinition]:
        return self.subpages.get(subpage_id)

    def children_of(self, subpage_id: str) -> list[SubpageDefinition]:
        return [
            self.subpages[sid]
            for sid in self.order
            if self.subpages[sid].parent == subpage_id
        ]

    def top_level(self) -> list[SubpageDefinition]:
        return [
            self.subpages[sid]
            for sid in self.order
            if self.subpages[sid].parent is None
        ]

    def __len__(self) -> int:
        return len(self.subpages)


def detach_for_subpage(definition: SubpageDefinition) -> list[Element]:
    """Take the subpage's elements out of (or copy from) the master page.

    Move keeps element identity (snapshot geometry captured earlier still
    applies); copy leaves the master document untouched.
    """
    taken: list[Element] = []
    for element in definition.elements:
        if definition.mode == "copy":
            taken.append(element.clone())
        else:
            element.detach()
            taken.append(element)
    return taken


def build_subpage_document(
    definition: SubpageDefinition,
    plan: SubpagePlan,
    page_url_for,
    taken: Optional[list[Element]] = None,
) -> Document:
    """Assemble the standalone HTML document for one subpage.

    ``page_url_for(subpage_id)`` maps ids to proxy URLs (the proxy knows
    its own routing scheme; this module does not).
    """
    document = new_document(title=definition.title)
    head = document.head
    body = document.body
    assert head is not None and body is not None

    # Dependencies land under the head tag (§4.3: "satisfied by inserting
    # the dependent scripts underneath the head tag in the subpage").
    for dependency in definition.dependencies:
        head.append(dependency.clone())

    nav = Element("div", {"id": "msite-breadcrumb", "class": "smallfont"})
    back_target = page_url_for(definition.parent) if definition.parent else (
        page_url_for(None)
    )
    back = Element("a", {"href": back_target})
    back.append(Text("← Back"))
    nav.append(back)
    body.append(nav)

    for raw in definition.extras_top:
        from repro.html.parser import parse_fragment

        for node in parse_fragment(raw):
            body.append(node)

    container = Element("div", {"id": f"msite-subpage-{definition.subpage_id}"})
    for element in taken if taken is not None else definition.elements:
        container.append(element)
    body.append(container)

    children = plan.children_of(definition.subpage_id)
    if children:
        menu = Element("ul", {"id": "msite-childmenu"})
        for child in children:
            item = Element("li")
            link = Element("a", {"href": page_url_for(child.subpage_id)})
            link.append(Text(child.title))
            item.append(link)
            menu.append(item)
        body.append(menu)

    for raw in definition.extras_bottom:
        from repro.html.parser import parse_fragment

        for node in parse_fragment(raw):
            body.append(node)

    return document


def serialize_subpage(document: Document) -> str:
    return serialize(document)


AJAX_LOADER_JS = """
function msiteLoad(subpage, target) {
  var container = document.getElementById(target);
  if (!container) { return false; }
  var request = new XMLHttpRequest();
  request.open('GET', subpage + '&fragment=1', true);
  request.onreadystatechange = function () {
    if (request.readyState === 4 && request.status === 200) {
      container.innerHTML = request.responseText;
      container.style.display = 'block';
    }
  };
  request.send(null);
  return false;
}
""".strip()


def ajax_container_html(subpage_id: str) -> str:
    """The hidden div an AJAX subpage loads into (§4.3: 'The container is
    hidden and empty by default')."""
    return (
        f'<div id="msite-ajax-{subpage_id}" '
        f'style="display: none"></div>'
    )


def fragment_html(
    definition: SubpageDefinition, taken: list[Element]
) -> str:
    """Serialized fragment for asynchronous loads (no html/head wrapper)."""
    parts = [serialize(element) for element in taken]
    return "".join(parts)
