"""The adaptation pipeline: fetch → filter → DOM → attributes → emit.

One run of the pipeline turns an originating page into the mobile bundle
for one session: a cached (or freshly rendered) snapshot entry page with
an image-map menu, the generated subpages (HTML or pre-rendered images),
AJAX fragments, and any partial-prerender artifacts — all written into the
proxy's file store under the user's session directory (§3.2, Figure 3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.browser.costs import BrowserCostModel, DEFAULT_COST_MODEL
from repro.core import fastpath
from repro.core.ajax import AjaxActionTable
from repro.core.cache import PrerenderCache
from repro.core.identify import identify, identify_one
from repro.core.plan import TransformPlan
from repro.core.prerender import (
    PartialPrerender,
    partial_css_prerender,
    produce_snapshot,
)
from repro.core.search import (
    build_word_index_from_document,
    search_script,
    search_trigger_html,
)
from repro.core.sessions import MobileSession
from repro.core.spec import AdaptationSpec
from repro.core.storage import VirtualFileSystem
from repro.core.subpages import (
    AJAX_LOADER_JS,
    SubpageDefinition,
    SubpagePlan,
    ajax_container_html,
    build_subpage_document,
    detach_for_subpage,
    fragment_html,
)
from repro.dom.document import Document
from repro.dom.index import QueryIndex
from repro.errors import (
    AdaptationError,
    CircuitOpenError,
    FetchError,
    PoolTimeoutError,
    RenderError,
    RenderFarmError,
    TransientFetchError,
)
from repro.html.parser import parse_html
from repro.html.serializer import serialize
from repro.html.stream import StreamUnsupported, stream_serialize
from repro.net.client import HttpClient
from repro.net.messages import Request
from repro.net.url import URL
from repro.observability import Observability
from repro.observability.tracing import span
from repro.renderfarm.job import (
    INTERACTIVE as FARM_INTERACTIVE,
    REFRESH as FARM_REFRESH,
    RenderKey,
)
from repro.render.box import Rect
from repro.render.imagemap import MapRegion, build_image_map
from repro.resilience.faults import (
    FaultPlan,
    FaultyBrowser,
    FaultyHttpClient,
    inject_render_fault,
)
from repro.resilience.policy import HTML_ONLY, SKIPPED, STALE, ResiliencePolicy


class AuthenticationRequired(FetchError):
    """The origin demanded HTTP auth and the session has no credentials."""


@dataclass
class ProxyServices:
    """Shared infrastructure one proxy deployment owns."""

    origins: dict[str, Any]
    storage: VirtualFileSystem = field(default_factory=VirtualFileSystem)
    cache: PrerenderCache = field(default_factory=PrerenderCache)
    clock: Any = None
    costs: BrowserCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    observability: Observability = field(default_factory=Observability)
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    faults: Optional[FaultPlan] = None
    #: When set (a :class:`repro.renderfarm.RenderFarm`), snapshot and
    #: cacheable-object renders are queued on the farm's priority lanes
    #: instead of blocking the request thread on the pool semaphore;
    #: farm backpressure degrades down the existing render ladder.
    renderfarm: Optional[Any] = None
    #: Whole-adapted-response cache (content-addressed; see
    #: :mod:`repro.core.fastpath`).  Off ⇒ every request adapts fully.
    fastpath_enabled: bool = True
    #: One-pass streaming emission for filter-only specs (falls back to
    #: the DOM round-trip automatically when unsupported).
    stream_enabled: bool = True
    #: Incremental re-adaptation of warm cache misses (see
    #: :mod:`repro.core.delta`).  Off ⇒ every content change replays the
    #: full pipeline.  Requires the fastpath.
    delta_enabled: bool = True
    #: A session patch manifest larger than this fraction of the full
    #: entry body is not worth shipping; serve the full body instead.
    session_delta_max_fraction: float = 0.5
    #: The deployment's :class:`repro.core.delta.DeltaEngine`
    #: (constructed on first use; ``None`` when delta is disabled).
    delta: Optional[Any] = None

    def __post_init__(self) -> None:
        # A default-constructed cache must share the deployment's clock,
        # or TTLs would never expire in simulated time.
        if self.cache.clock is None and self.clock is not None:
            self.cache.clock = self.clock
        # One registry per deployment: the cache's counters surface on
        # the same /metrics endpoint as the proxy's.
        self.cache.bind_metrics(self.observability.registry)
        self.resilience.bind(self.observability.registry, clock=self.clock)
        if self.faults is not None:
            self.faults.bind_metrics(self.observability.registry)
        if self.delta_enabled and self.fastpath_enabled and self.delta is None:
            from repro.core.delta import DeltaEngine

            self.delta = DeltaEngine(self.observability.registry)
        elif not (self.delta_enabled and self.fastpath_enabled):
            self.delta = None

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear) a fault plan on a live deployment."""
        self.faults = plan
        if plan is not None:
            plan.bind_metrics(self.observability.registry)

    def make_client(self, jar) -> HttpClient:
        if self.faults is not None:
            return FaultyHttpClient(
                self.faults, origins=self.origins, jar=jar, clock=self.clock
            )
        return HttpClient(origins=self.origins, jar=jar, clock=self.clock)

    def make_browser(self, jar, viewport_width: int):
        from repro.browser.webkit import ServerBrowser

        client = self.make_client(jar)
        browser = ServerBrowser(
            client, jar=jar, viewport_width=viewport_width, costs=self.costs
        )
        if self.faults is not None:
            return FaultyBrowser(browser, self.faults)
        return browser

    @property
    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0


class PipelineContext:
    """Mutable state threaded through the attribute appliers."""

    def __init__(
        self,
        spec: AdaptationSpec,
        source: str,
        proxy_base: str = "proxy.php",
    ) -> None:
        self.spec = spec
        self.source = source
        self.document: Optional[Document] = None
        self.plan = SubpagePlan()
        self.ajax_table = AjaxActionTable()
        self.fidelity: dict[str, Any] = {}
        self.partial_prerender_targets: list = []
        self.media_thumbnails: dict[str, bytes] = {}
        self.notes: list[str] = []
        self.proxy_base = proxy_base
        # page-level flags
        self.prerender_page = False
        self.prerender_params: dict[str, Any] = {}
        self.cache_snapshot = False
        self.cache_ttl_s = spec.snapshot_ttl_s
        self.http_auth_enabled = False
        self.http_auth_realm = "restricted"
        self.form_login: Optional[dict[str, Any]] = None
        #: Entry HTML produced by the one-pass streaming serializer;
        #: set instead of ``document`` for stream-eligible specs.
        self.streamed_html: Optional[str] = None
        self._index: Optional[QueryIndex] = None

    def note(self, message: str) -> None:
        self.notes.append(message)

    # -- object identification -----------------------------------------
    # Appliers route their selector lookups through the context so CSS
    # selections share one lazily-built per-document query index.  Every
    # applier may mutate the tree after querying it, so the pipeline
    # invalidates the index between steps (see _apply_phase).

    def _query_index(self) -> Optional[QueryIndex]:
        if self.document is None:
            return None
        if self._index is None or self._index.root is not self.document:
            self._index = QueryIndex(self.document)
        return self._index

    def invalidate_index(self) -> None:
        self._index = None

    def identify(self, selector) -> list:
        index = (
            self._query_index() if selector.kind == "css" else None
        )
        return identify(self.document, selector, index=index)

    def identify_one(self, selector):
        index = (
            self._query_index() if selector.kind == "css" else None
        )
        return identify_one(self.document, selector, index=index)

    def page_url_for(self, subpage_id: Optional[str]) -> str:
        if subpage_id is None:
            return self.proxy_base
        return f"{self.proxy_base}?page={subpage_id}"


@dataclass
class SubpageArtifact:
    """One emitted subpage."""

    subpage_id: str
    title: str
    path: str
    content_type: str
    bytes_written: int
    prerendered: bool
    ajax: bool


@dataclass
class AdaptedPage:
    """The result of one pipeline run."""

    entry_path: str
    entry_html: str
    subpages: list[SubpageArtifact]
    snapshot_bytes: int = 0
    snapshot_from_cache: bool = False
    used_browser: bool = False
    browser_core_seconds: float = 0.0
    lightweight_core_seconds: float = 0.0
    origin_bytes: int = 0
    notes: list[str] = field(default_factory=list)
    ajax_table: Optional[AjaxActionTable] = None
    #: ``None`` for a full-fidelity page, else the degradation mode that
    #: produced it (``"stale"`` / ``"html_only"`` — see repro.resilience).
    degraded: Optional[str] = None
    #: Strong validator for If-None-Match revalidation; ``None`` when
    #: the fast path is disabled or the page was served degraded.
    etag: Optional[str] = None
    #: True when this result was replayed from the fast-path cache
    #: without running the adaptation at all.
    fastpath_hit: bool = False

    @property
    def total_core_seconds(self) -> float:
        return self.browser_core_seconds + self.lightweight_core_seconds


class AdaptationPipeline:
    """Runs one spec against one session."""

    def __init__(
        self,
        spec: AdaptationSpec,
        services: ProxyServices,
        session: MobileSession,
        proxy_base: str = "proxy.php",
        namespace: str = "",
        plan: Optional[TransformPlan] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.services = services
        self.session = session
        self.proxy_base = proxy_base
        # The compiled plan is normally shared across requests by the
        # proxy; direct pipeline constructions compile their own.
        if plan is None or plan.spec is not spec:
            plan = TransformPlan.compile(
                spec, proxy_base=proxy_base, namespace=namespace
            )
        self.plan = plan
        # The origin URL never changes for a deployment — parse it once
        # instead of on every fetch/render.
        self._origin = URL.parse(
            f"http://{spec.origin_host}{spec.page_path}"
        )
        # Multi-page deployments give each page proxy its own namespace
        # inside the shared session directory so generated files never
        # collide across pages.
        suffix = f"/{namespace.strip('/')}" if namespace.strip("/") else ""
        self.page_dir = f"{session.directory}{suffix}"
        self.image_dir = f"{self.page_dir}/images"
        #: While a run is capturing for the fast path, every emitted
        #: artifact is mirrored here as (relpath, content_type, bytes).
        self._capture: Optional[list[tuple[str, str, bytes]]] = None
        #: The requesting device class, captured by :meth:`run` so the
        #: farm's render keys coalesce per (site, path, device, spec).
        self._device_class = "default"

    # ------------------------------------------------------------------

    def run(
        self, force_refresh: bool = False, device_class: str = "default"
    ) -> AdaptedPage:
        try:
            return self._run_full(force_refresh, device_class)
        except AuthenticationRequired:
            raise  # an auth challenge is a feature, not a failure
        except (FetchError, AdaptationError, CircuitOpenError) as exc:
            # Bottom rung of the entry-page ladder: the origin (or the
            # adaptation itself) is gone, but a stale fast-path bundle or
            # snapshot may still make the page navigable.  No stale copy
            # ⇒ re-raise, and the proxy maps the error to an honest
            # 502/503/504.
            return self._serve_stale_entry(exc, device_class)

    def _run_full(
        self, force_refresh: bool, device_class: str = "default"
    ) -> AdaptedPage:
        self._device_class = device_class
        # Spans are deliberately flat and sequential (never nested on
        # this path) so their durations sum to at most the request wall
        # time — each phase of the request is attributed exactly once.
        with span("detect"):
            source, origin_bytes = self._fetch_origin()
        # Cosmetic origin churn (template reindentation) must not bust
        # the content fingerprint; applied unconditionally so the
        # adapted output is identical whether or not the fast/delta
        # paths are enabled.
        source = fastpath.normalize_origin(source)

        services = self.services
        etag = bundle_key = pointer_key = None
        if services.fastpath_enabled:
            # The origin was fetched above regardless, so hashing the
            # source *is* the revalidation: a changed page changes the
            # content fingerprint and misses naturally.
            content_fp = fastpath.content_fingerprint(source)
            spec_fp = self.plan.fingerprint
            etag = fastpath.make_etag(spec_fp, device_class, content_fp)
            bundle_key = fastpath.fastpath_key(
                self.spec.site, self.spec.page_path, device_class,
                spec_fp, content_fp,
            )
            pointer_key = fastpath.latest_key(
                self.spec.site, self.spec.page_path, device_class, spec_fp
            )
            if not force_refresh:
                with span("fastpath"):
                    bundle = fastpath.load_bundle(
                        services.cache, bundle_key
                    )
                if bundle is not None:
                    self._fastpath_counter("hits").inc()
                    return self._replay_bundle(bundle, origin_bytes, etag)
                self._fastpath_counter("misses").inc()
                # A warm miss — the bundle scheme knows this page, only
                # the content changed.  Try patching the cached response
                # incrementally before paying for a full replay.
                if services.delta is not None:
                    with span("delta"):
                        delta_result = services.delta.attempt(
                            self, source, origin_bytes, device_class,
                            etag, bundle_key, pointer_key,
                        )
                    if delta_result is not None:
                        return delta_result

        ctx = PipelineContext(self.spec, source, self.proxy_base)
        self._capture = [] if services.fastpath_enabled else None
        try:
            result = self._adapt_and_emit(ctx, origin_bytes, force_refresh)
            result.etag = etag
            if services.fastpath_enabled and self._bundle_storable(ctx, result):
                # The bundle freezes every cached component it embeds,
                # so it must expire no later than the shortest one.
                ttl_s = ctx.cache_ttl_s
                for definition in ctx.plan.subpages.values():
                    if definition.cacheable:
                        ttl_s = min(ttl_s, definition.cache_ttl_s)
                with span("cache"):
                    stored_bundle = self._bundle_from(result, etag)
                    fastpath.store_bundle(
                        services.cache,
                        bundle_key,
                        pointer_key,
                        stored_bundle,
                        ttl_s=ttl_s,
                    )
                self._fastpath_counter("stores").inc()
                if services.delta is not None:
                    services.delta.seed(
                        self, ctx, result, stored_bundle, ttl_s,
                        device_class, raw_source=source,
                    )
        finally:
            self._capture = None
        return result

    def _adapt_and_emit(
        self, ctx: PipelineContext, origin_bytes: int, force_refresh: bool
    ) -> AdaptedPage:
        with span("filter"):
            self._apply_phase(ctx, "filter")
        use_stream = (
            self.services.stream_enabled and self.plan.stream_eligible
        )
        with span("adapt"):
            if use_stream:
                # Filter-only spec: the adapted output is the filtered
                # source normalized — one tokenizer pass, no tree.
                try:
                    ctx.streamed_html = stream_serialize(ctx.source)
                except StreamUnsupported as exc:
                    self._fastpath_counter("stream_fallback").inc()
                    ctx.note(f"stream fallback: {exc}")
            if ctx.streamed_html is None:
                ctx.document = parse_html(ctx.source)
                self._apply_phase(ctx, "dom")
                self._fastpath_counter("dom").inc()
            else:
                self._fastpath_counter("stream").inc()
            self._apply_phase(ctx, "page")

        result = AdaptedPage(
            entry_path=f"{self.page_dir}/index.html",
            entry_html="",
            subpages=[],
            origin_bytes=origin_bytes,
            ajax_table=ctx.ajax_table,
        )
        result.lightweight_core_seconds += (
            self.services.costs.lightweight_request_s
        )

        snapshot_bundle = None
        if ctx.prerender_page:
            snapshot_bundle = self._obtain_snapshot(ctx, result, force_refresh)

        self._emit_partial_prerenders(ctx, result)
        self._emit_media_thumbnails(ctx, result)
        taken_by_id = self._emit_subpages(ctx, result)
        self._emit_entry(ctx, result, snapshot_bundle, taken_by_id)
        result.notes = ctx.notes
        self.session.pages_served += 1
        return result

    # ------------------------------------------------------------------
    # fast path

    def _fastpath_counter(self, name: str):
        return fastpath.fastpath_counter(
            self.services.observability.registry, name
        )

    def _bundle_storable(
        self, ctx: PipelineContext, result: AdaptedPage
    ) -> bool:
        """Whether this run's output may be replayed for later requests.

        Degraded results are never stored (a replay would pin the
        degradation past the outage).  AJAX pages are skipped: their
        action handlers are registered by the run itself, so a replayed
        entry after a restart would serve links with no handlers.  And
        anything the spec said to render per request — an uncached page
        snapshot, a prerendered subpage without ``cacheable`` — keeps
        that semantic by keeping the whole response out of the bundle
        cache.
        """
        if result.degraded is not None:
            return False
        if len(ctx.ajax_table):
            return False
        if ctx.prerender_page and not ctx.cache_snapshot:
            return False
        return all(
            definition.cacheable
            for definition in ctx.plan.subpages.values()
            if definition.prerender
        )

    def _replay_bundle(
        self,
        bundle: fastpath.FastpathBundle,
        origin_bytes: int,
        etag: Optional[str],
    ) -> AdaptedPage:
        """Restore a cached bundle into this session's directory."""
        for item in bundle.files:
            self.services.storage.write(
                f"{self.page_dir}/{item.relpath}",
                item.data,
                content_type=item.content_type,
                now=self.services.now,
            )
        subpages = [
            SubpageArtifact(
                subpage_id=meta["subpage_id"],
                title=meta["title"],
                path=f"{self.page_dir}/{meta['relpath']}",
                content_type=meta["content_type"],
                bytes_written=meta["bytes_written"],
                prerendered=meta["prerendered"],
                ajax=meta["ajax"],
            )
            for meta in bundle.subpages
        ]
        result = AdaptedPage(
            entry_path=f"{self.page_dir}/{bundle.entry_rel}",
            entry_html=bundle.entry_html,
            subpages=subpages,
            snapshot_bytes=bundle.snapshot_bytes,
            snapshot_from_cache=bundle.snapshot_bytes > 0,
            used_browser=False,
            lightweight_core_seconds=(
                self.services.costs.lightweight_request_s
            ),
            origin_bytes=origin_bytes,
            notes=[
                *bundle.notes,
                "fastpath: adapted response replayed from cache",
            ],
            etag=etag,
            fastpath_hit=True,
        )
        self.session.pages_served += 1
        return result

    def _bundle_from(
        self, result: AdaptedPage, etag: Optional[str]
    ) -> fastpath.FastpathBundle:
        files = [
            fastpath.BundleFile(relpath, content_type, data)
            for relpath, content_type, data in self._capture or []
        ]
        subpages = [
            {
                "subpage_id": artifact.subpage_id,
                "title": artifact.title,
                "relpath": self._relpath(artifact.path),
                "content_type": artifact.content_type,
                "bytes_written": artifact.bytes_written,
                "prerendered": artifact.prerendered,
                "ajax": artifact.ajax,
            }
            for artifact in result.subpages
        ]
        return fastpath.FastpathBundle(
            etag=etag or "",
            entry_rel=self._relpath(result.entry_path),
            entry_html=result.entry_html,
            files=files,
            subpages=subpages,
            notes=list(result.notes),
            snapshot_bytes=result.snapshot_bytes,
            used_browser=result.used_browser,
        )

    def _relpath(self, path: str) -> str:
        prefix = f"{self.page_dir}/"
        return path[len(prefix):] if path.startswith(prefix) else path

    def _write(self, path: str, data, content_type: str) -> None:
        """Write an artifact, mirroring it into the fast-path capture."""
        self.services.storage.write(
            path, data, content_type=content_type, now=self.services.now
        )
        if self._capture is not None:
            payload = (
                data.encode("utf-8") if isinstance(data, str) else data
            )
            self._capture.append(
                (self._relpath(path), content_type, payload)
            )

    # ------------------------------------------------------------------
    # fetching

    def _origin_url(self) -> URL:
        return self._origin

    def _fetch_origin(self) -> tuple[str, int]:
        client = self.services.make_client(self.session.jar)
        url = self._origin_url()
        credentials = self.session.http_credentials.get(self.spec.origin_host)
        resilience = self.services.resilience

        def _attempt():
            request = Request.get(url)
            if credentials is not None:
                request.with_basic_auth(*credentials)
            response = client.request(request)
            if response.status == 401:
                # Returned (not raised) so an auth challenge is never
                # retried and never counts against the origin breaker.
                return response
            if not response.ok:
                raise FetchError(
                    f"origin returned {response.status} for {url}"
                )
            if b"\x00" in response.body:
                # A truncated/corrupt payload is as useless as a refused
                # connection — surface it as a retriable fetch failure.
                raise TransientFetchError(
                    f"origin returned a corrupt body for {url}"
                )
            return response

        response = resilience.retry.call(
            _attempt,
            breaker=resilience.origin_breaker(self.spec.origin_host),
            target=f"origin:{self.spec.origin_host}",
        )
        if response.status == 401:
            raise AuthenticationRequired(
                f"origin {self.spec.origin_host} requires HTTP authentication"
            )
        return response.text_body, len(response.body)

    # ------------------------------------------------------------------
    # attribute phases

    def _apply_phase(self, ctx: PipelineContext, phase: str) -> None:
        # The plan resolved registry lookups and phase grouping at
        # deployment time; request time just walks the step list.
        for step in self.plan.steps_for(phase):
            try:
                step.definition.applier(ctx, step.binding)
            except AdaptationError:
                raise
            except Exception as exc:
                raise AdaptationError(
                    f"attribute {step.binding.attribute!r} failed: {exc}"
                ) from exc
            finally:
                # Appliers select-then-mutate: whatever tree shape the
                # index memoized may be gone after the step.
                ctx.invalidate_index()

    # ------------------------------------------------------------------
    # snapshot (the heavyweight path + cache)

    def _snapshot_cache_key(self, ctx: PipelineContext) -> str:
        spec = self.spec
        return (
            f"snapshot:{spec.site}:{spec.page_path}:w{spec.viewport_width}"
            f":s{spec.snapshot_scale}:q{spec.snapshot_quality}"
        )

    def _cached_snapshot_bundle(
        self, key: str, record_stats: bool = True
    ) -> Optional[dict]:
        """Reassemble a manifest+image bundle from the cache, or ``None``.

        ``record_stats=False`` uses :meth:`PrerenderCache.peek` so
        single-flight double-checks don't skew hit/miss accounting.
        """
        cache = self.services.cache
        lookup = cache.get if record_stats else cache.peek
        entry = lookup(key)
        if entry is None:
            return None
        image_entry = lookup(key + ":image")
        if image_entry is None:
            return None
        bundle = json.loads(entry.data.decode("utf-8"))
        bundle["image_bytes"] = image_entry.data
        return bundle

    def _store_snapshot_bundle(
        self, key: str, bundle: dict, ttl_s: float
    ) -> None:
        manifest = {
            key_: value
            for key_, value in bundle.items()
            if key_ != "image_bytes"
        }
        self.services.cache.put(
            key,
            json.dumps(manifest),
            content_type="application/json",
            ttl_s=ttl_s,
        )
        self.services.cache.put(
            key + ":image",
            bundle["image_bytes"],
            content_type="image/jpeg",
            ttl_s=ttl_s,
        )

    def _obtain_snapshot(
        self, ctx: PipelineContext, result: AdaptedPage, force_refresh: bool
    ) -> Optional[dict]:
        """Cached/fresh snapshot, degrading down the render ladder.

        Render fails (crash, hang, open breaker, exhausted pool) ⇒ serve
        the stale snapshot if one survives in the cache's grace store ⇒
        otherwise return ``None``, which makes :meth:`_emit_entry` build
        the HTML-only menu entry page.
        """
        key = self._snapshot_cache_key(ctx)
        try:
            return self._obtain_snapshot_fresh(ctx, result, force_refresh, key)
        except (
            RenderError,
            FetchError,
            CircuitOpenError,
            PoolTimeoutError,
            RenderFarmError,
        ) as exc:
            resilience = self.services.resilience
            with span("degrade"):
                bundle = (
                    self._stale_snapshot_bundle(key)
                    if ctx.cache_snapshot
                    else None
                )
                if bundle is not None:
                    result.snapshot_from_cache = True
                    result.snapshot_bytes = len(bundle["image_bytes"])
                    result.degraded = result.degraded or STALE
                    resilience.record_degraded(STALE)
                    ctx.note(
                        f"degraded: stale snapshot served after render "
                        f"failure ({exc})"
                    )
                    return bundle
                result.degraded = result.degraded or HTML_ONLY
                resilience.record_degraded(HTML_ONLY)
                ctx.note(
                    f"degraded: html-only entry after render failure ({exc})"
                )
                return None

    def _stale_snapshot_bundle(self, key: str) -> Optional[dict]:
        """A fresh-or-stale manifest+image bundle, or ``None``."""
        cache = self.services.cache
        entry = cache.load_stale(key)
        image = cache.load_stale(key + ":image")
        if entry is None or image is None:
            return None
        bundle = json.loads(entry.data.decode("utf-8"))
        bundle["image_bytes"] = image.data
        return bundle

    def _serve_stale_entry(
        self, exc: BaseException, device_class: str = "default"
    ) -> AdaptedPage:
        """Entry page served from stale caches when the run failed.

        Top rung: the last fast-path bundle for this (page, device,
        spec), fresh or stale — it replays the complete artifact set,
        not just the snapshot entry.  Below it, the stale-snapshot rung
        from the resilience ladder.  Nothing stale ⇒ re-raise.
        """
        if self.services.fastpath_enabled:
            bundle = fastpath.load_stale_bundle(
                self.services.cache,
                fastpath.latest_key(
                    self.spec.site, self.spec.page_path, device_class,
                    self.plan.fingerprint,
                ),
            )
            if bundle is not None:
                with span("degrade"):
                    result = self._replay_bundle(bundle, 0, None)
                    result.degraded = STALE
                    result.snapshot_from_cache = True
                    result.notes.append(
                        f"degraded: stale fast-path bundle served; "
                        f"upstream failure: {exc}"
                    )
                self._fastpath_counter("stale_serves").inc()
                self.services.resilience.record_degraded(STALE)
                return result
        key = self._snapshot_cache_key(None)
        bundle = self._stale_snapshot_bundle(key)
        if bundle is None:
            raise exc
        with span("degrade"):
            result = AdaptedPage(
                entry_path=f"{self.page_dir}/index.html",
                entry_html="",
                subpages=[],
                snapshot_from_cache=True,
                snapshot_bytes=len(bundle["image_bytes"]),
                degraded=STALE,
            )
            title = self.spec.mobile_title or self.spec.site
            regions = [
                MapRegion(
                    rect=Rect(*raw),
                    href=f"{self.proxy_base}?page={subpage_id}",
                    alt=subpage_id,
                )
                for subpage_id, raw in sorted(bundle["regions"].items())
            ]
            image_map = build_image_map(
                regions,
                snapshot_src=f"{self.proxy_base}?file=snapshot.jpg",
                scale=bundle["scale"],
                width=bundle["width"],
                height=bundle["height"],
            )
            result.entry_html = (
                f"<!DOCTYPE html><html><head><title>{title}</title>"
                f'<meta name="viewport" content="width=device-width, '
                f'initial-scale=1" /></head><body>'
                f"{image_map}"
                f"</body></html>"
            )
            self.services.storage.write(
                f"{self.page_dir}/snapshot.jpg",
                bundle["image_bytes"],
                content_type="image/jpeg",
                now=self.services.now,
            )
            self.services.storage.write(
                result.entry_path,
                result.entry_html,
                content_type="text/html; charset=utf-8",
                now=self.services.now,
            )
        result.notes.append(
            f"degraded: stale entry page served; upstream failure: {exc}"
        )
        self.services.resilience.record_degraded(STALE)
        self.session.pages_served += 1
        return result

    def _obtain_snapshot_fresh(
        self,
        ctx: PipelineContext,
        result: AdaptedPage,
        force_refresh: bool,
        key: str,
    ) -> dict:
        farm = self.services.renderfarm
        if not ctx.cache_snapshot:
            return self._render_snapshot(ctx, result)
        if force_refresh:

            def _refresh_render() -> dict:
                fresh = self._render_snapshot(ctx, result)
                with span("cache"):
                    self._store_snapshot_bundle(key, fresh, ctx.cache_ttl_s)
                return fresh

            if farm is None:
                return _refresh_render()
            # A forced refresh of a warm artifact rides the middle lane:
            # it must not starve interactive cold misses.
            return farm.render(
                self._farm_key(), _refresh_render, lane=FARM_REFRESH
            )
        with span("cache"):
            bundle = self._cached_snapshot_bundle(key)
        if bundle is not None:
            result.snapshot_from_cache = True
            result.snapshot_bytes = len(bundle["image_bytes"])
            return bundle

        rendered_here = False

        def _render_and_store() -> dict:
            nonlocal rendered_here
            cached = self._cached_snapshot_bundle(key, record_stats=False)
            if cached is not None:
                return cached
            rendered_here = True
            fresh = self._render_snapshot(ctx, result)
            with span("cache"):
                self._store_snapshot_bundle(key, fresh, ctx.cache_ttl_s)
            return fresh

        if farm is not None:
            # The farm supersedes the per-pool single flight: jobs
            # sharing this (site, path, device, spec) key coalesce on
            # one queued render, and a full queue raises into the
            # degradation ladder instead of parking this thread.
            bundle = farm.render(
                self._farm_key(), _render_and_store, lane=FARM_INTERACTIVE
            )
        else:
            # Single flight: concurrent sessions cold-missing on this
            # page share one browser render instead of stampeding the
            # pool.
            bundle = self.services.cache.load_or_join(key, _render_and_store)
        if not rendered_here:
            result.snapshot_from_cache = True
            result.snapshot_bytes = len(bundle["image_bytes"])
        return bundle

    def _farm_key(self, suffix: str = "") -> RenderKey:
        """This deployment's coalescing identity for farm submissions."""
        path = self.spec.page_path + (f"#{suffix}" if suffix else "")
        return RenderKey(
            site=self.spec.site,
            path=path,
            device_class=self._device_class,
            spec_fp=self.plan.fingerprint,
        )

    def _render_snapshot(
        self, ctx: PipelineContext, result: AdaptedPage
    ) -> dict:
        """The full browser path: launch, load subresources, paint."""
        from repro.render.snapshot import collect_stylesheets, render_snapshot

        # The breaker check happens before a browser is even constructed:
        # an open renderer breaker must never consume a pool slot.
        with self.services.resilience.render_breaker.guard(
            failure_on=(RenderError, FetchError, PoolTimeoutError)
        ):
            browser = self.services.make_browser(
                self.session.jar, self.spec.viewport_width
            )
            with span("render"), browser:
                external_css = browser._fetch_stylesheets(
                    ctx.document, self._origin_url()
                )[0]
                snapshot = render_snapshot(
                    ctx.document,
                    viewport_width=self.spec.viewport_width,
                    external_css=external_css,
                )
        result.used_browser = True
        result.browser_core_seconds += self.services.costs.browser_request_s

        scale = float(
            ctx.prerender_params.get("scale", self.spec.snapshot_scale)
        )
        quality = int(
            ctx.prerender_params.get("quality", self.spec.snapshot_quality)
        )
        artifact = produce_snapshot(snapshot, scale=scale, quality=quality)
        regions = {}
        for definition in ctx.plan.top_level():
            rect = None
            for element in definition.elements:
                geometry = snapshot.geometry_of(element)
                if geometry is not None:
                    rect = geometry if rect is None else _union(rect, geometry)
            if rect is not None:
                regions[definition.subpage_id] = [
                    rect.x, rect.y, rect.width, rect.height,
                ]
        result.snapshot_bytes = artifact.encoded.size_bytes
        return {
            "scale": scale,
            "width": artifact.scaled_width,
            "height": artifact.scaled_height,
            "page_height": snapshot.page_height,
            "regions": regions,
            "image_bytes": artifact.encoded.data,
        }

    # ------------------------------------------------------------------
    # emission

    def _emit_partial_prerenders(
        self, ctx: PipelineContext, result: AdaptedPage
    ) -> None:
        for binding, element in ctx.partial_prerender_targets:
            try:
                inject_render_fault(self.services.faults)
                with span("render"):
                    artifact: PartialPrerender = partial_css_prerender(
                        ctx.document,
                        element,
                        viewport_width=self.spec.viewport_width,
                        quality=int(binding.param("quality", 55)),
                    )
            except (RenderError, CircuitOpenError) as exc:
                # Partial prerenders are an enhancement; a failed one is
                # dropped rather than failing the page.
                result.degraded = result.degraded or SKIPPED
                self.services.resilience.record_degraded(SKIPPED)
                ctx.note(
                    f"degraded: partial prerender skipped after render "
                    f"failure ({exc})"
                )
                continue
            result.used_browser = True
            result.browser_core_seconds += (
                self.services.costs.browser_request_s
            )
            name = binding.param("name", f"partial{id(element) & 0xFFFF}")
            base = f"{self.image_dir}/{name}"
            with span("serialize"):
                self._write(
                    f"{base}.jpg", artifact.background.data, "image/jpeg"
                )
                self._write(
                    f"{base}.json",
                    json.dumps(artifact.text_runs),
                    "application/json",
                )
            ctx.note(
                f"partial_css_prerender: {name} background "
                f"{len(artifact.background.data)} bytes, "
                f"{len(artifact.text_runs)} client text runs"
            )

    def _emit_media_thumbnails(
        self, ctx: PipelineContext, result: AdaptedPage
    ) -> None:
        if not ctx.media_thumbnails:
            return
        with span("serialize"):
            for name, data in ctx.media_thumbnails.items():
                self._write(f"{self.image_dir}/{name}", data, "image/jpeg")
        if ctx.media_thumbnails:
            total = sum(len(d) for d in ctx.media_thumbnails.values())
            ctx.note(
                f"media thumbnails: {len(ctx.media_thumbnails)} images, "
                f"{total} bytes"
            )

    def _emit_subpages(
        self, ctx: PipelineContext, result: AdaptedPage
    ) -> dict[str, list]:
        taken_by_id: dict[str, list] = {}
        for subpage_id in ctx.plan.order:
            definition = ctx.plan.subpages[subpage_id]
            taken = detach_for_subpage(definition)
            taken_by_id[subpage_id] = taken
        for subpage_id in ctx.plan.order:
            definition = ctx.plan.subpages[subpage_id]
            taken = taken_by_id[subpage_id]
            if definition.prerender:
                try:
                    artifact = self._emit_prerendered_subpage(
                        ctx, result, definition, taken
                    )
                except (
                    RenderError,
                    CircuitOpenError,
                    PoolTimeoutError,
                    RenderFarmError,
                ) as exc:
                    # Middle rung of the render ladder: an unrenderable
                    # subpage still ships, just as plain HTML.
                    with span("degrade"):
                        artifact = self._emit_html_subpage(
                            ctx, definition, taken
                        )
                    result.degraded = result.degraded or HTML_ONLY
                    self.services.resilience.record_degraded(HTML_ONLY)
                    ctx.note(
                        f"degraded: subpage {definition.subpage_id} emitted "
                        f"as HTML after render failure ({exc})"
                    )
            elif definition.ajax:
                artifact = self._emit_ajax_fragment(ctx, definition, taken)
            elif definition.engine != "html":
                artifact = self._emit_engine_subpage(ctx, definition, taken)
            else:
                artifact = self._emit_html_subpage(ctx, definition, taken)
            result.subpages.append(artifact)
        return taken_by_id

    def _emit_engine_subpage(
        self,
        ctx: PipelineContext,
        definition: SubpageDefinition,
        taken: list,
    ) -> SubpageArtifact:
        """Subpages rendered through an alternative output engine (§1:
        'HTML, static images, PDF, plain text ... at any point in the
        rendering process')."""
        from repro.render.engines import EngineRegistry

        with span("serialize"):
            document = build_subpage_document(
                definition, ctx.plan, ctx.page_url_for, taken
            )
            output = EngineRegistry().get(definition.engine).render(document)
            extensions = {"text": "txt", "pdf": "pdf"}
            extension = extensions.get(definition.engine, definition.engine)
            path = f"{self.page_dir}/{definition.subpage_id}.{extension}"
            self._write(path, output.data, output.content_type)
        return SubpageArtifact(
            subpage_id=definition.subpage_id,
            title=definition.title,
            path=path,
            content_type=output.content_type,
            bytes_written=len(output.data),
            prerendered=False,
            ajax=False,
        )

    def _emit_html_subpage(
        self,
        ctx: PipelineContext,
        definition: SubpageDefinition,
        taken: list,
    ) -> SubpageArtifact:
        document = build_subpage_document(
            definition, ctx.plan, ctx.page_url_for, taken
        )
        if definition.searchable:
            index = build_word_index_from_document(document)
            script = document.body
            if script is not None:
                from repro.dom.element import Element
                from repro.dom.node import Text

                block = Element("script", {"type": "text/javascript"})
                block.append(Text(search_script(index)))
                script.append(block)
                from repro.html.parser import parse_fragment

                for node in parse_fragment(
                    search_trigger_html(definition.search_trigger_label)
                ):
                    script.prepend(node)
        with span("serialize"):
            html = serialize(document)
            path = f"{self.page_dir}/{definition.file_name}"
            self._write(path, html, "text/html; charset=utf-8")
        return SubpageArtifact(
            subpage_id=definition.subpage_id,
            title=definition.title,
            path=path,
            content_type="text/html",
            bytes_written=len(html.encode("utf-8")),
            prerendered=False,
            ajax=False,
        )

    def _emit_prerendered_subpage(
        self,
        ctx: PipelineContext,
        result: AdaptedPage,
        definition: SubpageDefinition,
        taken: list,
    ) -> SubpageArtifact:
        """Subpage + prerender: a page of simple pre-rendered images."""
        from repro.core.search import build_word_index, shift_index
        from repro.render.image import RasterImage, encode_jpeg
        from repro.render.snapshot import render_snapshot

        quality = int(ctx.fidelity.get("quality", 55))
        cache_key = (
            f"objrender:{self.spec.site}:{self.spec.page_path}"
            f":{definition.subpage_id}:q{quality}"
            f":w{self.spec.viewport_width}"
        )
        def _cached_objrender(record_stats: bool = True) -> Optional[dict]:
            lookup = (
                self.services.cache.get
                if record_stats
                else self.services.cache.peek
            )
            manifest_entry = lookup(cache_key)
            image_entry = lookup(cache_key + ":image")
            if manifest_entry is None or image_entry is None:
                return None
            bundle = json.loads(manifest_entry.data.decode("utf-8"))
            bundle["image_bytes"] = image_entry.data
            return bundle

        def _render_objrender() -> dict:
            inject_render_fault(self.services.faults)
            document = build_subpage_document(
                definition, ctx.plan, ctx.page_url_for, taken
            )
            container = document.get_element_by_id(
                f"msite-subpage-{definition.subpage_id}"
            )
            snapshot = render_snapshot(
                document, viewport_width=self.spec.viewport_width
            )
            rect = snapshot.geometry_of(container)
            if rect is None or rect.width < 1 or rect.height < 1:
                encoded = encode_jpeg(
                    RasterImage.blank(1, 1), quality=quality
                )
                rect = None
            else:
                x, y, width, height = rect.rounded()
                width = max(
                    1, min(width, snapshot.image.width - max(0, x))
                )
                height = max(
                    1, min(height, snapshot.image.height - max(0, y))
                )
                encoded = encode_jpeg(
                    snapshot.image.cropped(
                        max(0, x), max(0, y), width, height
                    ),
                    quality=quality,
                )
            result.used_browser = True
            result.browser_core_seconds += (
                self.services.costs.browser_request_s
            )
            search_block = ""
            if definition.searchable and rect is not None:
                # §3.3: "the search attribute effectively allows
                # pre-rendered images to be searched" — index words at
                # their rendered locations, translated into the cropped
                # image's coordinates.
                box = snapshot.layout_root.find_box_for(container)
                if box is not None:
                    index = shift_index(
                        build_word_index(box),
                        dx=-int(rect.x),
                        dy=-int(rect.y),
                    )
                    search_block = (
                        f'<script type="text/javascript">'
                        f"{search_script(index)}</script>"
                        f"{search_trigger_html(definition.search_trigger_label)}"
                    )
            image_bytes = encoded.data
            image_width = encoded.width
            image_height = encoded.height
            if definition.cacheable:
                self.services.cache.put(
                    cache_key,
                    json.dumps(
                        {
                            "width": image_width,
                            "height": image_height,
                            "search_block": search_block,
                        }
                    ),
                    content_type="application/json",
                    ttl_s=definition.cache_ttl_s,
                )
                self.services.cache.put(
                    cache_key + ":image",
                    image_bytes,
                    content_type="image/jpeg",
                    ttl_s=definition.cache_ttl_s,
                )
            return {
                "image_bytes": image_bytes,
                "width": image_width,
                "height": image_height,
                "search_block": search_block,
            }

        if definition.cacheable:
            # §3.3 object caching: "Once a cacheable object is rendered,
            # it is placed into a pre-render cache on the server and can
            # be used by the attribute system as needed."  Cold misses
            # from concurrent sessions collapse into one render.
            with span("cache"):
                bundle = _cached_objrender()
            if bundle is None:

                def _load() -> dict:
                    double_check = _cached_objrender(record_stats=False)
                    if double_check is not None:
                        return double_check
                    with span("render"):
                        return _render_objrender()

                farm = self.services.renderfarm
                if farm is not None:
                    bundle = farm.render(
                        self._farm_key(suffix=definition.subpage_id),
                        _load,
                        lane=FARM_INTERACTIVE,
                    )
                else:
                    bundle = self.services.cache.load_or_join(
                        cache_key, _load
                    )
        else:
            with span("render"):
                bundle = _render_objrender()
        image_bytes = bundle["image_bytes"]
        image_width = bundle["width"]
        image_height = bundle["height"]
        search_block = bundle["search_block"]
        image_path = (
            f"{self.image_dir}/{definition.subpage_id}.jpg"
        )
        with span("serialize"):
            self._write(image_path, image_bytes, "image/jpeg")
        html = (
            f"<!DOCTYPE html><html><head><title>{definition.title}</title>"
            f"</head><body>"
            f'<div class="smallfont">'
            f'<a href="{ctx.page_url_for(definition.parent)}">← Back</a> '
            f"{search_block}"
            f"</div>"
            f'<img src="{self.proxy_base}?file='
            f"{definition.subpage_id}.jpg\" "
            f'width="{image_width}" height="{image_height}" '
            f'alt="{definition.title}" />'
            f"</body></html>"
        )
        path = f"{self.page_dir}/{definition.file_name}"
        with span("serialize"):
            self._write(path, html, "text/html; charset=utf-8")
        return SubpageArtifact(
            subpage_id=definition.subpage_id,
            title=definition.title,
            path=path,
            content_type="text/html",
            bytes_written=len(html.encode("utf-8")) + len(image_bytes),
            prerendered=True,
            ajax=False,
        )

    def _emit_ajax_fragment(
        self,
        ctx: PipelineContext,
        definition: SubpageDefinition,
        taken: list,
    ) -> SubpageArtifact:
        with span("serialize"):
            fragment = fragment_html(definition, taken)
            path = f"{self.page_dir}/{definition.subpage_id}.fragment.html"
            self._write(path, fragment, "text/html; charset=utf-8")
        return SubpageArtifact(
            subpage_id=definition.subpage_id,
            title=definition.title,
            path=path,
            content_type="text/html",
            bytes_written=len(fragment.encode("utf-8")),
            prerendered=False,
            ajax=True,
        )

    def _emit_entry(
        self,
        ctx: PipelineContext,
        result: AdaptedPage,
        snapshot_bundle: Optional[dict],
        taken_by_id: dict[str, list],
    ) -> None:
        title = self.spec.mobile_title or self.spec.site
        if snapshot_bundle is not None:
            entry_html = self._entry_from_snapshot(
                ctx, snapshot_bundle, title
            )
            image_path = f"{self.page_dir}/snapshot.jpg"
            with span("serialize"):
                self._write(
                    image_path,
                    snapshot_bundle["image_bytes"],
                    "image/jpeg",
                )
        else:
            # No prerender: the residual document (post-splitting) plus a
            # simple subpage menu is the entry page.
            menu_items = "".join(
                f'<li><a href="{ctx.page_url_for(d.subpage_id)}">'
                f"{d.title}</a></li>"
                for d in ctx.plan.top_level()
                if not d.ajax
            )
            menu = (
                f'<ul id="msite-menu">{menu_items}</ul>' if menu_items else ""
            )
            with span("serialize"):
                # Serialized exactly once (inside the span) and reused
                # below for both the stored file and entry_html.  The
                # stream path already produced the normalized HTML.
                if ctx.streamed_html is not None:
                    body_html = ctx.streamed_html
                elif ctx.document is not None:
                    body_html = serialize(ctx.document)
                else:
                    body_html = ctx.source
            entry_html = body_html.replace(
                "<body>", f"<body>{menu}", 1
            ) if "<body>" in body_html else menu + body_html
        entry_html = self._inject_ajax_support(ctx, entry_html)
        with span("serialize"):
            self._write(
                result.entry_path, entry_html, "text/html; charset=utf-8"
            )
        result.entry_html = entry_html

    def _entry_from_snapshot(
        self, ctx: PipelineContext, bundle: dict, title: str
    ) -> str:
        regions = []
        for definition in ctx.plan.top_level():
            raw = bundle["regions"].get(definition.subpage_id)
            if raw is None:
                continue
            rect = Rect(*raw)
            if definition.ajax:
                href = (
                    f"#\" onclick=\"return msiteLoad("
                    f"'{ctx.page_url_for(definition.subpage_id)}', "
                    f"'msite-ajax-{definition.subpage_id}');"
                )
            else:
                href = ctx.page_url_for(definition.subpage_id)
            regions.append(
                MapRegion(rect=rect, href=href, alt=definition.title)
            )
        image_map = build_image_map(
            regions,
            snapshot_src=f"{self.proxy_base}?file=snapshot.jpg",
            scale=bundle["scale"],
            width=bundle["width"],
            height=bundle["height"],
        )
        return (
            f"<!DOCTYPE html><html><head><title>{title}</title>"
            f'<meta name="viewport" content="width=device-width, '
            f'initial-scale=1" /></head><body>'
            f"{image_map}"
            f"</body></html>"
        )

    def _inject_ajax_support(
        self, ctx: PipelineContext, entry_html: str
    ) -> str:
        ajax_defs = [d for d in ctx.plan.top_level() if d.ajax]
        if not ajax_defs:
            return entry_html
        containers = "".join(
            ajax_container_html(d.subpage_id) for d in ajax_defs
        )
        script = (
            f'<script type="text/javascript">{AJAX_LOADER_JS}</script>'
        )
        injection = containers + script + "</body>"
        if "</body>" in entry_html:
            return entry_html.replace("</body>", injection, 1)
        return entry_html + containers + script


def _union(a: Rect, b: Rect) -> Rect:
    x1 = min(a.x, b.x)
    y1 = min(a.y, b.y)
    x2 = max(a.right, b.right)
    y2 = max(a.bottom, b.bottom)
    return Rect(x1, y1, x2 - x1, y2 - y1)
