"""The searchable attribute: word indexes over pre-rendered content.

§3.3: "At rendering time, a sorted word index is built on the server from
the textual content read from the web page.  The rendered location of each
word is stored in a Javascript array along with the word list, and the
ordered search index is then inserted into the subpage along with a
Javascript binary search function. ... the search attribute effectively
allows pre-rendered images to be searched."
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.dom.document import Document
from repro.render.box import LayoutBox

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


@dataclass
class WordIndex:
    """Sorted word list with rendered locations."""

    words: list[str] = field(default_factory=list)  # sorted, unique
    locations: list[list[tuple[int, int]]] = field(default_factory=list)

    def lookup(self, word: str) -> list[tuple[int, int]]:
        """Binary search, mirroring the emitted JavaScript exactly."""
        word = word.lower()
        low, high = 0, len(self.words) - 1
        while low <= high:
            mid = (low + high) // 2
            if self.words[mid] == word:
                return self.locations[mid]
            if self.words[mid] < word:
                low = mid + 1
            else:
                high = mid - 1
        return []

    @property
    def word_count(self) -> int:
        return len(self.words)


def build_word_index(layout_root: LayoutBox, scale: float = 1.0) -> WordIndex:
    """Index every rendered word with its (scaled) page coordinates."""
    positions: dict[str, list[tuple[int, int]]] = {}
    for box in layout_root.iter_boxes():
        for run in box.text_runs:
            cursor_x = run.rect.x
            # Approximate per-word x by distributing the run width.
            words = run.text.split()
            if not words:
                continue
            total_chars = sum(len(word) for word in words) + len(words) - 1
            per_char = run.rect.width / max(1, total_chars)
            for word in words:
                key = _normalize(word)
                if key:
                    positions.setdefault(key, []).append(
                        (
                            int(cursor_x * scale),
                            int(run.rect.y * scale),
                        )
                    )
                cursor_x += (len(word) + 1) * per_char
    sorted_words = sorted(positions)
    return WordIndex(
        words=sorted_words,
        locations=[positions[word] for word in sorted_words],
    )


def build_word_index_from_document(document: Document) -> WordIndex:
    """Index a document without geometry (positions default to row order).

    Used when the subpage ships as HTML rather than a pre-rendered image:
    the client can still jump to the nth occurrence.
    """
    positions: dict[str, list[tuple[int, int]]] = {}
    body = document.body
    if body is None:
        return WordIndex()
    for order, match in enumerate(_WORD_RE.finditer(body.text_content)):
        key = _normalize(match.group(0))
        if key:
            positions.setdefault(key, []).append((0, order))
    sorted_words = sorted(positions)
    return WordIndex(
        words=sorted_words,
        locations=[positions[word] for word in sorted_words],
    )


def shift_index(index: WordIndex, dx: int, dy: int) -> WordIndex:
    """Translate every location (e.g. page → cropped-object coordinates)."""
    return WordIndex(
        words=list(index.words),
        locations=[
            [(max(0, x + dx), max(0, y + dy)) for x, y in spots]
            for spots in index.locations
        ],
    )


def _normalize(word: str) -> str:
    cleaned = word.strip("'").lower()
    return cleaned if len(cleaned) >= 2 else ""


SEARCH_JS_TEMPLATE = """
var msiteWords = %(words)s;
var msiteLocations = %(locations)s;
function msiteSearch(term) {
  term = term.toLowerCase();
  var low = 0, high = msiteWords.length - 1;
  while (low <= high) {
    var mid = (low + high) >> 1;
    if (msiteWords[mid] === term) { return msiteLocations[mid]; }
    if (msiteWords[mid] < term) { low = mid + 1; } else { high = mid - 1; }
  }
  return [];
}
function msiteSearchPrompt() {
  var term = window.prompt('Search this page for:');
  if (!term) { return false; }
  var hits = msiteSearch(term);
  if (hits.length === 0) { window.alert('No matches.'); return false; }
  window.scrollTo(hits[0][0], hits[0][1]);
  return false;
}
""".strip()


def search_script(index: WordIndex) -> str:
    """The inline script block carrying the index and binary search."""
    return SEARCH_JS_TEMPLATE % {
        "words": json.dumps(index.words),
        "locations": json.dumps(index.locations),
    }


def search_trigger_html(label: str = "Search this page") -> str:
    """The administrator-defined element that invokes the search (§3.3:
    'the site administrator must define an HTML element (button or link)
    to make the initial Javascript call')."""
    return (
        f'<a href="#" id="msite-search-trigger" '
        f'onclick="return msiteSearchPrompt();">{label}</a>'
    )
