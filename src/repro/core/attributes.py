"""The attribute system: the registry of pre-defined page modifications.

"The power of the m.Site framework originates from the very rich attribute
system" (§3.3).  Each attribute has a *phase*:

* ``filter`` — applied to the raw source before any DOM parse,
* ``dom`` — applied to the parsed document,
* ``page`` — whole-page behaviours recorded as pipeline flags
  (pre-rendering, caching, HTTP-auth interposition).

Appliers receive the pipeline context (see
:class:`repro.core.pipeline.PipelineContext`) and their binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import filters
from repro.core.subpages import SubpageDefinition
from repro.dom.element import Element
from repro.dom.node import Text
from repro.errors import AdaptationError
from repro.html.parser import parse_fragment


@dataclass(frozen=True)
class AttributeDefinition:
    """One entry in the attribute menu the admin tool shows."""

    name: str
    phase: str  # 'filter' | 'dom' | 'page'
    needs_selector: bool
    description: str
    applier: Callable


ATTRIBUTE_REGISTRY: dict[str, AttributeDefinition] = {}


def register_attribute(
    name: str, phase: str, needs_selector: bool, description: str
):
    """Decorator adding an applier to the registry."""

    def decorator(fn: Callable) -> Callable:
        if phase not in ("filter", "dom", "page"):
            raise ValueError(f"bad phase {phase!r} for attribute {name!r}")
        ATTRIBUTE_REGISTRY[name] = AttributeDefinition(
            name=name,
            phase=phase,
            needs_selector=needs_selector,
            description=description,
            applier=fn,
        )
        return fn

    return decorator


# ---------------------------------------------------------------------------
# filter-phase attributes (source level)


@register_attribute(
    "doctype_rewrite", "filter", False,
    "Replace the document type declaration",
)
def _apply_doctype(ctx, binding) -> None:
    ctx.source = filters.set_doctype(
        ctx.source, binding.param("doctype", "html")
    )


@register_attribute(
    "title_rewrite", "filter", False, "Replace the page title"
)
def _apply_title(ctx, binding) -> None:
    title = binding.param("title") or ctx.spec.mobile_title or ctx.spec.site
    ctx.source = filters.set_title(ctx.source, title)


@register_attribute(
    "strip_scripts", "filter", False,
    "Blanket-remove script tags (and inline handlers) at the source level",
)
def _apply_strip_scripts(ctx, binding) -> None:
    ctx.source = filters.strip_scripts(
        ctx.source,
        strip_event_handlers=binding.param("strip_event_handlers", True),
    )


@register_attribute(
    "strip_css", "filter", False,
    "Blanket-remove style blocks and stylesheet links at the source level",
)
def _apply_strip_css(ctx, binding) -> None:
    ctx.source = filters.strip_css(ctx.source)


@register_attribute(
    "rewrite_images", "filter", False,
    "Rewrite all image references to the low-fidelity proxy image cache",
)
def _apply_rewrite_images(ctx, binding) -> None:
    quality = binding.param("quality", 40)

    def rewriter(src: str) -> str:
        if src.startswith(ctx.proxy_base):
            return src
        from repro.net.url import quote

        return f"{ctx.proxy_base}?img={quote(src, safe='')}&q={quality}"

    ctx.source, count = filters.rewrite_image_sources(ctx.source, rewriter)
    ctx.note(f"rewrite_images: {count} sources now served via proxy cache")


@register_attribute(
    "source_replace", "filter", True,
    "Regex search/replace over the raw page source",
)
def _apply_source_replace(ctx, binding) -> None:
    if binding.selector.kind != "regex":
        raise AdaptationError("source_replace needs a regex selector")
    ctx.source, hits = filters.source_replace(
        ctx.source,
        binding.selector.expression,
        binding.param("replacement", ""),
        count=binding.param("count", 0),
    )
    ctx.note(f"source_replace: {hits} occurrences replaced")


# ---------------------------------------------------------------------------
# DOM-phase attributes


@register_attribute(
    "subpage", "dom", True,
    "Split the selection into its own subpage (optionally pre-rendered, "
    "optionally a child of another subpage)",
)
def _apply_subpage(ctx, binding) -> None:
    elements = ctx.identify(binding.selector)
    if not elements:
        raise AdaptationError(
            f"subpage {binding.param('subpage_id')!r}: selector matched "
            f"nothing"
        )
    engine = binding.param("engine", "html")
    if engine not in ("html", "text", "pdf"):
        raise AdaptationError(
            f"subpage engine must be html, text, or pdf; got {engine!r} "
            f"(use prerender=True for image output)"
        )
    definition = SubpageDefinition(
        subpage_id=binding.param("subpage_id"),
        title=binding.param("title", binding.param("subpage_id")),
        elements=elements,
        mode=binding.param("mode", "move"),
        parent=binding.param("parent"),
        prerender=binding.param("prerender", False),
        ajax=False,
        engine=engine,
        cacheable=binding.param("cacheable", False),
        cache_ttl_s=float(binding.param("cache_ttl_s", 3600.0)),
        searchable=binding.param("searchable", False),
    )
    ctx.plan.define(definition)


@register_attribute(
    "ajax_subpage", "dom", True,
    "Split the selection into a subpage loaded asynchronously into a "
    "hidden div on the entry page",
)
def _apply_ajax_subpage(ctx, binding) -> None:
    elements = ctx.identify(binding.selector)
    if not elements:
        raise AdaptationError(
            f"ajax_subpage {binding.param('subpage_id')!r}: selector "
            f"matched nothing"
        )
    definition = SubpageDefinition(
        subpage_id=binding.param("subpage_id"),
        title=binding.param("title", binding.param("subpage_id")),
        elements=elements,
        mode=binding.param("mode", "move"),
        parent=None,
        prerender=False,
        ajax=True,
    )
    ctx.plan.define(definition)


@register_attribute(
    "copy_dependency", "dom", True,
    "Copy scripts/CSS/objects from anywhere in the page into a subpage "
    "(inserted under the subpage's head tag)",
)
def _apply_copy_dependency(ctx, binding) -> None:
    target_id = binding.param("into")
    definition = ctx.plan.get(target_id)
    if definition is None:
        raise AdaptationError(
            f"copy_dependency: subpage {target_id!r} is not defined yet "
            f"(order copy_dependency bindings after their subpage)"
        )
    elements = ctx.identify(binding.selector)
    if not elements:
        raise AdaptationError(
            f"copy_dependency into {target_id!r}: selector matched nothing"
        )
    definition.dependencies.extend(elements)


@register_attribute(
    "hide_object", "dom", True,
    "Hide the selection via CSS when it arrives on the client",
)
def _apply_hide(ctx, binding) -> None:
    for element in ctx.identify(binding.selector):
        _style_hide(element)


def _style_hide(element: Element) -> None:
    style = element.get("style") or ""
    if style and not style.rstrip().endswith(";"):
        style += "; "
    element.set("style", style + "display: none")


@register_attribute(
    "feed_window", "dom", True,
    "Trim an infinite-scroll feed to its first N items and link the "
    "remainder through the proxy's AJAX feed action",
)
def _apply_feed_window(ctx, binding) -> None:
    container = ctx.identify_one(binding.selector)
    items = max(1, int(binding.param("items", 10)))
    children = [
        child for child in list(container.children)
        if isinstance(child, Element)
    ]
    trimmed = 0
    for child in children[items:]:
        child.detach()
        trimmed += 1
    if trimmed:
        template = binding.param("more_template")
        if template:
            label = binding.param("more_label", "More")
            href = template.replace("{offset}", str(items))
            for node in parse_fragment(
                f'<p class="msite-feed-more">'
                f'<a href="{href}">{label}</a></p>'
            ):
                container.append(node)
    ctx.note(
        f"feed_window: kept {min(items, len(children))} items, "
        f"trimmed {trimmed}"
    )


@register_attribute(
    "paginate", "dom", True,
    "Split a long list into fixed-size pages: the first stays on the "
    "entry page, the rest become proxy-served subpages with next/prev "
    "navigation",
)
def _apply_paginate(ctx, binding) -> None:
    base_id = binding.param("subpage_id")
    if not base_id:
        raise AdaptationError("paginate needs a subpage_id")
    container = ctx.identify_one(binding.selector)
    per_page = max(1, int(binding.param("per_page", 10)))
    title = binding.param("title", base_id)
    children = [
        child for child in list(container.children)
        if isinstance(child, Element)
    ]
    if len(children) <= per_page:
        ctx.note(
            f"paginate {base_id!r}: {len(children)} items fit on one page"
        )
        return
    chunks = [
        children[start : start + per_page]
        for start in range(per_page, len(children), per_page)
    ]
    total = 1 + len(chunks)
    for number, chunk in enumerate(chunks, start=2):
        page_id = f"{base_id}-p{number}"
        wrapper = Element(
            "div",
            {"id": f"msite-{page_id}", "class": "msite-paginated"},
        )
        for child in chunk:
            child.detach()
            wrapper.append(child)
        links = [
            f'<a href="{ctx.page_url_for(None)}">Entry</a>'
            if number == 2
            else f'<a href="{ctx.page_url_for(f"{base_id}-p{number - 1}")}"'
            f">&larr; Page {number - 1}</a>"
        ]
        if number < total:
            links.append(
                f'<a href="{ctx.page_url_for(f"{base_id}-p{number + 1}")}"'
                f">Page {number + 1} &rarr;</a>"
            )
        for node in parse_fragment(
            f'<p class="msite-paginate-nav">{" | ".join(links)}</p>'
        ):
            wrapper.append(node)
        definition = SubpageDefinition(
            subpage_id=page_id,
            title=f"{title} (page {number} of {total})",
            elements=[wrapper],
            mode="move",
            cacheable=binding.param("cacheable", False),
            cache_ttl_s=float(binding.param("cache_ttl_s", 3600.0)),
        )
        ctx.plan.define(definition)
    for node in parse_fragment(
        f'<p class="msite-paginate-nav">'
        f'<a href="{ctx.page_url_for(base_id + "-p2")}">'
        f"More {title} &mdash; page 2 of {total}</a></p>"
    ):
        container.append(node)
    ctx.note(
        f"paginate {base_id!r}: {len(children)} items over {total} pages "
        f"of {per_page}"
    )


@register_attribute(
    "remove_object", "dom", True,
    "Strip the selection out of the page entirely",
)
def _apply_remove(ctx, binding) -> None:
    removed = 0
    for element in ctx.identify(binding.selector):
        element.detach()
        removed += 1
    if removed == 0 and binding.param("required", False):
        raise AdaptationError(
            f"remove_object: selector {binding.selector.expression!r} "
            f"matched nothing"
        )


@register_attribute(
    "insert_object", "dom", False,
    "Insert new markup (ads, breadcrumbs, navigation aids) at a position "
    "relative to a selection or the page body",
)
def _apply_insert(ctx, binding) -> None:
    markup = binding.param("html", "")
    position = binding.param("position", "append")
    nodes = parse_fragment(markup)
    if binding.selector is not None:
        anchor = ctx.identify_one(binding.selector)
    else:
        anchor = ctx.document.body
        if anchor is None:
            raise AdaptationError("insert_object: page has no body")
    for node in nodes:
        if position == "before":
            anchor.insert_before(node)
        elif position == "after":
            anchor.insert_after(node)
        elif position == "prepend":
            anchor.prepend(node)
        else:
            anchor.append(node)


@register_attribute(
    "relocate_object", "dom", True,
    "Move the selection to a new position in the document",
)
def _apply_relocate(ctx, binding) -> None:
    element = ctx.identify_one(binding.selector)
    from repro.core.spec import ObjectSelector

    destination_expr = binding.param("destination")
    if not destination_expr:
        raise AdaptationError("relocate_object needs a destination selector")
    destination = ctx.identify_one(
        ObjectSelector.css(destination_expr)
    )
    position = binding.param("position", "append")
    element.detach()
    if position == "before":
        destination.insert_before(element)
    elif position == "after":
        destination.insert_after(element)
    elif position == "prepend":
        destination.prepend(element)
    else:
        destination.append(element)


@register_attribute(
    "replace_object", "dom", True,
    "Replace the selection outright with new markup",
)
def _apply_replace(ctx, binding) -> None:
    element = ctx.identify_one(binding.selector)
    nodes = parse_fragment(binding.param("html", ""))
    if not nodes:
        element.detach()
        return
    element.replace_with(nodes[0])
    anchor = nodes[0]
    for node in nodes[1:]:
        anchor.insert_after(node)
        anchor = node


@register_attribute(
    "replace_attribute", "dom", True,
    "Rewrite one attribute on the selection (e.g. swap in a "
    "mobile-specific logo src)",
)
def _apply_replace_attribute(ctx, binding) -> None:
    name = binding.param("name")
    value = binding.param("value", "")
    if not name:
        raise AdaptationError("replace_attribute needs an attribute name")
    for element in ctx.identify(binding.selector):
        element.set(name, value)


@register_attribute(
    "insert_js", "dom", False,
    "Insert JavaScript: server-side scripts run against the DOM before "
    "rendering; client-side scripts ship with the page",
)
def _apply_insert_js(ctx, binding) -> None:
    code = binding.param("code", "")
    where = binding.param("where", "client")
    if where == "server":
        from repro.browser.scripting import ScriptRuntime

        executed = ScriptRuntime().execute_jquery(ctx.document, code)
        ctx.note(f"insert_js(server): executed {executed} statements")
        return
    script = Element("script", {"type": "text/javascript"})
    script.append(Text(code))
    position = binding.param("position", "body_end")
    if position == "head" and ctx.document.head is not None:
        ctx.document.head.append(script)
    elif ctx.document.body is not None:
        ctx.document.body.append(script)
    else:
        raise AdaptationError("insert_js: nowhere to insert")


@register_attribute(
    "remove_js", "dom", True, "Remove matching script elements"
)
def _apply_remove_js(ctx, binding) -> None:
    for element in ctx.identify(binding.selector):
        if element.tag == "script":
            element.detach()


@register_attribute(
    "vertical_links", "dom", True,
    "Rewrite a horizontal line of links into stacked columns "
    "(the §4.3 navigation transform)",
)
def _apply_vertical_links(ctx, binding) -> None:
    container = ctx.identify_one(binding.selector)
    columns = max(1, int(binding.param("columns", 2)))
    links = [
        el.clone() for el in container.descendant_elements() if el.tag == "a"
    ]
    if not links:
        raise AdaptationError("vertical_links: selection contains no links")
    table = Element("table", {"class": "msite-vertical-links"})
    rows = (len(links) + columns - 1) // columns
    for row_index in range(rows):
        row = Element("tr")
        for col_index in range(columns):
            cell = Element("td")
            link_index = col_index * rows + row_index
            if link_index < len(links):
                cell.append(links[link_index])
            row.append(cell)
        table.append(row)
    container.clear_children()
    container.append(table)


@register_attribute(
    "logout_button", "dom", True,
    "Replace a logout control with a proxy GET parameter that clears the "
    "user's proxy-held cookies",
)
def _apply_logout_button(ctx, binding) -> None:
    for element in ctx.identify(binding.selector):
        element.set("href", f"{ctx.proxy_base}?logout=1")
        element.remove_attribute("onclick")


@register_attribute(
    "ajax_rewrite", "dom", False,
    "Rewrite the page's AJAX-invoking links to static proxy actions",
)
def _apply_ajax_rewrite(ctx, binding) -> None:
    from repro.core.ajax import rewrite_ajax_calls

    count = rewrite_ajax_calls(ctx.document, ctx.ajax_table, ctx.proxy_base)
    ctx.note(f"ajax_rewrite: {count} calls now served by proxy actions")


@register_attribute(
    "searchable", "dom", True,
    "Build a word index over the selection's subpage so pre-rendered "
    "content stays searchable",
)
def _apply_searchable(ctx, binding) -> None:
    target = binding.param("subpage_id")
    definition = ctx.plan.get(target) if target else None
    if definition is None:
        raise AdaptationError(
            f"searchable: subpage {target!r} is not defined"
        )
    definition.searchable = True
    definition.search_trigger_label = binding.param(
        "label", "Search this page"
    )


@register_attribute(
    "image_fidelity", "dom", False,
    "Post-process rendered images: quality and scale parameters",
)
def _apply_image_fidelity(ctx, binding) -> None:
    ctx.fidelity["quality"] = int(
        binding.param("quality", ctx.fidelity.get("quality", 40))
    )
    ctx.fidelity["scale"] = float(
        binding.param("scale", ctx.fidelity.get("scale", 1.0))
    )


@register_attribute(
    "partial_css_prerender", "dom", True,
    "Pre-render the selection's decoration on the server; the device "
    "draws only the text",
)
def _apply_partial_prerender(ctx, binding) -> None:
    element = ctx.identify_one(binding.selector)
    ctx.partial_prerender_targets.append((binding, element))


@register_attribute(
    "media_thumbnail", "dom", False,
    "Replace rich media (Flash, movies, applets) with thumbnail "
    "snapshots linking to the original content",
)
def _apply_media_thumbnail(ctx, binding) -> None:
    """§1: 'Support for producing thumbnail snapshots of rich media
    content for resource-constrained devices.'  Interactivity stays with
    'their respective plugin developers' (§2): the thumbnail links out.
    """
    from repro.core.media import replace_rich_media

    if binding.selector is not None:
        targets = ctx.identify(binding.selector)
    else:
        targets = None  # every rich-media element on the page
    replaced = replace_rich_media(
        ctx.document,
        ctx.media_thumbnails,
        proxy_base=ctx.proxy_base,
        targets=targets,
        max_width=int(binding.param("max_width", 160)),
        quality=int(binding.param("quality", 45)),
    )
    ctx.note(f"media_thumbnail: {replaced} rich media objects replaced")


# ---------------------------------------------------------------------------
# page-level attributes (pipeline flags)


@register_attribute(
    "prerender", "page", False,
    "Render the whole page into a snapshot on the server (the entry-page "
    "menu image)",
)
def _apply_prerender(ctx, binding) -> None:
    ctx.prerender_page = True
    ctx.prerender_params.update(binding.params)


@register_attribute(
    "cacheable", "page", False,
    "Store the pre-rendered snapshot in the shared cache with a TTL",
)
def _apply_cacheable(ctx, binding) -> None:
    ctx.cache_snapshot = True
    ttl = binding.param("ttl_s")
    if ttl is not None:
        ctx.cache_ttl_s = float(ttl)


@register_attribute(
    "http_auth", "page", False,
    "Interpose on origin HTTP authentication with a lightweight login "
    "page; credentials are stored per session",
)
def _apply_http_auth(ctx, binding) -> None:
    ctx.http_auth_enabled = True
    ctx.http_auth_realm = binding.param("realm", "restricted")


@register_attribute(
    "form_login", "page", False,
    "Interpose on the origin's form login: the proxy's lightweight auth "
    "page posts to the origin form and keeps the session cookies in the "
    "user's jar",
)
def _apply_form_login(ctx, binding) -> None:
    action = binding.param("action")
    if not action:
        raise AdaptationError("form_login needs the origin form's action")
    ctx.form_login = {
        "action": action,
        "username_field": binding.param("username_field", "username"),
        "password_field": binding.param("password_field", "password"),
        "extra_fields": dict(binding.param("extra_fields", {})),
        "success_marker": binding.param("success_marker", ""),
    }


@register_attribute(
    "subpage_extras", "page", False,
    "Repeat content (ads, breadcrumbs, jump menus) on every subpage",
)
def _apply_subpage_extras(ctx, binding) -> None:
    """§3.3: 'content such as ads, and navigational aids such as
    jump-menus can be made to appear on every subpage.'"""
    top = binding.param("top_html", "")
    bottom = binding.param("bottom_html", "")
    include_jump_menu = binding.param("jump_menu", False)
    if include_jump_menu:
        links = "".join(
            f'<option value="{ctx.page_url_for(d.subpage_id)}">'
            f"{d.title}</option>"
            for d in ctx.plan.top_level()
        )
        bottom += (
            f'<select id="msite-jump" onchange="window.location='
            f'this.value">'
            f'<option value="{ctx.proxy_base}">Jump to…</option>'
            f"{links}</select>"
        )
    for definition in ctx.plan.subpages.values():
        if top:
            definition.extras_top.append(top)
        if bottom:
            definition.extras_bottom.append(bottom)


def definitions_by_phase(phase: str) -> list[AttributeDefinition]:
    return [d for d in ATTRIBUTE_REGISTRY.values() if d.phase == phase]


def attribute_menu() -> list[tuple[str, str]]:
    """(name, description) pairs — what the admin tool's menu lists."""
    return sorted(
        (definition.name, definition.description)
        for definition in ATTRIBUTE_REGISTRY.values()
    )
