"""m.Site core: the paper's primary contribution.

A site administrator describes an adaptation as an
:class:`~repro.core.spec.AdaptationSpec` (object selectors + attributes);
:mod:`repro.core.codegen` turns the spec into proxy source code (the
analog of the paper's generated PHP shell); and
:class:`~repro.core.proxy.MSiteProxy` is the running multi-session proxy:
it manages cookie jars and sessions, downloads originating pages, applies
the attribute system in filter and DOM phases, splits pages into subpages,
pre-renders snapshots through the server-side browser when needed, caches
shared renders, and satisfies rewritten AJAX requests.
"""

from repro.core.spec import AdaptationSpec, AttributeBinding, ObjectSelector
from repro.core.proxy import MSiteProxy, ProxyServices
from repro.core.codegen import generate_proxy_source, load_generated_proxy
from repro.core.cache import PrerenderCache
from repro.core.storage import VirtualFileSystem
from repro.core.sessions import SessionManager
from repro.core.detect import MobileRedirector, detect_user_agent
from repro.core.deployment import ProxyDeployment

__all__ = [
    "AdaptationSpec",
    "AttributeBinding",
    "ObjectSelector",
    "MSiteProxy",
    "ProxyServices",
    "generate_proxy_source",
    "load_generated_proxy",
    "PrerenderCache",
    "VirtualFileSystem",
    "SessionManager",
    "MobileRedirector",
    "detect_user_agent",
    "ProxyDeployment",
]
