"""The m.Site proxy runtime: a multi-session, stateful content-adaptation
proxy.

This is the Python analog of the generated PHP proxy: it "handles user
session authentication, cookie jars, and high-level session
administration, ... downloading of the originating page on demand, http
authentication on behalf of the client, and any error handling should the
page be unavailable" (§3.2).  One URL (``proxy.php``) serves every role
through query parameters, exactly like the generated shell the paper
describes:

* ``proxy.php`` — the mobile entry point (snapshot + image-map menu),
* ``proxy.php?page=<id>`` — a generated subpage (``&fragment=1`` returns
  the raw fragment for asynchronous loads),
* ``proxy.php?file=<name>`` — session-local artifacts (snapshot image,
  pre-rendered subpage images),
* ``proxy.php?img=<url>&q=<quality>`` — the shared low-fidelity image
  cache behind the rewrite-images filter,
* ``proxy.php?action=<n>&p=<x>`` — rewritten AJAX calls (§4.4),
* ``proxy.php?logout=1`` — clears the user's proxy-held cookies,
* ``proxy.php?auth=1`` — the lightweight HTTP-authentication page.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Optional

from repro.core.ajax import AjaxActionTable
from repro.core.delta import delta_counter
from repro.core.detect import device_class
from repro.core.fastpath import etag_matches, fastpath_counter
from repro.core.pipeline import (
    AdaptationPipeline,
    AdaptedPage,
    AuthenticationRequired,
    ProxyServices,
)
from repro.core.plan import TransformPlan
from repro.core.sessions import SESSION_COOKIE, MobileSession, SessionManager
from repro.core.spec import AdaptationSpec
from repro.dom import diff
from repro.errors import (
    AdaptationError,
    CircuitOpenError,
    DegradedServeError,
    FetchError,
    RenderFarmError,
    RetryExhaustedError,
    SessionError,
)
from repro.html.parser import parse_html
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.net.url import unquote
from repro.observability import tracing
from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.resilience.policy import DEFAULT_RETRY_AFTER_S, PASSTHROUGH, STALE

#: Media type of a session patch manifest (a serialized
#: :class:`repro.dom.diff.ChangeSet` the client applies to the entry
#: body it already holds).
SESSION_DELTA_CONTENT_TYPE = "application/x-msite-delta+json"


@dataclass(frozen=True)
class CounterSnapshot:
    """A consistent point-in-time copy of :class:`ProxyCounters`."""

    requests: int = 0
    entry_pages: int = 0
    subpages: int = 0
    ajax_actions: int = 0
    browser_renders: int = 0
    lightweight_requests: int = 0
    errors: int = 0
    browser_core_seconds: float = 0.0
    lightweight_core_seconds: float = 0.0


class ProxyCounters:
    """Load accounting for the scalability analysis.

    Delegates to :class:`~repro.observability.metrics.MetricsRegistry`
    counters (each individually atomic), so the same numbers surface on
    the ``/metrics`` endpoint; the historical attribute reads
    (``counters.requests``) and the multi-field :meth:`add` remain, and
    the bench layer still reads a view through :meth:`snapshot`.  In a
    multi-page deployment each page proxy labels its series with
    ``page="<namespace>"`` so they coexist in one registry.
    """

    FIELDS = (
        "requests",
        "entry_pages",
        "subpages",
        "ajax_actions",
        "browser_renders",
        "lightweight_requests",
        "errors",
        "browser_core_seconds",
        "lightweight_core_seconds",
    )

    _HELP = {
        "requests": "Requests handled by the generated proxy.",
        "entry_pages": "Adapted entry pages served.",
        "subpages": "Generated subpages served.",
        "ajax_actions": "Rewritten AJAX actions proxied.",
        "browser_renders": "Requests that paid a full browser render.",
        "lightweight_requests": "Requests served on the lightweight path.",
        "errors": "Requests that failed (fetch or adaptation).",
        "browser_core_seconds": "Core seconds spent in browser renders.",
        "lightweight_core_seconds":
            "Core seconds spent on the lightweight path.",
    }

    def __init__(self, registry=None, labels=None, **initial: float) -> None:
        from repro.observability.metrics import MetricsRegistry

        registry = registry or MetricsRegistry()
        self._counters = {}
        for name in self.FIELDS:
            suffix = "" if name.endswith("_seconds") else "_total"
            self._counters[name] = registry.counter(
                f"msite_proxy_{name}{suffix}", self._HELP[name], labels
            )
        for name, value in initial.items():
            if name not in self.FIELDS:
                raise TypeError(f"unknown counter {name!r}")
            self._counters[name].inc(value)

    def add(self, **deltas: float) -> None:
        """Apply every ``field=delta``; each counter is atomic."""
        for name in deltas:
            if name not in self.FIELDS:
                raise TypeError(f"unknown counter {name!r}")
        for name, delta in deltas.items():
            self._counters[name].inc(delta)

    def bind(self, registry) -> None:
        """Register these instruments into a shared registry."""
        for counter in self._counters.values():
            registry.register(counter)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            if name.endswith("_seconds"):
                return value
            return int(value)
        raise AttributeError(name)

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(
            **{name: getattr(self, name) for name in self.FIELDS}
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.FIELDS
        )
        return f"ProxyCounters({body})"


class MSiteProxy(Application):
    """The generated proxy for one adapted page.

    Safe to drive from many threads at once (see
    ``docs/CONCURRENCY.md``): sessions are guarded by per-session locks,
    shared tables by one proxy-wide lock, counters are atomic, and the
    expensive snapshot render collapses concurrent cold misses into a
    single flight through the shared pre-render cache.  Wrap it in
    :class:`repro.runtime.ConcurrentProxy` for a bounded thread pool
    with admission control.
    """

    def __init__(
        self,
        spec: AdaptationSpec,
        services: ProxyServices,
        proxy_base: str = "proxy.php",
        namespace: str = "",
    ) -> None:
        spec.validate()
        self.spec = spec
        self.services = services
        self.proxy_base = proxy_base
        self.namespace = namespace.strip("/")
        self.sessions = SessionManager(services.storage, clock=services.clock)
        # Compiled once per deployment and shared by every request's
        # pipeline: registry lookups, phase grouping, and CSS selector
        # parsing all happen here instead of per request.
        self.plan = TransformPlan.compile(
            spec,
            proxy_base=proxy_base,
            namespace=self.namespace,
            registry=services.observability.registry,
        )
        self.ajax_table = AjaxActionTable()
        self.counters = ProxyCounters(
            registry=services.observability.registry,
            labels={"page": self.namespace} if self.namespace else None,
        )
        self._adapted: dict[str, AdaptedPage] = {}
        # Guards _adapted and the shared ajax table; per-session work is
        # serialized by each session's own lock (always acquired first).
        self._lock = threading.RLock()

    def _page_dir(self, session: MobileSession) -> str:
        if self.namespace:
            return f"{session.directory}/{self.namespace}"
        return session.directory

    def _image_dir(self, session: MobileSession) -> str:
        return f"{self._page_dir(session)}/images"

    # ------------------------------------------------------------------

    @staticmethod
    def _request_kind(params) -> str:
        for key in ("logout", "auth", "action", "img", "file", "page"):
            if params.get(key):
                return key
        return "entry"

    def handle(self, request: Request) -> Response:
        path = request.url.path
        if path == "/metrics":
            return self.metrics_response()
        if path == "/traces":
            return self.traces_response()
        observability = self.services.observability
        trace = observability.start_trace(self._request_kind(request.params))
        with tracing.activate(trace):
            try:
                return self._handle_traced(request, trace)
            finally:
                observability.finish_trace(trace)
                observability.registry.histogram(
                    "msite_request_duration_seconds",
                    "End-to-end proxy request time, by request kind.",
                    labels={"kind": trace.name},
                ).observe(trace.duration_s or 0.0)

    def metrics_response(self) -> Response:
        """Prometheus exposition of the deployment's registry."""
        return Response.binary(
            render_prometheus(self.services.observability.registry).encode(
                "utf-8"
            ),
            PROMETHEUS_CONTENT_TYPE,
        )

    def traces_response(self) -> Response:
        """JSON dump of recent and slow request traces."""
        return Response.binary(
            self.services.observability.traces.dump_json().encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _handle_traced(self, request: Request, trace) -> Response:
        self.counters.add(requests=1)
        params = request.params
        try:
            with tracing.span("session"):
                session, is_new = self._resolve_session(request)
            if params.get("logout"):
                return self._finish(self._handle_logout(session), session, is_new)
            if params.get("auth"):
                return self._finish(
                    self._handle_auth(session, request), session, is_new
                )
            if params.get("action"):
                return self._finish(
                    self._handle_action(session, request), session, is_new
                )
            if params.get("img"):
                return self._finish(
                    self._handle_image_cache(session, request), session, is_new
                )
            if params.get("file"):
                return self._finish(
                    self._handle_file(session, params["file"]), session, is_new
                )
            if params.get("page"):
                return self._finish(
                    self._handle_subpage(
                        session,
                        params["page"],
                        fragment=bool(params.get("fragment")),
                    ),
                    session,
                    is_new,
                )
            return self._finish(
                self._handle_entry(
                    session, request, force=bool(params.get("refresh"))
                ),
                session,
                is_new,
            )
        except AuthenticationRequired:
            return Response.redirect(f"{self.proxy_base}?auth=1")
        except CircuitOpenError as exc:
            # An open breaker is load shedding, not a crash: an honest
            # 503 with a Retry-After estimate of when probes resume.
            self.counters.add(errors=1)
            return self._retry_later(
                f"m.Site proxy: temporarily refusing calls ({exc})",
                exc.retry_after_s,
            )
        except DegradedServeError as exc:
            self.counters.add(errors=1)
            return self._retry_later(
                f"m.Site proxy: degraded and unable to serve ({exc})", None
            )
        except RenderFarmError as exc:
            # Backstop: farm backpressure normally degrades inside the
            # pipeline; one that escapes is still load shedding (503),
            # never an internal error.
            self.counters.add(errors=1)
            return self._retry_later(
                f"m.Site proxy: render farm refusing work ({exc})", None
            )
        except RetryExhaustedError as exc:
            # Ordered before FetchError (its base): the origin never
            # answered across every attempt — a gateway timeout, not a
            # bad gateway.
            self.counters.add(errors=1)
            return Response.text(
                f"m.Site proxy: originating page timed out ({exc})",
                status=504,
            )
        except FetchError as exc:
            self.counters.add(errors=1)
            return Response.text(
                f"m.Site proxy: originating page unavailable ({exc})",
                status=502,
            )
        except AdaptationError as exc:
            # The originating page no longer matches the spec (content
            # drift, malformed markup): fail this request, not the proxy.
            self.counters.add(errors=1)
            return Response.text(
                f"m.Site proxy: adaptation failed ({exc}); "
                f"the administrator should refresh the spec",
                status=502,
            )

    @staticmethod
    def _retry_later(message: str, retry_after_s: Optional[float]) -> Response:
        response = Response.text(message, status=503)
        seconds = (
            DEFAULT_RETRY_AFTER_S if retry_after_s is None else retry_after_s
        )
        response.headers.set("Retry-After", str(max(1, round(seconds))))
        return response

    # ------------------------------------------------------------------
    # sessions

    def _resolve_session(
        self, request: Request
    ) -> tuple[MobileSession, bool]:
        cookie = request.cookies.get(SESSION_COOKIE)
        if cookie:
            try:
                return self.sessions.get(cookie), False
            except SessionError:
                pass
        return self.sessions.create(), True

    def _finish(
        self, response: Response, session: MobileSession, is_new: bool
    ) -> Response:
        if is_new:
            response.set_cookie(
                SESSION_COOKIE, session.session_id, http_only=True
            )
        return response

    # ------------------------------------------------------------------
    # entry page and subpages

    @staticmethod
    def _device_class(request: Request) -> str:
        """Bucket the requesting device for fast-path cache keys."""
        return device_class(request.headers.get("User-Agent"))

    def forget_adapted(self) -> None:
        """Drop every session's memoized adapted page.

        The cluster invalidation bus calls this when ``?refresh=1`` or an
        explicit invalidation lands anywhere in the fleet, so a peer
        worker never keeps serving a superseded memo for a page another
        worker just re-adapted.  The next request per session re-resolves
        through the shared fast-path cache (cheap when nothing changed).
        Delta memos for the site drop too: an invalidation supersedes
        the cached bundle a memo would keep patching forward.
        """
        with self._lock:
            self._adapted.clear()
        if self.services.delta is not None:
            self.services.delta.forget(self.spec.site)

    def _ensure_adapted(
        self,
        session: MobileSession,
        force: bool = False,
        device_class: str = "default",
    ) -> AdaptedPage:
        # The session lock makes the check-then-adapt atomic per session:
        # two concurrent requests from one device run the pipeline once.
        # Requests from *different* sessions adapt in parallel, and their
        # concurrent snapshot renders collapse in the cache's single
        # flight.
        with session.lock:
            with self._lock:
                previous = self._adapted.get(session.session_id)
            if previous is not None and not force and previous.degraded is None:
                return previous
            pipeline = AdaptationPipeline(
                self.spec, self.services, session,
                proxy_base=self.proxy_base, namespace=self.namespace,
                plan=self.plan,
            )
            try:
                adapted = pipeline.run(
                    force_refresh=force, device_class=device_class
                )
            except (FetchError, AdaptationError, CircuitOpenError):
                # Stale-while-revalidate at the session level: a page we
                # served before (degraded or not) beats an error page.
                # The revalidation is re-attempted on the next request.
                if previous is not None:
                    self.services.resilience.record_degraded(STALE)
                    return previous
                raise
            with self._lock:
                # Merge discovered AJAX actions into the proxy-wide table
                # so the rewritten links on every session's pages resolve.
                for action in adapted.ajax_table or []:
                    self.ajax_table.register(
                        action.name,
                        action.origin_template,
                        transform=action.transform,
                        cacheable=action.cacheable,
                        cache_ttl_s=action.cache_ttl_s,
                    )
                self._adapted[session.session_id] = adapted
            self._account(adapted)
            return adapted

    def _account(self, adapted: AdaptedPage) -> None:
        if adapted.used_browser:
            self.counters.add(
                browser_renders=1,
                browser_core_seconds=adapted.browser_core_seconds,
                lightweight_core_seconds=adapted.lightweight_core_seconds,
            )
        else:
            self.counters.add(
                lightweight_requests=1,
                browser_core_seconds=adapted.browser_core_seconds,
                lightweight_core_seconds=adapted.lightweight_core_seconds,
            )

    def _handle_entry(
        self, session: MobileSession, request: Request, force: bool = False
    ) -> Response:
        adapted = self._ensure_adapted(
            session, force=force, device_class=self._device_class(request)
        )
        self.counters.add(entry_pages=1)
        etag = adapted.etag
        if etag is not None and not force:
            validator = request.headers.get("If-None-Match")
            if validator and etag_matches(validator, etag):
                # The adapted result is current for these origin bytes,
                # this device class, and this spec — nothing to resend.
                fastpath_counter(
                    self.services.observability.registry, "not_modified"
                ).inc()
                response = Response(status=304)
                response.headers.set("ETag", etag)
                return self._mark_degraded(response, adapted)
        stored = self.services.storage.read(adapted.entry_path)
        body: Optional[str] = None
        if etag is not None and not force:
            body = stored.data.decode("utf-8")
            patched = self._entry_delta(session, request, body, etag, adapted)
            if patched is not None:
                session.last_entry_html = body
                session.last_entry_etag = etag
                return patched
        response = Response.binary(stored.data, "text/html; charset=utf-8")
        if etag is not None:
            response.headers.set("ETag", etag)
            if self.services.delta_enabled:
                # Remember what this session now holds, so its next
                # visit can be answered with a patch manifest.
                session.last_entry_html = (
                    body
                    if body is not None
                    else stored.data.decode("utf-8")
                )
                session.last_entry_etag = etag
        return self._mark_degraded(response, adapted)

    def _entry_delta(
        self,
        session: MobileSession,
        request: Request,
        body: str,
        etag: str,
        adapted: AdaptedPage,
    ) -> Optional[Response]:
        """A session patch manifest for this entry, or ``None``.

        A returning client that kept its last entry body advertises it
        with ``X-MSite-Delta-Since: <etag>``.  When that validator is
        exactly what this session was last served, the response is the
        stable-identity change-set taking the old body to the current
        one (``application/x-msite-delta+json``) instead of the full
        page.  Falls back to the full body — counting
        ``msite_delta_session_fallback_total`` — when the client's
        baseline is unknown, the page changed structurally, or the
        manifest would not be meaningfully smaller than the page.
        """
        if not self.services.delta_enabled:
            return None
        since = request.headers.get("X-MSite-Delta-Since")
        if not since:
            return None
        registry = self.services.observability.registry
        if etag_matches(since, etag):
            # The client's baseline *is* the current page: the delta
            # header doubles as a validator.
            fastpath_counter(registry, "not_modified").inc()
            response = Response(status=304)
            response.headers.set("ETag", etag)
            return self._mark_degraded(response, adapted)
        if (
            session.last_entry_etag is None
            or session.last_entry_html is None
            or not etag_matches(since, session.last_entry_etag)
        ):
            delta_counter(registry, "session_fallback").inc()
            return None
        try:
            old_doc = parse_html(session.last_entry_html)
            new_doc = parse_html(body)
            manifest = diff.changeset(old_doc, new_doc)
        except Exception:
            delta_counter(registry, "session_fallback").inc()
            return None
        payload = manifest.to_json()
        limit = self.services.session_delta_max_fraction * len(body)
        if manifest.upheaval() or len(payload) > limit:
            delta_counter(registry, "session_fallback").inc()
            return None
        delta_counter(registry, "session_served").inc()
        response = Response.binary(
            payload.encode("utf-8"), SESSION_DELTA_CONTENT_TYPE
        )
        response.headers.set("ETag", etag)
        return self._mark_degraded(response, adapted)

    @staticmethod
    def _mark_degraded(response: Response, adapted: AdaptedPage) -> Response:
        """The 206-style partial-service marker: still a 200, but the
        client (and the chaos harness) can tell fidelity was reduced."""
        if adapted.degraded is not None:
            response.headers.set("X-MSite-Degraded", adapted.degraded)
        return response

    def _handle_subpage(
        self, session: MobileSession, subpage_id: str, fragment: bool
    ) -> Response:
        adapted = self._ensure_adapted(session)
        self.counters.add(
            subpages=1,
            lightweight_requests=1,
            lightweight_core_seconds=self.services.costs.lightweight_request_s,
        )
        if fragment:
            candidates = [f"{subpage_id}.fragment.html"]
        else:
            # Subpages may have been emitted by any output engine; AJAX
            # subpages only exist as fragments.
            candidates = [
                f"{subpage_id}.html",
                f"{subpage_id}.txt",
                f"{subpage_id}.pdf",
                f"{subpage_id}.fragment.html",
            ]
        for name in candidates:
            path = f"{self._page_dir(session)}/{name}"
            if self.services.storage.exists(path):
                stored = self.services.storage.read(path)
                return self._mark_degraded(
                    Response.binary(stored.data, stored.content_type), adapted
                )
        return Response.not_found(f"no subpage {subpage_id!r}")

    def _handle_file(self, session: MobileSession, name: str) -> Response:
        self._ensure_adapted(session)
        self.counters.add(
            lightweight_requests=1,
            lightweight_core_seconds=self.services.costs.lightweight_request_s,
        )
        if "/" in name or ".." in name:
            return Response.text("bad file name", status=400)
        for directory in (self._page_dir(session), self._image_dir(session)):
            path = f"{directory}/{name}"
            if self.services.storage.exists(path):
                stored = self.services.storage.read(path)
                return Response.binary(stored.data, stored.content_type)
        return Response.not_found(f"no file {name!r}")

    # ------------------------------------------------------------------
    # the shared low-fidelity image cache

    def _handle_image_cache(
        self, session: MobileSession, request: Request
    ) -> Response:
        source = unquote(request.params.get("img", ""))
        quality = request.params.get("q", "40")
        self.counters.add(
            lightweight_requests=1,
            lightweight_core_seconds=self.services.costs.lightweight_request_s,
        )
        key = f"lowfi:{source}:q{quality}"
        entry = self.services.cache.get(key)
        if entry is not None:
            return Response.binary(entry.data, entry.content_type)

        resilience = self.services.resilience

        def _fetch_and_reduce() -> Response:
            # Single-flight loader: a stampede of misses for one image
            # fetches the origin once; joiners share the Response.
            cached = self.services.cache.peek(key)
            if cached is not None:
                return Response.binary(cached.data, cached.content_type)
            client = self.services.make_client(session.jar)
            origin_url = (
                f"http://{self.spec.origin_host}{source}"
                if source.startswith("/")
                else f"http://{self.spec.origin_host}/{source}"
            )
            try:
                origin_response = resilience.retry.call(
                    lambda: client.get(origin_url),
                    breaker=resilience.origin_breaker(self.spec.origin_host),
                    target=f"origin:{self.spec.origin_host}",
                )
            except (FetchError, CircuitOpenError):
                # A missing decoration stays a 404, exactly as before the
                # resilience layer; the page around it still works.
                return Response.not_found("image origin unreachable")
            if not origin_response.ok:
                return Response.not_found("origin image missing")
            try:
                reduced = self._reduce_image(origin_response.body, quality)
            except AdaptationError:
                # Bottom rung of the image ladder: an unreducible payload
                # ships at original fidelity rather than not at all.
                resilience.record_degraded(PASSTHROUGH)
                passthrough = Response.binary(
                    origin_response.body,
                    origin_response.headers.get("Content-Type")
                    or "application/octet-stream",
                )
                passthrough.headers.set("X-MSite-Degraded", PASSTHROUGH)
                return passthrough
            self.services.cache.put(
                key, reduced, content_type="image/jpeg", ttl_s=3600.0
            )
            return Response.binary(reduced, "image/jpeg")

        return self.services.cache.load_or_join(key, _fetch_and_reduce)

    @staticmethod
    def _reduce_image(data: bytes, quality: str) -> bytes:
        """Fidelity model: a reduced-quality image ships a fraction of
        the original bytes (re-encoding real GIF/JPEG payloads is the
        post-processor's job; the proxy cares about cacheable size).
        Raises :class:`AdaptationError` for payloads the reducer cannot
        re-encode (e.g. corrupted mid-transfer)."""
        if data[:2] == b"\x00\xff":
            raise AdaptationError("image payload corrupt; cannot re-encode")
        try:
            fraction = max(5, min(100, int(quality))) / 100.0
        except ValueError:
            fraction = 0.4
        return data[: max(64, int(len(data) * fraction))]

    # ------------------------------------------------------------------
    # AJAX actions (§4.4)

    def _handle_action(
        self, session: MobileSession, request: Request
    ) -> Response:
        self.counters.add(
            ajax_actions=1,
            lightweight_requests=1,
            lightweight_core_seconds=self.services.costs.lightweight_request_s,
        )
        self._ensure_adapted(session)
        try:
            action_id = int(request.params.get("action", ""))
        except ValueError:
            return Response.text("bad action id", status=400)
        action = self.ajax_table.get(action_id)
        if action is None:
            return Response.not_found(f"no action {action_id}")
        parameter = request.params.get("p", "")
        cache_key = f"action:{action.action_id}:{parameter}"
        if action.cacheable:
            entry = self.services.cache.get(cache_key)
            if entry is not None:
                return Response.binary(entry.data, entry.content_type)

        resilience = self.services.resilience
        target = f"http://{self.spec.origin_host}" + action.origin_target(
            parameter
        )

        def _attempt() -> Response:
            client = self.services.make_client(session.jar)
            origin_response = client.get(target)
            if not origin_response.ok:
                raise FetchError(
                    f"origin ajax call failed ({origin_response.status})"
                )
            return origin_response

        def _call_origin() -> Response:
            if action.cacheable:
                cached = self.services.cache.peek(cache_key)
                if cached is not None:
                    return Response.binary(cached.data, cached.content_type)
            try:
                origin_response = resilience.retry.call(
                    _attempt,
                    breaker=resilience.origin_breaker(self.spec.origin_host),
                    target=f"origin:{self.spec.origin_host}",
                )
            except (FetchError, CircuitOpenError):
                if action.cacheable:
                    stale = self.services.cache.load_stale(cache_key)
                    if stale is not None:
                        resilience.record_degraded(STALE)
                        response = Response.binary(
                            stale.data, stale.content_type
                        )
                        response.headers.set("X-MSite-Degraded", STALE)
                        return response
                raise
            body = origin_response.text_body
            if action.transform is not None:
                body = action.transform(body)
            if action.cacheable:
                self.services.cache.put(
                    cache_key,
                    body,
                    content_type="text/html; charset=utf-8",
                    ttl_s=action.cache_ttl_s,
                )
            return Response.html(body)

        if not action.cacheable:
            # Non-cacheable actions may carry session state — never share
            # one origin call across users.
            return _call_origin()
        return self.services.cache.load_or_join(cache_key, _call_origin)

    # ------------------------------------------------------------------
    # session administration

    def _handle_logout(self, session: MobileSession) -> Response:
        with session.lock:
            cleared = len(session.jar)
            session.jar.clear()
            session.http_credentials.clear()
            with self._lock:
                self._adapted.pop(session.session_id, None)
        return Response.html(
            f"<html><body>Logged out ({cleared} cookies cleared). "
            f'<a href="{self.proxy_base}">Return</a>.</body></html>'
        )

    def _handle_auth(
        self, session: MobileSession, request: Request
    ) -> Response:
        """The lightweight authentication page (§3.3).

        Covers both interposition modes: HTTP Basic credentials stored
        per session, and origin *form* login performed by the proxy on
        the user's behalf (the resulting cookies live in the session's
        jar, exactly like the paper's vBulletin deployment).
        """
        if request.method == "POST":
            form = request.form
            username = form.get("username", "")
            password = form.get("password", "")
            login_binding = next(
                iter(self.spec.bindings_for("form_login")), None
            )
            with session.lock:
                if login_binding is not None:
                    self._perform_form_login(
                        session, login_binding, username, password
                    )
                else:
                    session.http_credentials[self.spec.origin_host] = (
                        username,
                        password,
                    )
                with self._lock:
                    self._adapted.pop(session.session_id, None)
            return Response.redirect(self.proxy_base)
        return Response.html(
            f"""<html><head><title>Authentication required</title></head>
<body><form method="post" action="{self.proxy_base}?auth=1">
<p>The site requires authentication:</p>
<p>Username <input type="text" name="username" /></p>
<p>Password <input type="password" name="password" /></p>
<p><input type="submit" value="Authenticate" /></p>
</form></body></html>"""
        )

    def _perform_form_login(
        self,
        session: MobileSession,
        binding,
        username: str,
        password: str,
    ) -> bool:
        """Post the origin's login form with the user's credentials; the
        origin's session cookies land in this user's jar."""
        client = self.services.make_client(session.jar)
        fields = {
            binding.param("username_field", "username"): username,
            binding.param("password_field", "password"): password,
        }
        fields.update(binding.param("extra_fields", {}) or {})
        action = binding.param("action")
        target = (
            action
            if action.startswith("http")
            else f"http://{self.spec.origin_host}{action}"
        )
        try:
            response = client.post(target, fields)
        except FetchError:
            return False
        marker = binding.param("success_marker", "")
        if marker and marker not in response.text_body:
            return False
        return response.ok
