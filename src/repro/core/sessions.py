"""Multi-user session management for the proxy.

"Upon starting a mobile session for the first time, the mobile browser is
issued a session cookie for maintaining state on the server" (§3.2).  Each
session owns a cookie jar for the originating site, optional stored HTTP
credentials, and a protected subdirectory in the proxy's file store.

Concurrency: the manager's own tables are guarded by an internal lock,
so sessions can be issued, resolved, and expired from many
request-handling threads at once.  Each :class:`MobileSession` carries a
reentrant per-session lock; the proxy holds it while mutating the
session's cookie jar, credentials, or adapted-page state, so two
requests from one device can never interleave destructively while
requests from different devices proceed in parallel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SessionError
from repro.net.cookies import CookieJar
from repro.sim.rng import DeterministicRandom

SESSION_COOKIE = "msite_session"


@dataclass
class MobileSession:
    """One mobile user's proxy-side state."""

    session_id: str
    created_at: float
    jar: CookieJar = field(default_factory=CookieJar)
    http_credentials: dict[str, tuple[str, str]] = field(default_factory=dict)
    last_seen: float = 0.0
    pages_served: int = 0
    #: The entry body (and its validator) this session last received.
    #: A returning client that kept that body can send
    #: ``X-MSite-Delta-Since: <etag>`` and be answered with a patch
    #: manifest instead of the full page.
    last_entry_html: Optional[str] = None
    last_entry_etag: Optional[str] = None
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def directory(self) -> str:
        return f"/sessions/{self.session_id}"

    @property
    def image_directory(self) -> str:
        return f"{self.directory}/images"


class SessionManager:
    """Issues, resolves, and expires mobile sessions (thread-safe)."""

    def __init__(
        self,
        storage,
        clock=None,
        ttl_s: float = 4 * 3600.0,
        seed: int = 0x5E55,
    ) -> None:
        self.storage = storage
        self.clock = clock
        self.ttl_s = ttl_s
        self._rng = DeterministicRandom(seed)
        self._sessions: dict[str, MobileSession] = {}
        self._lock = threading.RLock()

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle -----------------------------------------------------------

    def create(self) -> MobileSession:
        with self._lock:
            session_id = f"ms{self._rng.next_u64():016x}"
            session = MobileSession(
                session_id=session_id, created_at=self._now
            )
            session.last_seen = self._now
            self._sessions[session_id] = session
        self.storage.mkdir(session.directory)
        self.storage.mkdir(session.image_directory)
        return session

    def get(self, session_id: str) -> MobileSession:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionError(f"unknown session {session_id!r}")
            if self._now - session.last_seen > self.ttl_s:
                self.destroy(session_id)
                raise SessionError(f"session {session_id!r} expired")
            session.last_seen = self._now
            return session

    def get_or_create(self, session_id: Optional[str]) -> MobileSession:
        """Resolve a cookie value to a session, creating one as needed."""
        if session_id:
            try:
                return self.get(session_id)
            except SessionError:
                pass
        return self.create()

    def destroy(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            self.storage.delete_tree(session.directory)

    def expire_idle(self) -> int:
        """Expire sessions idle past the TTL; returns how many died."""
        with self._lock:
            doomed = [
                sid
                for sid, session in self._sessions.items()
                if self._now - session.last_seen > self.ttl_s
            ]
        for session_id in doomed:
            self.destroy(session_id)
        return len(doomed)
