"""Pre-rendering: snapshots, partial CSS pre-render, fidelity control.

§3.3: "A page, subpage, object, or object group can be marked to be
completely rendered on the server side into a single graphic, saving much
computational effort on the mobile device. ... In the index page of our
test site, this technique can reduce wall-clock load time by a factor
of 5."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Text
from repro.render.box import Rect
from repro.render.image import EncodedImage, RasterImage, encode_jpeg, encode_png
from repro.render.snapshot import PageSnapshot, render_snapshot


@dataclass
class SnapshotArtifact:
    """A finished snapshot: scaled low-fidelity image plus geometry."""

    encoded: EncodedImage
    scale: float
    original_width: int
    original_height: int
    snapshot: PageSnapshot

    @property
    def scaled_width(self) -> int:
        return self.encoded.width

    @property
    def scaled_height(self) -> int:
        return self.encoded.height

    def region_for(self, element: Element) -> Optional[Rect]:
        """Original-document geometry of an element (unscaled)."""
        return self.snapshot.geometry_of(element)


def produce_snapshot(
    snapshot: PageSnapshot,
    scale: float = 0.28,
    quality: int = 25,
) -> SnapshotArtifact:
    """Scale a rendered page down and encode at mobile fidelity.

    "The image itself is also scaled down to prevent the user from having
    to zoom in before clicking" (§4.3); fidelity is lowered so the
    overview page ships in 25-50 KB instead of ~600 KB (§3.3).
    """
    image = snapshot.image if scale == 1.0 else snapshot.image.scaled(scale)
    encoded = encode_jpeg(image, quality=quality)
    return SnapshotArtifact(
        encoded=encoded,
        scale=scale,
        original_width=snapshot.viewport_width,
        original_height=snapshot.page_height,
        snapshot=snapshot,
    )


def prerender_object(
    document: Document,
    element: Element,
    viewport_width: int = 1024,
    quality: int = 55,
) -> EncodedImage:
    """Render a single object (subtree) to an image.

    Used when a subpage combines the subpage and prerender attributes: "If
    the subpage is combined with the pre-rendering attribute, it will be
    made up of simple pre-rendered images" (§3.3).
    """
    snapshot = render_snapshot(document, viewport_width=viewport_width)
    rect = snapshot.geometry_of(element)
    if rect is None or rect.width < 1 or rect.height < 1:
        # The object did not lay out (display:none etc.): 1x1 blank.
        return encode_jpeg(RasterImage.blank(1, 1), quality=quality)
    x, y, width, height = rect.rounded()
    width = max(1, min(width, snapshot.image.width - max(0, x)))
    height = max(1, min(height, snapshot.image.height - max(0, y)))
    cropped = snapshot.image.cropped(max(0, x), max(0, y), width, height)
    return encode_jpeg(cropped, quality=quality)


# ---------------------------------------------------------------------------
# partial CSS pre-render (§3.3)


@dataclass
class PartialPrerender:
    """Background image + text placement data for client-side text draw."""

    background: EncodedImage
    text_runs: list[dict]  # {text, x, y, size} for the client script


def partial_css_prerender(
    document: Document,
    element: Element,
    viewport_width: int = 1024,
    quality: int = 55,
) -> PartialPrerender:
    """Pre-render an object's *decoration* but leave text to the client.

    "take a portion of CSS code, replace the text with stretched one-pixel
    placeholders (to allow the layout engine to properly size the object),
    and take a snapshot of the rendered object. ... the rendered object can
    then be used as a background in a static subpage, while the device only
    needs to draw text in the proper location." (§3.3)
    """
    # Lay out the pristine document to capture where text goes.
    snapshot = render_snapshot(document, viewport_width=viewport_width)
    rect = snapshot.geometry_of(element)
    box = snapshot.layout_root.find_box_for(element)
    text_runs = []
    if box is not None and rect is not None:
        for inner in box.iter_boxes():
            for run in inner.text_runs:
                text_runs.append(
                    {
                        "text": run.text,
                        "x": int(run.rect.x - rect.x),
                        "y": int(run.rect.y - rect.y),
                        "size": int(run.font_size),
                    }
                )

    # Blank the text out of a working copy, then snapshot the decoration.
    working = document.clone()
    target = _matching_clone(document, working, element)
    if target is not None:
        _replace_text_with_placeholders(target)
    blanked = render_snapshot(working, viewport_width=viewport_width)
    brect = blanked.geometry_of(target) if target is not None else None
    if brect is None or brect.width < 1 or brect.height < 1:
        background = encode_jpeg(RasterImage.blank(1, 1), quality=quality)
    else:
        x, y, width, height = brect.rounded()
        width = max(1, min(width, blanked.image.width - max(0, x)))
        height = max(1, min(height, blanked.image.height - max(0, y)))
        background = encode_jpeg(
            blanked.image.cropped(max(0, x), max(0, y), width, height),
            quality=quality,
        )
    return PartialPrerender(background=background, text_runs=text_runs)


def _matching_clone(
    original_root: Document, cloned_root: Document, element: Element
) -> Optional[Element]:
    """Find the clone of ``element`` by walking identical tree paths."""
    path: list[int] = []
    node = element
    while node.parent is not None:
        path.append(node.index_in_parent)
        node = node.parent  # type: ignore[assignment]
    current = cloned_root
    for index in reversed(path):
        children = current.children
        if index >= len(children):
            return None
        current = children[index]  # type: ignore[assignment]
    return current if isinstance(current, Element) else None


def _replace_text_with_placeholders(element: Element) -> None:
    """Swap text for 1px-tall stretched placeholders, preserving extent."""
    from repro.render import fonts

    for node in list(element.descendants()):
        if isinstance(node, Text) and node.data.strip():
            width = int(fonts.text_width(node.data.strip(), 16.0))
            placeholder = Element(
                "img",
                {
                    "src": "placeholder.gif",
                    "width": str(max(1, width)),
                    "height": "1",
                    "alt": "",
                },
            )
            node.replace_with(placeholder)


PARTIAL_RENDER_CLIENT_JS = """
function msiteDrawText(containerId, runs) {
  var container = document.getElementById(containerId);
  if (!container) { return; }
  for (var i = 0; i < runs.length; i++) {
    var run = runs[i];
    var span = document.createElement('span');
    span.style.position = 'absolute';
    span.style.left = run.x + 'px';
    span.style.top = run.y + 'px';
    span.style.fontSize = run.size + 'px';
    span.appendChild(document.createTextNode(run.text));
    container.appendChild(span);
  }
}
""".strip()
