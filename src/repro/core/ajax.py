"""AJAX rewriting and proxy-side AJAX actions.

§4.4: "rewrite the link that gets sent to the device, and embed an
additional function for the proxy to satisfy the request."  An original
handler like::

    $("#picframe").load('site.php?do=showpic&id=1')

is rewritten to a static proxy call ``proxy.php?action=1&p=1``; the proxy
registers action 1 as a function that fetches the origin resource (with
the user's cookie jar), adapts the result, and returns it as the AJAX
response.  "The proxy's action is no more than a function, and the
parameter p is its parameter representing the id in the original call."
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dom.document import Document
from repro.net.messages import Request, Response

# Matches the original site's ajax-invoking URLs: path?do=<action>&id=<p>
_ORIGIN_AJAX_RE = re.compile(
    r"(?P<path>[\w./]+\.php)\?do=(?P<do>\w+)&(?:amp;)?id=(?P<id>\w+)"
)


@dataclass
class AjaxAction:
    """One registered proxy action."""

    action_id: int
    name: str
    origin_template: str  # e.g. '/ajax.php?do=showpic&id={p}'
    transform: Optional[Callable[[str], str]] = None
    cacheable: bool = False
    cache_ttl_s: float = 300.0

    def origin_target(self, parameter: str) -> str:
        return self.origin_template.replace("{p}", parameter)


class AjaxActionTable:
    """The proxy's action registry, built during code generation.

    Registration is idempotent per action name and safe to call from
    concurrent request threads (the proxy merges each session's
    discovered actions into one shared table).
    """

    def __init__(self) -> None:
        self._actions: dict[int, AjaxAction] = {}
        self._by_name: dict[str, AjaxAction] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        origin_template: str,
        transform: Optional[Callable[[str], str]] = None,
        cacheable: bool = False,
        cache_ttl_s: float = 300.0,
    ) -> AjaxAction:
        with self._lock:
            existing = self._by_name.get(name)
            if existing is not None:
                return existing
            action = AjaxAction(
                action_id=self._next_id,
                name=name,
                origin_template=origin_template,
                transform=transform,
                cacheable=cacheable,
                cache_ttl_s=cache_ttl_s,
            )
            self._actions[action.action_id] = action
            self._by_name[name] = action
            self._next_id += 1
            return action

    def get(self, action_id: int) -> Optional[AjaxAction]:
        return self._actions.get(action_id)

    def by_name(self, name: str) -> Optional[AjaxAction]:
        return self._by_name.get(name)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self._actions.values())


def rewrite_ajax_calls(
    document: Document,
    table: AjaxActionTable,
    proxy_base: str = "proxy.php",
) -> int:
    """Rewrite origin AJAX URLs in href/onclick attributes to proxy calls.

    Each distinct ``do=`` action becomes one registered proxy action; the
    original ``id`` becomes the opaque parameter ``p``.  Returns the number
    of rewritten attributes.
    """
    rewritten = 0
    for element in document.all_elements():
        for attr_name in ("href", "onclick"):
            value = element.get(attr_name)
            if not value:
                continue
            new_value, count = _rewrite_string(value, table, proxy_base)
            if count:
                element.set(attr_name, new_value)
                rewritten += count
    return rewritten


def _rewrite_string(
    value: str, table: AjaxActionTable, proxy_base: str
) -> tuple[str, int]:
    count = 0

    def replace(match: re.Match) -> str:
        nonlocal count
        path = match.group("path").lstrip("/")
        action = table.register(
            name=match.group("do"),
            origin_template=(
                f"/{path}?do={match.group('do')}&id={{p}}"
            ),
        )
        count += 1
        return f"{proxy_base}?action={action.action_id}&p={match.group('id')}"

    return _ORIGIN_AJAX_RE.sub(replace, value), count


# ---------------------------------------------------------------------------
# the two-pane shell (Figure 6)

TWO_PANE_CSS = """
#msite-left { width: 38%; float: left; overflow-y: auto; height: 95%; }
#msite-right { margin-left: 40%; padding: 8px; }
.msite-item { padding: 4px 2px; border-bottom: 1px solid #ddd; }
""".strip()

TWO_PANE_JS = """
function msitePane(url) {
  var pane = document.getElementById('msite-right');
  var request = new XMLHttpRequest();
  request.open('GET', url, true);
  request.onreadystatechange = function () {
    if (request.readyState === 4 && request.status === 200) {
      pane.innerHTML = request.responseText;
    }
  };
  request.send(null);
  return false;
}
""".strip()


class TwoPaneProxy:
    """A generated proxy for the Craigslist-style two-pane adaptation.

    §4.5: the category page becomes a left pane of listing links; clicking
    one dispatches an AJAX call to the proxy, which "checks the cache for
    the downloaded page, and if it does not exist, fetches the page from
    CraigsList, performs the content adaptation, and outputs it to the
    iPad as an AJAX response."
    """

    def __init__(
        self,
        origin_host: str,
        category_path: str,
        make_client,
        cache=None,
        item_selector: str = "#toc .pl",
        content_selector: str = "#posting, .postingbody, #titlebar",
        title: str = "adapted listings",
    ) -> None:
        self.origin_host = origin_host
        self.category_path = category_path
        self.make_client = make_client
        self.cache = cache
        self.item_selector = item_selector
        self.content_selector = content_selector
        self.title = title
        self.table = AjaxActionTable()
        self.action = self.table.register(
            name="showlisting",
            origin_template="{p}",  # parameter is the listing path itself
            transform=self._extract_listing,
            cacheable=cache is not None,
        )
        self.origin_fetches = 0
        self.cache_hits = 0

    # -- page generation ------------------------------------------------

    def build_entry_page(self) -> str:
        """Fetch the category page and emit the two-pane shell."""
        from repro.dom.selectors import select
        from repro.html.parser import parse_html

        client = self.make_client()
        response = client.get(f"http://{self.origin_host}{self.category_path}")
        document = parse_html(response.text_body)
        items = []
        for row in select(document, self.item_selector):
            link = row.find(lambda el: el.tag == "a")
            if link is None or not link.get("href"):
                continue
            date = row.find(lambda el: el.has_class("itemdate"))
            price = row.find(lambda el: el.has_class("price"))
            meta = " ".join(
                part.text_content for part in (date, price) if part is not None
            )
            items.append(
                TwoPaneItem(
                    label=link.text_content,
                    action_url=(
                        f"proxy.php?action={self.action.action_id}"
                        f"&p={link.get('href')}"
                    ),
                    meta=meta,
                )
            )
        return build_two_pane_page(self.title, items)

    # -- the AJAX action ---------------------------------------------------

    def handle_action(self, parameter: str) -> str:
        """Satisfy one rewritten AJAX request."""
        cache_key = f"twopane:{parameter}"
        if self.cache is not None:
            entry = self.cache.get(cache_key)
            if entry is not None:
                self.cache_hits += 1
                return entry.data.decode("utf-8")
        client = self.make_client()
        response = client.get(f"http://{self.origin_host}{parameter}")
        self.origin_fetches += 1
        adapted = self._extract_listing(response.text_body)
        if self.cache is not None:
            self.cache.put(
                cache_key, adapted, content_type="text/html; charset=utf-8"
            )
        return adapted

    def _extract_listing(self, html: str) -> str:
        """Content adaptation: keep only the listing body and title bar."""
        from repro.dom.selectors import select
        from repro.html.parser import parse_html
        from repro.html.serializer import serialize

        document = parse_html(html)
        fragments = [
            serialize(element)
            for element in select(document, self.content_selector)
        ]
        if not fragments:
            return "<p>(listing unavailable)</p>"
        return "".join(fragments)


@dataclass
class TwoPaneItem:
    """One entry in the left (list) pane."""

    label: str
    action_url: str
    meta: str = ""


def build_two_pane_page(
    title: str,
    items: list[TwoPaneItem],
    placeholder: str = "Select a listing on the left.",
) -> str:
    """The adapted two-pane browsing page the iPad case study produces."""
    rows = "".join(
        f'<div class="msite-item">'
        f'<a href="#" onclick="return msitePane(\'{item.action_url}\');">'
        f"{item.label}</a>"
        f'<span class="itemdate"> {item.meta}</span></div>'
        for item in items
    )
    return f"""<!DOCTYPE html>
<html><head><title>{title}</title>
<meta name="viewport" content="width=device-width, initial-scale=1" />
<style type="text/css">{TWO_PANE_CSS}</style>
<script type="text/javascript">{TWO_PANE_JS}</script>
</head>
<body>
<div id="msite-left">{rows}</div>
<div id="msite-right">{placeholder}</div>
</body></html>"""
