"""Source-level filter phase.

"This can include extremely simple filters such as changing the doctype
and title, or blanketly removing css and script tags.  Slightly more
complex filters would include rewriting all images to reference a
low-fidelity image cache or different server.  The page could be
completely adapted after just a few simple filters, avoiding a DOM parse
altogether" (§3.2).

Filters are pure functions ``str -> str`` over the raw page source; the
pipeline runs them before (and sometimes instead of) the DOM parse.
"""

from __future__ import annotations

import re

_DOCTYPE_RE = re.compile(r"<!DOCTYPE[^>]*>", re.IGNORECASE)
_TITLE_RE = re.compile(
    r"(<title[^>]*>)(.*?)(</title>)", re.IGNORECASE | re.DOTALL
)
_SCRIPT_RE = re.compile(
    r"<script\b[^>]*>.*?</script\s*>|<script\b[^>]*/\s*>",
    re.IGNORECASE | re.DOTALL,
)
_STYLE_RE = re.compile(
    r"<style\b[^>]*>.*?</style\s*>", re.IGNORECASE | re.DOTALL
)
_CSS_LINK_RE = re.compile(
    r"<link\b[^>]*rel\s*=\s*[\"']?stylesheet[\"']?[^>]*>", re.IGNORECASE
)
_IMG_SRC_RE = re.compile(
    r"(<img\b[^>]*\bsrc\s*=\s*[\"'])([^\"']+)([\"'])", re.IGNORECASE
)
_EVENT_ATTR_RE = re.compile(
    r"\s+on[a-z]+\s*=\s*(\"[^\"]*\"|'[^']*')", re.IGNORECASE
)


def set_doctype(source: str, doctype: str = "html") -> str:
    """Replace (or insert) the document type declaration."""
    declaration = f"<!DOCTYPE {doctype}>"
    if _DOCTYPE_RE.search(source):
        return _DOCTYPE_RE.sub(declaration, source, count=1)
    return declaration + "\n" + source


def set_title(source: str, title: str) -> str:
    """Replace the page title (insert one if the head lacks it)."""
    if _TITLE_RE.search(source):
        return _TITLE_RE.sub(
            lambda m: m.group(1) + title + m.group(3), source, count=1
        )
    return re.sub(
        r"(<head[^>]*>)",
        lambda m: m.group(1) + f"<title>{title}</title>",
        source,
        count=1,
        flags=re.IGNORECASE,
    )


def strip_scripts(source: str, strip_event_handlers: bool = True) -> str:
    """Remove script elements (and optionally inline event handlers)."""
    source = _SCRIPT_RE.sub("", source)
    if strip_event_handlers:
        source = _EVENT_ATTR_RE.sub("", source)
    return source


def strip_css(source: str) -> str:
    """Remove style blocks and stylesheet links."""
    return _CSS_LINK_RE.sub("", _STYLE_RE.sub("", source))


def rewrite_image_sources(
    source: str, rewriter
) -> tuple[str, int]:
    """Rewrite every ``<img src>`` through ``rewriter(src) -> new_src``.

    Returns (new_source, how_many_rewritten).
    """
    count = 0

    def replace(match: re.Match) -> str:
        nonlocal count
        new_src = rewriter(match.group(2))
        if new_src != match.group(2):
            count += 1
        return match.group(1) + new_src + match.group(3)

    return _IMG_SRC_RE.sub(replace, source), count


def source_replace(
    source: str, pattern: str, replacement: str, count: int = 0
) -> tuple[str, int]:
    """Regex replacement over the page source; returns (source, hits)."""
    compiled = re.compile(pattern, re.IGNORECASE | re.DOTALL)
    return compiled.subn(replacement, source, count=count)


def census(source: str) -> dict[str, int]:
    """Quick source-level census (used by heuristics and diagnostics)."""
    return {
        "bytes": len(source.encode("utf-8")),
        "scripts": len(_SCRIPT_RE.findall(source)),
        "style_blocks": len(_STYLE_RE.findall(source)),
        "css_links": len(_CSS_LINK_RE.findall(source)),
        "images": len(_IMG_SRC_RE.findall(source)),
    }
