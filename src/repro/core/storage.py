"""Virtual filesystem for proxy-generated content.

"All of the files generated during a user's session are stored in the
file system under a (protected) subdirectory created specifically for that
user" (§3.2), and shared pre-rendered objects go to a public cache
directory.  The store is an in-memory tree so tests and simulations never
touch the host disk, with the same path semantics a real deployment needs.
All operations are guarded by one internal lock so concurrent request
threads can write session artifacts without corrupting the tree.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class StoredFile:
    """One file: bytes plus bookkeeping."""

    path: str
    data: bytes
    content_type: str = "application/octet-stream"
    created_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.data)


class VirtualFileSystem:
    """Path-addressed byte store with directory semantics."""

    def __init__(self) -> None:
        self._files: dict[str, StoredFile] = {}
        self._dirs: set[str] = {"/"}
        self.bytes_written = 0
        self._lock = threading.RLock()

    # -- directories ----------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        while "//" in path:
            path = path.replace("//", "/")
        return path

    def mkdir(self, path: str) -> str:
        """Create a directory (and parents); idempotent."""
        path = self._normalize(path).rstrip("/") or "/"
        parts = [part for part in path.split("/") if part]
        with self._lock:
            current = ""
            for part in parts:
                current += "/" + part
                self._dirs.add(current)
        return path

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return (
                self._normalize(path).rstrip("/") in self._dirs
                or path == "/"
            )

    def listdir(self, path: str) -> list[str]:
        """Immediate children (files and directories) of ``path``."""
        path = self._normalize(path).rstrip("/")
        prefix = path + "/"
        children: set[str] = set()
        with self._lock:
            for file_path in self._files:
                if file_path.startswith(prefix):
                    rest = file_path[len(prefix):]
                    children.add(rest.split("/")[0])
            for dir_path in self._dirs:
                if dir_path.startswith(prefix):
                    rest = dir_path[len(prefix):]
                    if rest:
                        children.add(rest.split("/")[0])
        return sorted(children)

    # -- files -----------------------------------------------------------

    def write(
        self,
        path: str,
        data: bytes | str,
        content_type: str = "application/octet-stream",
        now: float = 0.0,
    ) -> StoredFile:
        path = self._normalize(path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        parent = path.rsplit("/", 1)[0]
        with self._lock:
            if parent:
                self.mkdir(parent)
            stored = StoredFile(
                path=path, data=data, content_type=content_type,
                created_at=now,
            )
            self._files[path] = stored
            self.bytes_written += len(data)
            return stored

    def read(self, path: str) -> StoredFile:
        path = self._normalize(path)
        with self._lock:
            stored = self._files.get(path)
        if stored is None:
            raise FileNotFoundError(path)
        return stored

    def exists(self, path: str) -> bool:
        with self._lock:
            return self._normalize(path) in self._files

    def delete(self, path: str) -> bool:
        with self._lock:
            return self._files.pop(self._normalize(path), None) is not None

    def delete_tree(self, path: str) -> int:
        """Remove a directory and everything beneath it; returns files removed."""
        path = self._normalize(path).rstrip("/")
        prefix = path + "/"
        with self._lock:
            doomed = [
                p for p in self._files if p.startswith(prefix) or p == path
            ]
            for file_path in doomed:
                del self._files[file_path]
            self._dirs = {
                d
                for d in self._dirs
                if not (d == path or d.startswith(prefix))
            }
            return len(doomed)

    def total_bytes(self, prefix: str = "/") -> int:
        prefix = self._normalize(prefix)
        with self._lock:
            return sum(
                f.size
                for p, f in self._files.items()
                if p.startswith(prefix)
            )

    def file_count(self, prefix: str = "/") -> int:
        prefix = self._normalize(prefix)
        with self._lock:
            return sum(1 for p in self._files if p.startswith(prefix))
