"""Multi-page proxy deployments.

The visual tool generates one proxy shell *per originating page* (§3.2);
a real mobilization covers several pages — the paper's deployment adapts
the entry page, and thread/forum pages keep their own adaptations.  A
:class:`ProxyDeployment` hosts many generated proxies behind one host
name, sharing the session manager (one cookie jar per user across all
pages), the pre-render cache, and the file store.

Routing: ``/<name>.php`` dispatches to the proxy registered under
``name``; the bare root serves the deployment's default page.  Each
member proxy keeps its own counters; the deployment aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.pipeline import ProxyServices
from repro.core.proxy import MSiteProxy, ProxyCounters
from repro.core.sessions import SessionManager
from repro.core.spec import AdaptationSpec
from repro.errors import CodegenError
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)


@dataclass
class DeploymentEntry:
    name: str
    proxy: MSiteProxy


class ProxyDeployment(Application):
    """Several generated page proxies behind one mobile host."""

    def __init__(
        self, services: ProxyServices, default: Optional[str] = None
    ) -> None:
        self.services = services
        self.sessions = SessionManager(
            services.storage, clock=services.clock
        )
        self._entries: dict[str, DeploymentEntry] = {}
        self._default = default

    # -- registration -----------------------------------------------------

    def add_page(self, name: str, spec: AdaptationSpec) -> MSiteProxy:
        """Deploy one generated proxy under ``/<name>.php``."""
        if name in self._entries:
            raise CodegenError(f"deployment already has a page {name!r}")
        proxy = MSiteProxy(
            spec, self.services, proxy_base=f"{name}.php", namespace=name
        )
        # All member proxies share one session universe: a user carries
        # the same jar (and login state) from page to page.
        proxy.sessions = self.sessions
        self._entries[name] = DeploymentEntry(name=name, proxy=proxy)
        if self._default is None:
            self._default = name
        return proxy

    def page(self, name: str) -> MSiteProxy:
        return self._entries[name].proxy

    @property
    def page_names(self) -> list[str]:
        return sorted(self._entries)

    # -- dispatch ---------------------------------------------------------

    def handle(self, request: Request) -> Response:
        path = request.url.path.strip("/")
        if path == "metrics":
            # One registry spans every member proxy (series are labelled
            # per page), so the deployment exposes a single endpoint.
            return Response.binary(
                render_prometheus(
                    self.services.observability.registry
                ).encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
            )
        if path == "traces":
            return Response.binary(
                self.services.observability.traces.dump_json().encode(
                    "utf-8"
                ),
                "application/json; charset=utf-8",
            )
        if not path and self._default is not None:
            return self._entries[self._default].proxy.handle(request)
        name = path.removesuffix(".php")
        entry = self._entries.get(name)
        if entry is None:
            return Response.not_found(
                f"no adapted page {name!r}; available: "
                f"{', '.join(self.page_names)}"
            )
        return entry.proxy.handle(request)

    # -- aggregate accounting -------------------------------------------------

    def total_counters(self) -> ProxyCounters:
        total = ProxyCounters()
        for entry in self._entries.values():
            snap = entry.proxy.counters.snapshot()
            total.add(
                **{name: getattr(snap, name) for name in ProxyCounters.FIELDS}
            )
        return total
