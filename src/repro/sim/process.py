"""Generator-based process model on top of the event queue.

A *process* is a Python generator that yields simulation requests:

* ``Delay(seconds)`` — suspend for a span of simulated time,
* ``Acquire(resource)`` — wait for one unit of a :class:`Resource`,
* ``Release(resource)`` — return a unit (never blocks),
* another process handle — wait for that process to finish.

This is the same modelling style as SimPy, rebuilt from scratch so the
reproduction has no external dependencies and fully deterministic ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from repro.sim.clock import Clock
from repro.sim.events import EventQueue
from repro.sim.resources import Resource


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for ``seconds`` of simulated time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("delay cannot be negative")


@dataclass(frozen=True)
class Acquire:
    """Wait until one unit of ``resource`` is available, then hold it."""

    resource: Resource


@dataclass(frozen=True)
class Release:
    """Return one held unit of ``resource``; resumes a waiter if any."""

    resource: Resource


class Process:
    """Handle to a running simulation process."""

    def __init__(self, name: str, generator: Generator[Any, Any, Any]) -> None:
        self.name = name
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self._waiters: list[Process] = []

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulation:
    """Deterministic discrete-event simulation kernel."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self._queue = EventQueue()
        self._live_processes = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Start a new process; it first runs at the current instant."""
        process = Process(name, generator)
        self._live_processes += 1
        self._queue.push(self.now, lambda: self._step(process, None))
        return process

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run a bare callback after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._queue.push(self.now + delay, action)

    def run(self, until: float | None = None) -> float:
        """Drain events, optionally stopping the clock at ``until`` seconds.

        Returns the final simulated time.  With ``until`` set, events due
        after the horizon stay queued and the clock stops exactly at the
        horizon, matching a fixed measurement window.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return self.now
            event = self._queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            event.action()
        if until is not None and self.now < until:
            self.clock.advance_to(until)
        return self.now

    # ------------------------------------------------------------------
    # process stepping

    def _step(self, process: Process, send_value: Any) -> None:
        """Advance one process until it blocks again or finishes."""
        try:
            request = process.generator.send(send_value)
        except StopIteration as stop:
            self._finish(process, stop.value)
            return
        self._dispatch(process, request)

    def _dispatch(self, process: Process, request: Any) -> None:
        if isinstance(request, Delay):
            self._queue.push(
                self.now + request.seconds, lambda: self._step(process, None)
            )
        elif isinstance(request, Acquire):
            request.resource._enqueue(process, self)
        elif isinstance(request, Release):
            request.resource._release(self)
            self._queue.push(self.now, lambda: self._step(process, None))
        elif isinstance(request, Process):
            if request.finished:
                self._queue.push(
                    self.now, lambda: self._step(process, request.result)
                )
            else:
                request._waiters.append(process)
        else:
            raise TypeError(f"process {process.name!r} yielded {request!r}")

    def _finish(self, process: Process, result: Any) -> None:
        process.finished = True
        process.result = result
        self._live_processes -= 1
        for waiter in process._waiters:
            self._queue.push(self.now, lambda w=waiter: self._step(w, result))
        process._waiters.clear()

    # Resources call back into the kernel to resume blocked processes.
    def _resume(self, process: Process) -> None:
        self._queue.push(self.now, lambda: self._step(process, None))


def run_all(sim: Simulation, generators: Iterable[Generator[Any, Any, Any]]) -> float:
    """Convenience: spawn every generator and run the simulation to quiescence."""
    for index, generator in enumerate(generators):
        sim.spawn(generator, name=f"batch-{index}")
    return sim.run()
