"""Deterministic random number generation for experiments.

The paper marks each request with a U[0,1] draw to decide whether it needs
a full browser instance.  We reproduce that with a seeded xorshift64*
generator so runs are identical across platforms and Python versions
(``random.Random`` is stable too, but owning the generator keeps the
substrate dependency-free and makes the stream explicit in the design).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class DeterministicRandom:
    """Seeded xorshift64* generator with the small API experiments need."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        # Zero is a fixed point of xorshift; nudge it away deterministically.
        self._state = (seed & _MASK64) or 0x2545F4914F6CDD1D

    def next_u64(self) -> int:
        """Next raw 64-bit value."""
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def uniform(self) -> float:
        """U[0,1) double with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def uniform_range(self, low: float, high: float) -> float:
        """U[low, high)."""
        if high < low:
            raise ValueError("uniform_range requires low <= high")
        return low + (high - low) * self.uniform()

    def randint(self, low: int, high: int) -> int:
        """Integer uniform on [low, high] inclusive."""
        if high < low:
            raise ValueError("randint requires low <= high")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items: list):
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise IndexError("choice from empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (for interarrival times)."""
        import math

        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        u = self.uniform()
        # Guard the log(0) corner: uniform() can return exactly 0.0.
        return -mean * math.log(1.0 - u)

    def fork(self, stream: int) -> "DeterministicRandom":
        """Derive an independent, reproducible substream."""
        return DeterministicRandom(self.next_u64() ^ (stream * 0x9E3779B97F4A7C15))
