"""Deterministic discrete-event simulation substrate.

The paper's scalability experiment (Figure 7) measures proxy throughput on
dual-core hardware over one-minute measurement windows.  We reproduce that
protocol with a small process-based discrete-event simulator: generator
processes yield timeouts and resource requests, and a scheduler advances a
simulated clock deterministically.

The same simulated clock drives the device page-load timing models used in
Table 1, so every number in the harness is reproducible bit-for-bit.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.process import Delay, Acquire, Release, Simulation, Process
from repro.sim.resources import Resource, ResourceBusy
from repro.sim.rng import DeterministicRandom
from repro.sim.metrics import Counter, Tally, WindowedCounter

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Delay",
    "Acquire",
    "Release",
    "Simulation",
    "Process",
    "Resource",
    "ResourceBusy",
    "DeterministicRandom",
    "Counter",
    "Tally",
    "WindowedCounter",
]
