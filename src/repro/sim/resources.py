"""Countable resources with FIFO wait queues.

Used to model the proxy host's CPU cores in the Figure 7 scalability
experiment: a browser render and a lightweight proxy request both occupy a
core for their service time; requests queue when both cores are busy.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.process import Process, Simulation


class ResourceBusy(RuntimeError):
    """Raised by :meth:`Resource.try_acquire` when no unit is free."""


class Resource:
    """A pool of ``capacity`` identical units with a FIFO waiter queue."""

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("resource capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Process] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Processes blocked waiting for a unit."""
        return len(self._waiters)

    def try_acquire(self) -> None:
        """Take a unit immediately or raise :class:`ResourceBusy`.

        For callers outside the process model (e.g. synchronous tests).
        """
        if self._in_use >= self.capacity:
            raise ResourceBusy(f"{self.name}: all {self.capacity} units busy")
        self._in_use += 1

    def release_direct(self) -> None:
        """Return a unit taken via :meth:`try_acquire` (no waiter handoff)."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self._in_use -= 1

    # ------------------------------------------------------------------
    # kernel-facing API (called by Simulation._dispatch)

    def _enqueue(self, process: "Process", sim: "Simulation") -> None:
        if self._in_use < self.capacity:
            self._in_use += 1
            sim._resume(process)
        else:
            self._waiters.append(process)

    def _release(self, sim: "Simulation") -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        if self._waiters:
            # Hand the unit straight to the first waiter: in_use stays flat.
            waiter = self._waiters.popleft()
            sim._resume(waiter)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, in_use={self._in_use}/{self.capacity},"
            f" queued={len(self._waiters)})"
        )
