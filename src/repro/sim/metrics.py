"""Measurement primitives for experiments.

``WindowedCounter`` reproduces the paper's protocol of counting satisfied
requests over a one-minute measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only increase")
        self.value += by


@dataclass
class Tally:
    """Streaming mean / variance / extrema over observed samples."""

    name: str = "tally"
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples observed")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance of the observed samples."""
        if self.count == 0:
            raise ValueError("no samples observed")
        mean = self.mean
        # Clamp tiny negative values caused by floating-point cancellation.
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class WindowedCounter:
    """Counts events that fall inside a fixed measurement window.

    The paper measures throughput as requests satisfied during a one-minute
    window; events completing outside [start, end) are ignored.
    """

    def __init__(self, start: float, duration: float) -> None:
        if duration <= 0:
            raise ValueError("window duration must be positive")
        self.start = start
        self.end = start + duration
        self.count = 0

    def record(self, timestamp: float) -> bool:
        """Count the event if it falls inside the window; report whether it did."""
        if self.start <= timestamp < self.end:
            self.count += 1
            return True
        return False

    @property
    def rate_per_minute(self) -> float:
        """Counted events scaled to a per-minute rate."""
        return self.count * 60.0 / (self.end - self.start)
