"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` so that simultaneous events fire
in the order they were scheduled, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by firing time then insertion order."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it comes due."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        event = Event(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
