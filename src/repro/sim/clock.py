"""Simulated wall clock.

All timing in the reproduction flows through a :class:`Clock` so that
experiments are deterministic and never depend on host speed.
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time.

        Negative deltas are rejected: simulated time never flows backwards.
        """
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
