"""Named, reproducible traffic scenarios.

A scenario composes one arrival process with one population model over
one site family and compiles, from a single seed, into a *trace*: the
ordered list of planned requests (arrival offset, path, device, session)
the engine replays against a real cluster.  Same seed ⇒ byte-identical
trace — the reproducibility contract the property suite pins down.

The six named scenarios:

* ``uniform-forum`` — the legacy bench shape: a closed loop of phones
  cycling uniformly over the forum surface.  The control scenario.
* ``zipf-news``     — open Poisson arrivals over the news section front
  with Zipfian page popularity, mixed devices, and session churn.
* ``flash-crowd``   — a breaking-news burst against the forum: base
  load ramping to a bounded peak, held, then decaying.
* ``bot-storm``     — a crawler wave over the news surface: most hits
  are cookie-less bots walking the long tail uniformly.
* ``mixed-devices`` — a compressed diurnal day on the forum with all
  three device classes represented.
* ``content-churn`` — steady reader traffic on the storable news front
  while the newsroom keeps publishing edits: ~10% of arrivals coincide
  with an origin revision, so warm misses dominate and the delta fast
  path (re-adapt only what changed) carries the load.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.rng import DeterministicRandom
from repro.workload.arrivals import ClosedLoop, Diurnal, FlashCrowd, Poisson
from repro.workload.population import (
    BotMix,
    DeviceMix,
    SessionPool,
    ZipfianSampler,
)

# The navigable surface per site family, most popular first (rank 1 is
# the entry page).  News feed offsets follow the windowing the section
# spec sets up: the entry keeps 6 teasers, each AJAX batch serves 8.
FORUM_SURFACE: tuple[str, ...] = (
    "proxy.php",
    "proxy.php?page=forums",
    "proxy.php?file=snapshot.jpg",
    "proxy.php?page=login",
    "proxy.php?page=nav",
)
NEWS_SURFACE: tuple[str, ...] = (
    "proxy.php",
    "proxy.php?action=1&p=6",
    "proxy.php?page=headlines-p2",
    "proxy.php?action=1&p=14",
    "proxy.php?page=headlines-p3",
    "proxy.php?page=about",
    "proxy.php?action=1&p=22",
)
# The fastpath spec drops the AJAX rewrite (live actions exclude a
# bundle from the cache), so its surface is the entry page plus the
# static subpages only.
NEWS_FASTPATH_SURFACE: tuple[str, ...] = (
    "proxy.php",
    "proxy.php?page=headlines-p2",
    "proxy.php?page=headlines-p3",
    "proxy.php?page=about",
)


@dataclass(frozen=True)
class PlannedRequest:
    """One compiled trace entry."""

    index: int
    at_s: Optional[float]  # None for closed-loop arrivals
    path: str  # path + query, relative to the proxy host
    device: str
    user_agent: str
    session: str  # "" means a fresh, cookie-less session (bots)
    bot: bool = False
    #: This arrival coincides with an origin content revision (the
    #: engine runs the scenario's mutator before issuing the request).
    mutate: bool = False


@dataclass(frozen=True)
class Scenario:
    """One named scenario: knobs plus its arrival/population recipe."""

    name: str
    site: str  # "forum" | "news"
    description: str
    arrivals: object  # ClosedLoop | Poisson | FlashCrowd | Diurnal
    surface: tuple[str, ...]
    zipf_exponent: Optional[float]  # None -> uniform popularity
    devices: DeviceMix
    churn: float
    max_sessions: int
    bot_fraction: float
    seed: int
    requests: Optional[int] = None  # closed-loop only; open = arrivals
    default_workers: int = 1
    #: Fraction of arrivals that coincide with an origin revision
    #: (content churn).  Zero for the classic read-only scenarios.
    mutate_fraction: float = 0.0

    def knobs(self) -> dict:
        """The scenario's configuration, JSON-stable, for fingerprints."""
        arrival = {"kind": type(self.arrivals).__name__}
        arrival.update(
            {
                key: value
                for key, value in vars(self.arrivals).items()
                if isinstance(value, (int, float, str))
            }
        )
        knobs = {
            "name": self.name,
            "site": self.site,
            "arrivals": arrival,
            "surface": list(self.surface),
            "zipf_exponent": self.zipf_exponent,
            "devices": [list(pair) for pair in self.devices.weights],
            "churn": self.churn,
            "max_sessions": self.max_sessions,
            "bot_fraction": self.bot_fraction,
            "seed": self.seed,
        }
        if self.mutate_fraction:
            # Included only when set so the read-only scenarios keep
            # their pre-churn fingerprints (stable BENCH row keys).
            knobs["mutate_fraction"] = self.mutate_fraction
        return knobs

    def fingerprint(self, workers: int) -> str:
        """Stable key suffix for the BENCH upsert (config + fleet)."""
        payload = json.dumps(
            {"config": self.knobs(), "workers": workers},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    # -- trace compilation -------------------------------------------------

    def build_trace(self, seed: Optional[int] = None) -> list[PlannedRequest]:
        """Compile the scenario into its deterministic request trace."""
        root = DeterministicRandom(self.seed if seed is None else seed)
        arrival_rng = root.fork(1)
        page_rng = root.fork(2)
        device_rng = root.fork(3)
        session_rng = root.fork(4)
        bot_rng = root.fork(5)
        mutate_rng = root.fork(6)

        times = self.arrivals.times(arrival_rng)
        sampler = (
            ZipfianSampler(self.surface, self.zipf_exponent)
            if self.zipf_exponent is not None
            else None
        )
        pool = SessionPool(churn=self.churn, max_sessions=self.max_sessions)
        bots = BotMix(fraction=self.bot_fraction)

        trace: list[PlannedRequest] = []
        for index, at_s in enumerate(times):
            # One draw per arrival keeps the stream index-stable; the
            # read-only scenarios never draw so their traces are
            # bit-identical to the pre-churn compiler.
            mutated = (
                self.mutate_fraction > 0
                and mutate_rng.uniform() < self.mutate_fraction
            )
            if bots.is_bot(bot_rng):
                # Crawlers walk the tail uniformly, cookie-less.
                path = self.surface[
                    page_rng.randint(0, len(self.surface) - 1)
                ]
                trace.append(
                    PlannedRequest(
                        index=index,
                        at_s=at_s,
                        path=path,
                        device="bot",
                        user_agent=bots.user_agent,
                        session="",
                        bot=True,
                        mutate=mutated,
                    )
                )
                continue
            if sampler is not None:
                path = sampler.sample(page_rng)
            else:
                path = self.surface[index % len(self.surface)]
            device, user_agent = self.devices.sample(device_rng)
            trace.append(
                PlannedRequest(
                    index=index,
                    at_s=at_s,
                    path=path,
                    device=device,
                    user_agent=user_agent,
                    session=pool.next_session(session_rng),
                    mutate=mutated,
                )
            )
        return trace


_BUILDERS: dict[str, Callable[[bool], Scenario]] = {}


def _scenario(name: str):
    def decorator(fn: Callable[[bool], Scenario]):
        _BUILDERS[name] = fn
        return fn

    return decorator


def scenario_names() -> list[str]:
    return sorted(_BUILDERS)


def get_scenario(name: str, smoke: bool = False) -> Scenario:
    """Look up a named scenario (its smoke variant shrinks the run)."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r}; have {', '.join(scenario_names())}"
        )
    return builder(smoke)


@_scenario("uniform-forum")
def _uniform_forum(smoke: bool) -> Scenario:
    requests = 120 if smoke else 400
    return Scenario(
        name="uniform-forum",
        site="forum",
        description="closed loop of phones cycling the forum uniformly",
        arrivals=ClosedLoop(requests=requests),
        surface=FORUM_SURFACE,
        zipf_exponent=None,
        devices=DeviceMix((("phone", 1.0),)),
        churn=0.1,
        max_sessions=32,
        bot_fraction=0.0,
        seed=0x0F0D_01,
        requests=requests,
    )


@_scenario("zipf-news")
def _zipf_news(smoke: bool) -> Scenario:
    return Scenario(
        name="zipf-news",
        site="news",
        description=(
            "open Poisson arrivals over the news front, Zipfian pages, "
            "mixed devices, churning sessions"
        ),
        arrivals=Poisson(
            rate_rps=8.0 if smoke else 12.0,
            duration_s=15.0 if smoke else 40.0,
        ),
        surface=NEWS_SURFACE,
        zipf_exponent=1.1,
        devices=DeviceMix(
            (("phone", 0.6), ("tablet", 0.25), ("desktop", 0.15))
        ),
        churn=0.3,
        max_sessions=48,
        bot_fraction=0.0,
        seed=0x21BF_02,
    )


@_scenario("flash-crowd")
def _flash_crowd(smoke: bool) -> Scenario:
    if smoke:
        arrivals = FlashCrowd(
            base_rps=4.0, peak_rps=40.0, ramp_s=3.0, hold_s=2.0,
            duration_s=8.0,
        )
    else:
        arrivals = FlashCrowd(
            base_rps=5.0, peak_rps=80.0, ramp_s=8.0, hold_s=4.0,
            duration_s=24.0,
        )
    return Scenario(
        name="flash-crowd",
        site="forum",
        description=(
            "breaking-news burst on the forum: ramp to a bounded peak, "
            "hold, decay; entry-page heavy"
        ),
        arrivals=arrivals,
        surface=FORUM_SURFACE,
        zipf_exponent=1.6,  # the crowd piles onto the story's entry page
        devices=DeviceMix((("phone", 0.8), ("tablet", 0.2))),
        churn=0.5,  # a burst is mostly first-time visitors
        max_sessions=96,
        bot_fraction=0.0,
        seed=0xF1A5_03,
        default_workers=2,
    )


@_scenario("bot-storm")
def _bot_storm(smoke: bool) -> Scenario:
    return Scenario(
        name="bot-storm",
        site="news",
        description=(
            "crawler wave on the news surface: cookie-less bots walk "
            "the long tail while a human minority reads by popularity"
        ),
        arrivals=Poisson(
            rate_rps=8.0 if smoke else 10.0,
            duration_s=12.0 if smoke else 36.0,
        ),
        surface=NEWS_SURFACE,
        zipf_exponent=1.1,
        devices=DeviceMix((("phone", 0.7), ("desktop", 0.3))),
        churn=0.2,
        max_sessions=32,
        bot_fraction=0.6,
        seed=0xB07_04,
    )


@_scenario("content-churn")
def _content_churn(smoke: bool) -> Scenario:
    requests = 60 if smoke else 240
    return Scenario(
        name="content-churn",
        site="news",
        description=(
            "steady readers on the storable news front while the "
            "newsroom keeps publishing edits; warm misses dominate and "
            "the delta fast path re-adapts only what changed"
        ),
        arrivals=ClosedLoop(requests=requests),
        surface=NEWS_FASTPATH_SURFACE,
        zipf_exponent=1.2,  # readers pile onto the revised front page
        devices=DeviceMix((("phone", 0.7), ("tablet", 0.3))),
        churn=0.2,
        max_sessions=24,
        bot_fraction=0.0,
        seed=0xDE17A_06,
        requests=requests,
        mutate_fraction=0.1,
    )


@_scenario("mixed-devices")
def _mixed_devices(smoke: bool) -> Scenario:
    return Scenario(
        name="mixed-devices",
        site="forum",
        description=(
            "a compressed diurnal day on the forum with phones, tablets "
            "and desktops sharing the fleet"
        ),
        arrivals=Diurnal(
            mean_rps=6.0 if smoke else 8.0,
            duration_s=20.0 if smoke else 45.0,
            period_s=20.0 if smoke else 45.0,
        ),
        surface=FORUM_SURFACE,
        zipf_exponent=0.9,
        devices=DeviceMix(
            (("phone", 0.45), ("tablet", 0.2), ("desktop", 0.35))
        ),
        churn=0.25,
        max_sessions=64,
        bot_fraction=0.0,
        seed=0xD1A7_05,
    )
