"""The workload engine: seeded traffic scenarios against a real fleet."""

from repro.workload.arrivals import ClosedLoop, Diurnal, FlashCrowd, Poisson
from repro.workload.engine import (
    ScenarioReport,
    build_scenario_origins,
    build_scenario_spec,
    format_report,
    run_scenario,
)
from repro.workload.population import (
    BOT_UA,
    DEVICE_AGENTS,
    BotMix,
    DeviceMix,
    SessionPool,
    ZipfianSampler,
)
from repro.workload.scenarios import (
    PlannedRequest,
    Scenario,
    get_scenario,
    scenario_names,
)

__all__ = [
    "BOT_UA",
    "BotMix",
    "ClosedLoop",
    "DEVICE_AGENTS",
    "DeviceMix",
    "Diurnal",
    "FlashCrowd",
    "PlannedRequest",
    "Poisson",
    "Scenario",
    "ScenarioReport",
    "SessionPool",
    "ZipfianSampler",
    "build_scenario_origins",
    "build_scenario_spec",
    "format_report",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
