"""The scenario engine: replay a compiled trace against a real fleet.

The engine is sim-clock-driven for *scenario time* and wall-clock-honest
for *service time*: each planned arrival advances the deployment's
simulated clock to its offset (so cache TTLs, session expiry, and
invalidation timing follow the scenario's day), while per-request
latency and throughput are measured on the real thread pool with
``time.perf_counter`` — the same split the Figure 7 wall-clock mode
uses.

A request is counted as a *non-degraded 5xx* when its status is >= 500
and the response carries no ``X-MSite-Degraded`` marker: honest
degradation under injected faults is acceptable, a bare server error at
warm cache is not.  The tier-1 scenario smokes gate on that count being
zero.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.deployment import ClusterDeployment
from repro.core.spec import AdaptationSpec
from repro.net.client import HttpClient
from repro.net.cookies import CookieJar
from repro.sim.clock import Clock
from repro.workload.population import DEVICE_AGENTS
from repro.workload.scenarios import PlannedRequest, Scenario, get_scenario

FORUM_HOST = "www.sawmillcreek.org"
PROXY_HOST = "m.workload.example"


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class ScenarioReport:
    """What one scenario run measured."""

    scenario: str
    site: str
    seed: int
    workers: int
    requests: int
    completed: int
    wall_clock_s: float
    sim_duration_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    error_rate: float
    errors_5xx: int
    non_degraded_5xx: int
    degraded: int
    statuses: dict[int, int] = field(default_factory=dict)
    fingerprint: str = ""
    autoscaled: bool = False
    peak_workers: int = 0
    final_workers: int = 0
    scale_ups: int = 0
    scale_downs: int = 0

    def bench_row(self) -> dict:
        """The row merge-written into ``BENCH_pipeline.json``."""
        row = {
            "scenario": self.scenario,
            "site": self.site,
            "seed": self.seed,
            "workers": self.workers,
            "requests": self.requests,
            "completed": self.completed,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "sim_duration_s": round(self.sim_duration_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "error_rate": round(self.error_rate, 5),
            "errors_5xx": self.errors_5xx,
            "non_degraded_5xx": self.non_degraded_5xx,
            "degraded": self.degraded,
            "statuses": {
                str(status): count
                for status, count in sorted(self.statuses.items())
            },
        }
        if self.autoscaled:
            row["autoscaled"] = True
            row["peak_workers"] = self.peak_workers
            row["final_workers"] = self.final_workers
            row["scale_ups"] = self.scale_ups
            row["scale_downs"] = self.scale_downs
        return row


def build_scenario_spec(scenario: Scenario) -> AdaptationSpec:
    """The adaptation spec a scenario's site family runs under."""
    if scenario.site == "forum":
        from repro.bench.workload import standard_forum_spec

        spec = standard_forum_spec(FORUM_HOST)
        spec.add("ajax_rewrite")
        # The forum surface includes an AJAX nav pane (?page=nav).
        from repro.core.spec import ObjectSelector

        spec.add(
            "ajax_subpage", ObjectSelector.css("#navlinks"),
            subpage_id="nav", title="Navigation",
        )
        return spec
    if scenario.site == "news":
        if scenario.mutate_fraction > 0:
            # Churn scenarios exercise the delta fast path, which only
            # engages for storable bundles — the fastpath variant drops
            # the AJAX rewrite that excludes a page from the cache.
            from repro.sites.news.spec import news_fastpath_spec

            return news_fastpath_spec()
        from repro.sites.news.spec import news_section_spec

        return news_section_spec()
    raise ValueError(f"scenario site {scenario.site!r} has no spec builder")


def build_scenario_origins(scenario: Scenario) -> dict:
    """Fresh origin applications for one scenario run."""
    if scenario.site == "forum":
        from repro.sites.forum.app import ForumApplication

        return {FORUM_HOST: ForumApplication()}
    if scenario.site == "news":
        from repro.sites.news.app import NewsApplication
        from repro.sites.news.spec import NEWS_HOST

        return {NEWS_HOST: NewsApplication()}
    raise ValueError(f"scenario site {scenario.site!r} has no origins")


def build_scenario_mutator(scenario: Scenario, origins: dict):
    """The origin-revision hook for churn scenarios, or ``None``.

    Called once per planned request flagged ``mutate=True``, before the
    request is issued.  Revisions are internally serialized and pure in
    (seed, revision index), so the trace stays reproducible even though
    client threads race to the next edit.
    """
    if scenario.mutate_fraction <= 0:
        return None
    if scenario.site == "news":
        from repro.sites.news.spec import NEWS_HOST

        newsroom = origins[NEWS_HOST].newsroom
        return lambda: newsroom.revise()
    raise ValueError(
        f"scenario site {scenario.site!r} has no origin mutator"
    )


class _SimClockPacer:
    """Advance the shared simulated clock monotonically to arrivals."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._lock = threading.Lock()

    def advance_to(self, at_s: Optional[float]) -> None:
        if at_s is None:
            return
        with self._lock:
            if at_s > self.clock.now:
                self.clock.advance_to(at_s)


def run_scenario(
    name_or_scenario,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    smoke: bool = False,
    client_threads: int = 8,
    origins: Optional[dict] = None,
    spec: Optional[AdaptationSpec] = None,
    autoscale: bool = False,
    min_workers: int = 1,
) -> ScenarioReport:
    """Compile the scenario's trace and replay it against a fleet.

    The run starts from a warm cache: every surface path is visited
    once per device class before the measured replay, so the report
    reflects steady-state behaviour (the tier-1 gate's "zero
    non-degraded 5xx at warm cache" criterion).

    With ``autoscale=True`` the fleet starts at ``min_workers`` and the
    controller may grow it up to ``workers`` (the configured size acts
    as the ceiling); scale decisions are paced on the scenario's
    simulated clock so the decision trace is a function of the seed.
    """
    scenario = (
        name_or_scenario
        if isinstance(name_or_scenario, Scenario)
        else get_scenario(name_or_scenario, smoke=smoke)
    )
    fleet = workers if workers is not None else scenario.default_workers
    trace = scenario.build_trace(seed=seed)
    spec = spec or build_scenario_spec(scenario)
    origins = origins or build_scenario_origins(scenario)
    mutator = build_scenario_mutator(scenario, origins)

    clock = Clock()
    pacer = _SimClockPacer(clock)
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    degraded = 0
    non_degraded_5xx = 0
    counters_lock = threading.Lock()

    start_workers = min(min_workers, fleet) if autoscale else fleet
    with ClusterDeployment(
        spec=spec,
        origins=origins,
        workers=start_workers,
        clock=clock,
        site=scenario.name,
    ) as cluster:
        scaler = None
        scaler_lock = threading.Lock()
        peak_workers = [cluster.fleet_size]
        if autoscale:
            from repro.autoscale import Autoscaler, AutoscalerConfig

            scaler = Autoscaler(
                cluster,
                config=AutoscalerConfig(
                    min_workers=start_workers,
                    max_workers=max(fleet, start_workers),
                    max_consumers=4,
                ),
                clock=clock,
            )

        def _maybe_scale() -> None:
            # Client threads race to the controller; the lock keeps the
            # sample/decide/apply sequence atomic per tick.
            if scaler is None:
                return
            with scaler_lock:
                scaler.maybe_tick()
                peak_workers[0] = max(peak_workers[0], cluster.fleet_size)

        sessions: dict[str, tuple[HttpClient, threading.Lock]] = {}
        sessions_lock = threading.Lock()

        def _session_client(key: str) -> tuple[HttpClient, threading.Lock]:
            if not key:  # cookie-less bot: fresh jar every hit
                return (
                    HttpClient(
                        {PROXY_HOST: cluster}, jar=CookieJar(), clock=clock
                    ),
                    threading.Lock(),
                )
            with sessions_lock:
                entry = sessions.get(key)
                if entry is None:
                    entry = (
                        HttpClient(
                            {PROXY_HOST: cluster},
                            jar=CookieJar(),
                            clock=clock,
                        ),
                        threading.Lock(),
                    )
                    sessions[key] = entry
                return entry

        def _issue(planned: PlannedRequest, record: bool) -> None:
            nonlocal degraded, non_degraded_5xx
            if planned.mutate and mutator is not None:
                mutator()
            client, lock = _session_client(planned.session)
            pacer.advance_to(planned.at_s)
            if record:
                _maybe_scale()
            url = f"http://{PROXY_HOST}/{planned.path}"
            with lock:
                started = time.perf_counter()
                response = client.get(url, User_Agent=planned.user_agent)
                elapsed = time.perf_counter() - started
            if not record:
                return
            is_degraded = response.headers.get("X-MSite-Degraded") is not None
            with counters_lock:
                latencies.append(elapsed)
                statuses[response.status] = (
                    statuses.get(response.status, 0) + 1
                )
                if is_degraded:
                    degraded += 1
                if response.status >= 500 and not is_degraded:
                    non_degraded_5xx += 1

        # -- warm-up: one pass over the surface per device class --------
        for device, user_agent in DEVICE_AGENTS.items():
            for path in scenario.surface:
                _issue(
                    PlannedRequest(
                        index=-1,
                        at_s=None,
                        path=path,
                        device=device,
                        user_agent=user_agent,
                        session=f"warmup-{device}",
                    ),
                    record=False,
                )

        # -- measured replay --------------------------------------------
        cursor = [0]

        def _client_thread() -> None:
            while True:
                with counters_lock:
                    position = cursor[0]
                    if position >= len(trace):
                        return
                    cursor[0] = position + 1
                _issue(trace[position], record=True)

        threads = [
            threading.Thread(
                target=_client_thread, name=f"workload-client-{i}"
            )
            for i in range(min(client_threads, max(1, len(trace))))
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_clock = time.perf_counter() - started
        final_workers = cluster.fleet_size
        scale_ups = scale_downs = 0
        if scaler is not None:
            scale_ups = sum(1 for d in scaler.decisions if d.action == "up")
            scale_downs = sum(
                1 for d in scaler.decisions if d.action == "down"
            )

    errors_5xx = sum(
        count for status, count in statuses.items() if status >= 500
    )
    completed = len(latencies)
    return ScenarioReport(
        scenario=scenario.name,
        site=scenario.site,
        seed=seed if seed is not None else scenario.seed,
        workers=fleet,
        requests=len(trace),
        completed=completed,
        wall_clock_s=wall_clock,
        sim_duration_s=clock.now,
        throughput_rps=completed / wall_clock if wall_clock > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        error_rate=errors_5xx / completed if completed else 0.0,
        errors_5xx=errors_5xx,
        non_degraded_5xx=non_degraded_5xx,
        degraded=degraded,
        statuses=statuses,
        fingerprint=scenario.fingerprint(fleet),
        autoscaled=autoscale,
        peak_workers=peak_workers[0] if autoscale else fleet,
        final_workers=final_workers if autoscale else fleet,
        scale_ups=scale_ups,
        scale_downs=scale_downs,
    )


def format_report(report: ScenarioReport) -> str:
    """Human-readable scenario summary for the CLI."""
    from repro.bench.reporting import format_table

    rows = [
        ["scenario", report.scenario],
        ["site", report.site],
        ["workers", str(report.workers)],
        ["requests", str(report.requests)],
        ["completed", str(report.completed)],
        ["sim duration", f"{report.sim_duration_s:.1f}s"],
        ["wall clock", f"{report.wall_clock_s:.2f}s"],
        ["throughput", f"{report.throughput_rps:,.1f} req/s"],
        ["p50", f"{report.p50_ms:.2f} ms"],
        ["p99", f"{report.p99_ms:.2f} ms"],
        ["error rate", f"{report.error_rate:.2%}"],
        ["degraded", str(report.degraded)],
        ["non-degraded 5xx", str(report.non_degraded_5xx)],
    ]
    if report.autoscaled:
        rows.extend(
            [
                ["peak workers", str(report.peak_workers)],
                ["final workers", str(report.final_workers)],
                [
                    "scale actions",
                    f"{report.scale_ups} up / {report.scale_downs} down",
                ],
            ]
        )
    return format_table(["metric", "value"], rows)
