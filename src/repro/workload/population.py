"""Population models: who issues requests, for what, from which device.

The page-popularity model is Zipfian — the desktop/mobile page-
characteristics measurements (PAPERS.md) show real page populations are
heavy-tailed, so a uniform driver badly understates cache and fastpath
hit rates.  Device and bot mixes reuse the era's user-agent strings so
the proxy's real device-classification path is exercised, not mocked.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.rng import DeterministicRandom

PHONE_UA = (
    "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_0 like Mac OS X; en-us) "
    "AppleWebKit/532.9 (KHTML, like Gecko) Version/4.0.5 Mobile/8A293 "
    "Safari/6531.22.7"
)
TABLET_UA = (
    "Mozilla/5.0 (iPad; CPU OS 5_1 like Mac OS X) AppleWebKit/534.46 "
    "(KHTML, like Gecko) Version/5.1 Mobile/9B176 Safari/7534.48.3"
)
DESKTOP_UA = (
    "Mozilla/5.0 (Windows NT 6.0; WOW64) AppleWebKit/535.19 "
    "(KHTML, like Gecko) Chrome/18.0.1025.162 Safari/535.19"
)
BOT_UA = (
    "Mozilla/5.0 (compatible; Googlebot/2.1; "
    "+http://www.google.com/bot.html)"
)

DEVICE_AGENTS: dict[str, str] = {
    "phone": PHONE_UA,
    "tablet": TABLET_UA,
    "desktop": DESKTOP_UA,
}


class ZipfianSampler:
    """Rank-ordered popularity: item ``r`` has weight ``1 / r^s``."""

    def __init__(self, items: Sequence, exponent: float = 1.0) -> None:
        if not items:
            raise ValueError("zipfian sampler needs at least one item")
        if exponent < 0:
            raise ValueError("zipf exponent must be non-negative")
        self.items = list(items)
        self.exponent = exponent
        self._cumulative: list[float] = []
        total = 0.0
        for rank in range(1, len(self.items) + 1):
            total += 1.0 / (rank ** exponent)
            self._cumulative.append(total)

    def weight(self, rank: int) -> float:
        """The normalized probability of the item at 1-based ``rank``."""
        return (1.0 / (rank ** self.exponent)) / self._cumulative[-1]

    def sample(self, rng: DeterministicRandom):
        draw = rng.uniform() * self._cumulative[-1]
        index = bisect.bisect_right(self._cumulative, draw)
        return self.items[min(index, len(self.items) - 1)]


@dataclass(frozen=True)
class DeviceMix:
    """A weighted mix of device classes (weights need not sum to 1)."""

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        total = sum(weight for _device, weight in self.weights)
        if total <= 0:
            raise ValueError("device mix needs positive total weight")
        for device, _weight in self.weights:
            if device not in DEVICE_AGENTS:
                raise ValueError(f"unknown device class {device!r}")

    def sample(self, rng: DeterministicRandom) -> tuple[str, str]:
        """(device class, user agent) for one request."""
        total = sum(weight for _device, weight in self.weights)
        draw = rng.uniform() * total
        running = 0.0
        for device, weight in self.weights:
            running += weight
            if draw < running:
                return device, DEVICE_AGENTS[device]
        device = self.weights[-1][0]
        return device, DEVICE_AGENTS[device]


@dataclass
class SessionPool:
    """Session churn: returning visitors with a fresh-arrival rate.

    Each draw either re-uses a live session (a returning device with
    its cookie jar intact) or, with probability ``churn``, starts a new
    one; the pool is bounded so long scenarios recycle identities the
    way a real audience does.
    """

    churn: float = 0.2
    max_sessions: int = 64
    _live: list[str] = field(default_factory=list)
    _minted: int = 0

    def next_session(self, rng: DeterministicRandom) -> str:
        fresh = not self._live or rng.uniform() < self.churn
        if fresh and len(self._live) < self.max_sessions:
            self._minted += 1
            name = f"s{self._minted:05d}"
            self._live.append(name)
            return name
        return rng.choice(self._live)

    @property
    def minted(self) -> int:
        return self._minted


@dataclass(frozen=True)
class BotMix:
    """Crawler share of the traffic.

    Bots never keep cookies (every hit is a fresh session) and crawl
    the population's long tail uniformly instead of by popularity.
    """

    fraction: float = 0.0
    user_agent: str = BOT_UA

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("bot fraction must be within [0, 1]")

    def is_bot(self, rng: DeterministicRandom) -> bool:
        return self.fraction > 0 and rng.uniform() < self.fraction
