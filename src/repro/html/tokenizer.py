"""Tolerant HTML tokenizer.

Produces a flat stream of tokens (doctype, start tag, end tag, text,
comment) from arbitrary markup.  Modeled on the HTML5 tokenizer states that
matter for real templates: attribute quoting variants, self-closing tags,
raw-text elements (``script``/``style``/``textarea``/``title``), comments,
and bogus markup recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.dom.element import RAW_TEXT_ELEMENTS
from repro.html.entities import decode_entities


@dataclass
class DoctypeToken:
    name: str


@dataclass
class StartTagToken:
    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTagToken:
    name: str


@dataclass
class TextToken:
    data: str


@dataclass
class CommentToken:
    data: str


Token = Union[DoctypeToken, StartTagToken, EndTagToken, TextToken, CommentToken]

_WHITESPACE = " \t\n\r\f"
_ATTR_NAME_END = _WHITESPACE + "=/>"


def tokenize(html: str) -> Iterator[Token]:
    """Yield tokens from ``html``; never raises on malformed input."""
    pos = 0
    length = len(html)
    while pos < length:
        lt = html.find("<", pos)
        if lt == -1:
            yield TextToken(decode_entities(html[pos:]))
            return
        if lt > pos:
            yield TextToken(decode_entities(html[pos:lt]))
        if lt + 1 >= length:
            # Trailing lone '<' becomes literal text.
            yield TextToken("<")
            return
        next_char = html[lt + 1]
        if next_char == "!":
            pos = yield from _consume_markup_declaration(html, lt)
        elif next_char == "/":
            pos = yield from _consume_end_tag(html, lt)
        elif next_char.isalpha():
            token, pos = _consume_start_tag(html, lt)
            yield token
            if token.name in RAW_TEXT_ELEMENTS and not token.self_closing:
                pos = yield from _consume_raw_text(html, pos, token.name)
        elif next_char == "?":
            # Processing instruction / bogus comment: skip to '>'.
            gt = html.find(">", lt)
            pos = length if gt == -1 else gt + 1
        else:
            yield TextToken("<")
            pos = lt + 1


def _consume_markup_declaration(html: str, start: int):
    """Handle ``<!-- -->``, ``<!DOCTYPE ...>`` and bogus declarations."""
    if html.startswith("<!--", start):
        end = html.find("-->", start + 4)
        if end == -1:
            yield CommentToken(html[start + 4 :])
            return len(html)
        yield CommentToken(html[start + 4 : end])
        return end + 3
    gt = html.find(">", start)
    if gt == -1:
        return len(html)
    body = html[start + 2 : gt]
    if body.lower().startswith("doctype"):
        name = body[7:].strip() or "html"
        yield DoctypeToken(name)
    # CDATA and other declarations are dropped, as browsers do in HTML.
    return gt + 1


def _consume_end_tag(html: str, start: int):
    gt = html.find(">", start)
    if gt == -1:
        return len(html)
    name = html[start + 2 : gt].strip().lower()
    # Strip any stray attributes on the end tag.
    name = name.split()[0] if name.split() else ""
    if name:
        yield EndTagToken(name)
    return gt + 1


def _consume_start_tag(html: str, start: int) -> tuple[StartTagToken, int]:
    pos = start + 1
    length = len(html)
    name_start = pos
    while pos < length and html[pos] not in _WHITESPACE + "/>":
        pos += 1
    name = html[name_start:pos].lower()
    attributes: dict[str, str] = {}
    self_closing = False
    while pos < length:
        while pos < length and html[pos] in _WHITESPACE:
            pos += 1
        if pos >= length:
            break
        char = html[pos]
        if char == ">":
            pos += 1
            break
        if char == "/":
            if pos + 1 < length and html[pos + 1] == ">":
                self_closing = True
                pos += 2
                break
            pos += 1
            continue
        attr_start = pos
        while pos < length and html[pos] not in _ATTR_NAME_END:
            pos += 1
        attr_name = html[attr_start:pos].lower()
        while pos < length and html[pos] in _WHITESPACE:
            pos += 1
        value = ""
        if pos < length and html[pos] == "=":
            pos += 1
            while pos < length and html[pos] in _WHITESPACE:
                pos += 1
            if pos < length and html[pos] in "\"'":
                quote = html[pos]
                pos += 1
                value_start = pos
                while pos < length and html[pos] != quote:
                    pos += 1
                value = html[value_start:pos]
                pos += 1  # past the closing quote (or off the end)
            else:
                value_start = pos
                while pos < length and html[pos] not in _WHITESPACE + ">":
                    pos += 1
                value = html[value_start:pos]
        if attr_name and attr_name not in attributes:
            attributes[attr_name] = decode_entities(value)
    return StartTagToken(name, attributes, self_closing), pos


# RCDATA elements decode character references in their text; true raw-text
# elements (script/style) do not.
_RCDATA_ELEMENTS = frozenset({"title", "textarea"})


def _consume_raw_text(html: str, pos: int, tag: str):
    """Collect everything up to the matching ``</tag>`` as literal text."""
    decode = tag in _RCDATA_ELEMENTS
    lower = html.lower()
    needle = f"</{tag}"
    search = pos
    length = len(html)
    while True:
        idx = lower.find(needle, search)
        if idx == -1:
            if pos < length:
                data = html[pos:]
                yield TextToken(decode_entities(data) if decode else data)
            return length
        after = idx + len(needle)
        # Must be followed by whitespace, '/', or '>' to count as a close tag.
        if after < length and html[after] not in _WHITESPACE + "/>":
            search = after
            continue
        if idx > pos:
            data = html[pos:idx]
            yield TextToken(decode_entities(data) if decode else data)
        gt = html.find(">", after)
        yield EndTagToken(tag)
        return length if gt == -1 else gt + 1
