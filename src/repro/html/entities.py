"""HTML character references: the named subset real templates use, plus
numeric references.  Decoding is tolerant (unknown references pass through
verbatim); encoding escapes only what serialization requires.
"""

from __future__ import annotations

NAMED_ENTITIES: dict[str, str] = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "hellip": "…",
    "mdash": "—",
    "ndash": "–",
    "lsquo": "‘",
    "rsquo": "’",
    "ldquo": "“",
    "rdquo": "”",
    "laquo": "«",
    "raquo": "»",
    "middot": "·",
    "bull": "•",
    "deg": "°",
    "plusmn": "±",
    "frac12": "½",
    "times": "×",
    "divide": "÷",
    "cent": "¢",
    "pound": "£",
    "euro": "€",
    "yen": "¥",
    "sect": "§",
    "para": "¶",
    "dagger": "†",
    "larr": "←",
    "uarr": "↑",
    "rarr": "→",
    "darr": "↓",
}

_REVERSED = {char: name for name, char in NAMED_ENTITIES.items()}


def decode_entities(text: str) -> str:
    """Replace character references in ``text`` with their characters.

    Handles ``&name;``, ``&#123;`` and ``&#x1F;``.  Malformed or unknown
    references are left untouched, matching browser leniency.
    """
    if "&" not in text:
        return text
    out: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = text.find(";", index + 1)
        # References longer than 32 chars are treated as literal ampersands.
        if end == -1 or end - index > 32:
            out.append(char)
            index += 1
            continue
        body = text[index + 1 : end]
        decoded = _decode_one(body)
        if decoded is None:
            out.append(char)
            index += 1
        else:
            out.append(decoded)
            index = end + 1
    return "".join(out)


def _decode_one(body: str) -> str | None:
    if body.startswith("#"):
        digits = body[1:]
        try:
            if digits[:1] in ("x", "X"):
                codepoint = int(digits[1:], 16)
            else:
                codepoint = int(digits, 10)
        except ValueError:
            return None
        if 0 < codepoint <= 0x10FFFF:
            return chr(codepoint)
        return None
    return NAMED_ENTITIES.get(body)


def encode_text(text: str) -> str:
    """Escape ``&``, ``<`` and ``>`` for text content."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def encode_attribute(value: str) -> str:
    """Escape a value for a double-quoted attribute."""
    return encode_text(value).replace('"', "&quot;")


def encode_named(text: str) -> str:
    """Aggressively encode every character with a known named entity.

    Used by the Tidy analog when producing maximally portable XHTML.
    """
    out = []
    for char in text:
        name = _REVERSED.get(char)
        if name is not None:
            out.append(f"&{name};")
        elif char in "<>":
            out.append("&lt;" if char == "<" else "&gt;")
        else:
            out.append(char)
    return "".join(out)
