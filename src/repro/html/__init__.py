"""HTML engine: tokenizer, tree-building parser, serializer, Tidy analog.

The proxy downloads real-world tag soup, so the parser must be tolerant:
implied end tags, unclosed elements, raw-text elements, and attribute
quoting variants are all handled.  :mod:`repro.html.tidy` plays the role of
the HTML Tidy library the paper compiles in — normalizing arbitrary HTML
into well-formed XHTML so strict XML tooling can consume it.
"""

from repro.html.parser import parse_html, parse_fragment
from repro.html.serializer import serialize, serialize_xhtml, inner_html
from repro.html.tidy import tidy_to_xhtml

__all__ = [
    "parse_html",
    "parse_fragment",
    "serialize",
    "serialize_xhtml",
    "inner_html",
    "tidy_to_xhtml",
]
