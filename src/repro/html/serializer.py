"""Serialize DOM trees back to HTML or XHTML source."""

from __future__ import annotations

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Comment, Doctype, Node, Text
from repro.html.entities import encode_attribute, encode_text

# Attributes that are boolean in HTML serialization.
_BOOLEAN_ATTRIBUTES = frozenset(
    {"checked", "selected", "disabled", "readonly", "multiple", "defer", "async"}
)


def serialize(node: Node, xhtml: bool = False) -> str:
    """Render ``node`` (and its subtree) to markup.

    With ``xhtml=True`` void elements self-close, boolean attributes are
    expanded, and raw text is escaped — the output is well-formed XML.
    """
    parts: list[str] = []
    _write(node, parts, xhtml)
    return "".join(parts)


def serialize_xhtml(node: Node) -> str:
    """Shorthand for :func:`serialize` with ``xhtml=True``."""
    return serialize(node, xhtml=True)


def inner_html(element: Element, xhtml: bool = False) -> str:
    """Markup of the element's children only."""
    parts: list[str] = []
    for child in element.children:
        _write(child, parts, xhtml)
    return "".join(parts)


def _write(node: Node, parts: list[str], xhtml: bool) -> None:
    if isinstance(node, Document):
        for child in node.children:
            _write(child, parts, xhtml)
    elif isinstance(node, Doctype):
        if xhtml:
            parts.append(f"<!DOCTYPE {node.name}>")
        else:
            parts.append(f"<!DOCTYPE {node.name}>")
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.data}-->")
    elif isinstance(node, Text):
        parent = node.parent
        if (
            not xhtml
            and isinstance(parent, Element)
            and parent.tag in ("script", "style")
        ):
            parts.append(node.data)
        else:
            parts.append(encode_text(node.data))
    elif isinstance(node, Element):
        _write_element(node, parts, xhtml)
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {node!r}")


def _write_element(element: Element, parts: list[str], xhtml: bool) -> None:
    parts.append(f"<{element.tag}")
    for name, value in element.attributes.items():
        if not xhtml and name in _BOOLEAN_ATTRIBUTES and value in ("", name):
            parts.append(f" {name}")
        else:
            if xhtml and value == "" and name in _BOOLEAN_ATTRIBUTES:
                value = name
            parts.append(f' {name}="{encode_attribute(value)}"')
    if element.is_void:
        parts.append(" />" if xhtml else ">")
        return
    if xhtml and not element.children:
        parts.append(" />")
        return
    parts.append(">")
    for child in element.children:
        _write(child, parts, xhtml)
    parts.append(f"</{element.tag}>")
