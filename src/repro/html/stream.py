"""Single-pass streaming serializer: token stream → final markup.

The DOM adaptation path is ``serialize(parse_html(source))`` — build the
whole tree, then walk it back into a string.  For filter-only
adaptations (the paper's "source filters": script stripping, URL
rewrites, title/doctype swaps) the tree is pure overhead: nothing ever
queries it.  :func:`stream_serialize` produces the *same bytes* in one
pass over the token stream by replaying :class:`_TreeBuilder`'s
soup-recovery rules (implied closers, html/head/body scaffolding,
attribute merging on repeated ``<html>``/``<body>`` tags) as emission
rules instead of tree edits.

Byte-identity with the DOM round-trip is the contract — it is what lets
the pipeline pick either path per request without changing rendered
output.  Two soup shapes cannot be emitted in source order because the
tree builder reorders them (a comment or a second head-level tag
arriving while a ``<noscript>``-style head element is still open
becomes a *sibling after* the open element); those raise
:class:`StreamUnsupported` and the caller falls back to the DOM path.
"""

from __future__ import annotations

from typing import Iterable

from repro.dom.element import RAW_TEXT_ELEMENTS, VOID_ELEMENTS
from repro.html.entities import encode_attribute, encode_text
from repro.html.parser import _HEAD_TAGS, _IMPLIED_CLOSERS
from repro.html.serializer import _BOOLEAN_ATTRIBUTES
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    Token,
    tokenize,
)


class StreamUnsupported(Exception):
    """Input needs tree reordering the streaming writer cannot mirror."""


def stream_serialize(source: str) -> str:
    """One-pass equivalent of ``serialize(parse_html(source))``.

    Raises :class:`StreamUnsupported` when the input hits one of the
    (rare) reordering soup cases; callers fall back to the DOM path.
    """
    return stream_serialize_tokens(tokenize(source))


def stream_serialize_tokens(tokens: Iterable[Token]) -> str:
    writer = _StreamWriter()
    for token in tokens:
        writer.feed(token)
    return writer.finish()


def _render_open(tag: str, attributes: dict) -> str:
    """Open-tag markup, mirroring ``serializer._write_element``."""
    parts = [f"<{tag}"]
    for name, value in attributes.items():
        if name in _BOOLEAN_ATTRIBUTES and value in ("", name):
            parts.append(f" {name}")
        else:
            parts.append(f' {name}="{encode_attribute(value)}"')
    parts.append(">")
    return "".join(parts)


class _StreamWriter:
    """Emission-order mirror of ``parser._TreeBuilder``.

    The html and body open tags are emitted as placeholders and rendered
    at :meth:`finish`, because later ``<html>``/``<body>`` tokens merge
    attributes into the already-created elements (``setdefault``) and
    the serialized open tag must carry the merged set.
    """

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._saw_doctype = False
        self._html_index: int | None = None
        self._html_attrs: dict[str, str] = {}
        self._head_open = False
        self._body_index: int | None = None
        self._body_attrs: dict[str, str] = {}
        # Open head-level elements before body exists (tag names).
        self._pre_stack: list[str] = []
        # Open elements in body mode; always starts with "body".
        self._stack: list[str] = []

    # -- scaffolding (mirrors _ensure_html/_ensure_head/_ensure_body) --

    @property
    def _body_created(self) -> bool:
        return self._body_index is not None

    def _ensure_html(self) -> None:
        if self._html_index is None:
            self._html_index = len(self._parts)
            self._parts.append("")  # rendered in finish()

    def _ensure_head(self) -> None:
        self._ensure_html()
        if not self._head_open:
            self._parts.append("<head>")
            self._head_open = True

    def _ensure_body(self) -> None:
        if self._body_created:
            return
        self._ensure_head()
        # Open head elements are abandoned by the tree builder; their
        # close tags land here because nothing is appended after them.
        for tag in reversed(self._pre_stack):
            self._parts.append(f"</{tag}>")
        self._pre_stack.clear()
        self._parts.append("</head>")
        self._body_index = len(self._parts)
        self._parts.append("")  # rendered in finish()
        self._stack = ["body"]

    # -- token dispatch -------------------------------------------------

    def feed(self, token: Token) -> None:
        if isinstance(token, DoctypeToken):
            if not self._saw_doctype and self._html_index is None:
                self._parts.append(f"<!DOCTYPE {token.name}>")
                self._saw_doctype = True
        elif isinstance(token, CommentToken):
            self._feed_comment(token)
        elif isinstance(token, TextToken):
            self._feed_text(token)
        elif isinstance(token, StartTagToken):
            self._feed_start(token)
        elif isinstance(token, EndTagToken):
            self._feed_end(token)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown token {token!r}")

    def _feed_comment(self, token: CommentToken) -> None:
        if not self._body_created and self._html_index is None:
            self._parts.append(f"<!--{token.data}-->")
            return
        if not self._body_created:
            if self._pre_stack:
                # The builder appends the comment to <head> as a sibling
                # *after* the still-open element — out of source order.
                raise StreamUnsupported(
                    "comment beside an open head element"
                )
            self._ensure_head()
        self._parts.append(f"<!--{token.data}-->")

    def _feed_text(self, token: TextToken) -> None:
        data = token.data
        if not data:
            return
        if not self._body_created:
            if self._pre_stack:
                top = self._pre_stack[-1]
                self._parts.append(
                    data if top in ("script", "style")
                    else encode_text(data)
                )
                return
            if data.strip() == "":
                return  # inter-tag whitespace before body opens
            self._ensure_body()
        top = self._stack[-1]
        self._parts.append(
            data if top in ("script", "style") else encode_text(data)
        )

    def _feed_start(self, token: StartTagToken) -> None:
        name = token.name
        if name == "html":
            self._ensure_html()
            for key, value in token.attributes.items():
                self._html_attrs.setdefault(key, value)
            return
        if name == "head":
            self._ensure_head()  # token attributes are dropped
            return
        if name == "body":
            self._ensure_body()
            for key, value in token.attributes.items():
                self._body_attrs.setdefault(key, value)
            return
        if not self._body_created and name in _HEAD_TAGS:
            if self._pre_stack:
                # Builder appends to <head> while an earlier head element
                # is still open — becomes a later sibling, not a child.
                raise StreamUnsupported(
                    "head element beside an open head element"
                )
            self._ensure_head()
            self._emit_element(token)
            return
        self._ensure_body()
        implied = _IMPLIED_CLOSERS.get(name)
        if implied is not None:
            while len(self._stack) > 1 and self._stack[-1] in implied:
                self._parts.append(f"</{self._stack.pop()}>")
        self._emit_element(token)

    def _emit_element(self, token: StartTagToken) -> None:
        name = token.name
        self._parts.append(_render_open(name, token.attributes))
        if name in VOID_ELEMENTS:
            return  # serializer emits no close tag for voids
        if token.self_closing:
            # Childless non-void element: serializer still closes it.
            self._parts.append(f"</{name}>")
            return
        stack = self._stack if self._body_created else self._pre_stack
        stack.append(name)

    def _feed_end(self, token: EndTagToken) -> None:
        name = token.name
        if name in ("html", "body"):
            if name == "body" and self._body_created:
                while len(self._stack) > 1:
                    self._parts.append(f"</{self._stack.pop()}>")
            return
        if name == "head":
            # The head element itself is never on the builder stack.
            return
        if not self._body_created:
            stack, floor = self._pre_stack, 0
        else:
            stack, floor = self._stack, 1  # never pop body by name
        for index in range(len(stack) - 1, floor - 1, -1):
            if stack[index] == name:
                for tag in reversed(stack[index:]):
                    self._parts.append(f"</{tag}>")
                del stack[index:]
                return
        # Stray end tag: ignore, as the tree builder does.

    # -- completion -----------------------------------------------------

    def finish(self) -> str:
        self._ensure_body()
        while len(self._stack) > 1:
            self._parts.append(f"</{self._stack.pop()}>")
        self._parts.append("</body></html>")
        assert self._html_index is not None
        assert self._body_index is not None
        self._parts[self._html_index] = _render_open(
            "html", self._html_attrs
        )
        self._parts[self._body_index] = _render_open(
            "body", self._body_attrs
        )
        return "".join(self._parts)


__all__ = [
    "StreamUnsupported",
    "stream_serialize",
    "stream_serialize_tokens",
]
