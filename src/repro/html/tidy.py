"""HTML Tidy analog: normalize tag soup into well-formed XHTML.

The paper compiles HTML Tidy into the proxy and applies it at the filter
phase so that the wide array of strict XML/DOM tools can parse the page
(§3.2).  Our analog routes the soup through the tolerant parser and
re-serializes it as XHTML, reporting what it had to repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.document import Document
from repro.dom.element import Element
from repro.html.parser import parse_html
from repro.html.serializer import serialize_xhtml


@dataclass
class TidyReport:
    """What the normalizer repaired, for administrator diagnostics."""

    added_doctype: bool = False
    added_html_scaffold: bool = False
    repaired_elements: int = 0
    notes: list[str] = field(default_factory=list)


def tidy_to_xhtml(html: str) -> tuple[str, TidyReport]:
    """Normalize ``html`` to well-formed XHTML.

    Returns the XHTML source plus a :class:`TidyReport`.  The output always
    parses as strict XML: every element closed, attributes quoted, raw text
    escaped.
    """
    report = TidyReport()
    document = parse_html(html)
    if document.doctype is None:
        from repro.dom.node import Doctype

        document.children.insert(0, Doctype("html"))
        document.children[0].parent = document
        report.added_doctype = True
        report.notes.append("inserted missing doctype")
    lowered = html.lower()
    if "<html" not in lowered:
        report.added_html_scaffold = True
        report.notes.append("wrapped content in html/head/body scaffold")
    report.repaired_elements = _count_unclosed(html, document)
    return serialize_xhtml(document), report


def tidy_document(html: str) -> Document:
    """Parse-and-normalize, returning the repaired document tree."""
    document = parse_html(html)
    if document.doctype is None:
        from repro.dom.node import Doctype

        document.children.insert(0, Doctype("html"))
        document.children[0].parent = document
    return document


def _count_unclosed(html: str, document: Document) -> int:
    """Estimate how many elements had no explicit close tag.

    Compares the number of non-void elements in the tree against the number
    of end tags present in the source; the shortfall approximates Tidy's
    'missing </...>' warnings.
    """
    import re

    end_tags = len(re.findall(r"</\s*[a-zA-Z]", html))
    non_void = sum(
        1
        for element in document.all_elements()
        if not element.is_void and element.tag not in ("html", "head", "body")
    )
    return max(0, non_void - end_tags)
