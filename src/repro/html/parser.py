"""Tree-building HTML parser.

Turns the token stream into a :class:`repro.dom.Document`, recovering from
the tag soup real forum templates emit: implied ``<tbody>``/``</td>``
boundaries, unclosed ``<p>``/``<li>``/``<option>`` elements, missing
``html``/``head``/``body`` scaffolding, and stray end tags.
"""

from __future__ import annotations

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Comment, Doctype, Text
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    tokenize,
)

# Opening one of these closes an open element of the associated set first.
_IMPLIED_CLOSERS: dict[str, frozenset[str]] = {
    "p": frozenset({"p"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "thead": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tbody": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tfoot": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "option": frozenset({"option"}),
    "optgroup": frozenset({"option", "optgroup"}),
}

# Closing a cell/row must not escape its enclosing table; same for lists.
_SCOPE_BARRIERS = frozenset({"table", "template", "html"})

# Elements whose leading newline/blank text should not force a body.
_HEAD_TAGS = frozenset(
    {"title", "meta", "link", "style", "script", "base", "noscript"}
)


def parse_html(html: str) -> Document:
    """Parse a full page into a document with html/head/body scaffolding."""
    builder = _TreeBuilder()
    for token in tokenize(html):
        builder.feed(token)
    return builder.finish()


def parse_fragment(html: str) -> list:
    """Parse a fragment and return its top-level nodes (detached).

    Used by the jQuery-style API (``Query.html(...)``, ``append(...)``)
    and by attribute transforms that inject markup.
    """
    root = Element("template-root")
    stack = [root]
    for token in tokenize(html):
        if isinstance(token, TextToken):
            if token.data:
                stack[-1].append(Text(token.data))
        elif isinstance(token, CommentToken):
            stack[-1].append(Comment(token.data))
        elif isinstance(token, StartTagToken):
            element = Element(token.name, token.attributes)
            stack[-1].append(element)
            if not token.self_closing and not element.is_void:
                stack.append(element)
        elif isinstance(token, EndTagToken):
            for index in range(len(stack) - 1, 0, -1):
                if stack[index].tag == token.name:
                    del stack[index:]
                    break
        # Doctype tokens make no sense in a fragment; drop them.
    children = list(root.children)
    for child in children:
        child.parent = None
    root.clear_children()
    return children


class _TreeBuilder:
    """Incremental tree construction with soup recovery rules."""

    def __init__(self) -> None:
        self.document = Document()
        self._html: Element | None = None
        self._head: Element | None = None
        self._body: Element | None = None
        self._stack: list[Element] = []
        self._saw_doctype = False

    # -- scaffolding -----------------------------------------------------

    def _ensure_html(self) -> Element:
        if self._html is None:
            self._html = Element("html")
            self.document.append(self._html)
        return self._html

    def _ensure_head(self) -> Element:
        html = self._ensure_html()
        if self._head is None:
            self._head = Element("head")
            html.append(self._head)
        return self._head

    def _ensure_body(self) -> Element:
        html = self._ensure_html()
        self._ensure_head()
        if self._body is None:
            self._body = Element("body")
            html.append(self._body)
            self._stack = [self._body]
        return self._body

    def _current(self) -> Element:
        if self._stack:
            return self._stack[-1]
        return self._ensure_body()

    # -- token dispatch ----------------------------------------------------

    def feed(self, token) -> None:
        if isinstance(token, DoctypeToken):
            if not self._saw_doctype and self._html is None:
                self.document.append(Doctype(token.name))
                self._saw_doctype = True
        elif isinstance(token, CommentToken):
            self._feed_comment(token)
        elif isinstance(token, TextToken):
            self._feed_text(token)
        elif isinstance(token, StartTagToken):
            self._feed_start(token)
        elif isinstance(token, EndTagToken):
            self._feed_end(token)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown token {token!r}")

    def _feed_comment(self, token: CommentToken) -> None:
        if self._body is None and self._html is None:
            self.document.append(Comment(token.data))
        elif self._body is None:
            self._ensure_head().append(Comment(token.data))
        else:
            self._current().append(Comment(token.data))

    def _feed_text(self, token: TextToken) -> None:
        if not token.data:
            return
        if self._body is None:
            if self._stack:
                # An open head element (title/script/style) collects text.
                self._stack[-1].append_text(token.data)
                return
            if token.data.strip() == "":
                return  # inter-tag whitespace before body opens
            self._ensure_body()
        self._current().append_text(token.data)

    def _feed_start(self, token: StartTagToken) -> None:
        name = token.name
        if name == "html":
            html = self._ensure_html()
            for key, value in token.attributes.items():
                html.attributes.setdefault(key, value)
            return
        if name == "head":
            self._ensure_head()
            return
        if name == "body":
            body = self._ensure_body()
            for key, value in token.attributes.items():
                body.attributes.setdefault(key, value)
            return
        if self._body is None and name in _HEAD_TAGS:
            element = Element(name, token.attributes)
            self._ensure_head().append(element)
            if not token.self_closing and not element.is_void:
                # Raw-text head elements get their text from the next token;
                # push so that text lands inside.
                self._stack.append(element)
            return

        self._ensure_body()
        implied = _IMPLIED_CLOSERS.get(name)
        if implied is not None:
            self._close_implied(implied)
        element = Element(name, token.attributes)
        self._current().append(element)
        if not token.self_closing and not element.is_void:
            self._stack.append(element)

    def _close_implied(self, closable: frozenset[str]) -> None:
        """Pop open elements the new tag implicitly terminates."""
        while len(self._stack) > 1:
            top = self._stack[-1]
            if top.tag in closable:
                self._stack.pop()
                continue
            if top.tag in _SCOPE_BARRIERS:
                break
            # Only pop through formatting-transparent containers.
            if top.tag in ("a", "b", "i", "em", "strong", "span", "font", "u"):
                break
            break

    def _feed_end(self, token: EndTagToken) -> None:
        name = token.name
        if name in ("html", "body"):
            if name == "body" and self._body is not None:
                self._stack = [self._body]
            return
        if name == "head":
            # After </head>, content flows to body on demand.
            if self._body is None and self._stack and self._stack[-1] is self._head:
                self._stack.pop()
            return
        # Head raw-text elements sit on the stack before body exists.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index].tag == name:
                del self._stack[index:]
                if not self._stack and self._body is not None:
                    self._stack = [self._body]
                return
        # Stray end tag: ignore, as browsers do.

    def finish(self) -> Document:
        self._ensure_body()
        return self.document
