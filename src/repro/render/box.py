"""Geometry primitives for layout: rectangles, edge sets, layout boxes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.dom.element import Element


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in page coordinates (CSS pixels)."""

    x: float
    y: float
    width: float
    height: float

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, px: float, py: float) -> bool:
        return self.x <= px < self.right and self.y <= py < self.bottom

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x >= self.right
            or other.right <= self.x
            or other.y >= self.bottom
            or other.bottom <= self.y
        )

    def scaled(self, factor: float) -> "Rect":
        return Rect(
            self.x * factor,
            self.y * factor,
            self.width * factor,
            self.height * factor,
        )

    def rounded(self) -> tuple[int, int, int, int]:
        """(x, y, width, height) as integers for rasterization/image maps."""
        return (
            int(round(self.x)),
            int(round(self.y)),
            int(round(self.width)),
            int(round(self.height)),
        )


@dataclass(frozen=True)
class Edges:
    """Per-side pixel amounts for margins, padding, or borders."""

    top: float = 0.0
    right: float = 0.0
    bottom: float = 0.0
    left: float = 0.0

    @property
    def horizontal(self) -> float:
        return self.left + self.right

    @property
    def vertical(self) -> float:
        return self.top + self.bottom


@dataclass
class TextRun:
    """One laid-out line fragment of text."""

    text: str
    rect: Rect
    font_size: float
    bold: bool = False
    color: tuple[int, int, int] = (0, 0, 0)
    is_link: bool = False


@dataclass
class LayoutBox:
    """A laid-out element: border-box geometry plus children.

    ``rect`` is the border box (the coordinates the paper's image maps
    need: "the coordinates and extents of the original document elements
    must be queried from the DOM", §4.3).
    """

    element: Optional["Element"]
    rect: Rect
    box_type: str = "block"  # block | inline | table | row | cell | image | control
    children: list["LayoutBox"] = field(default_factory=list)
    text_runs: list[TextRun] = field(default_factory=list)
    background: Optional[tuple[int, int, int]] = None
    border_color: Optional[tuple[int, int, int]] = None
    border_width: float = 0.0
    gradient: bool = False  # background-image chrome painted as a gradient
    texture_seed: int = 0  # photo placeholder texture (images)

    def iter_boxes(self):
        """This box and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_boxes()

    def find_box_for(self, element: "Element") -> Optional["LayoutBox"]:
        """The layout box belonging to ``element``, if laid out."""
        for box in self.iter_boxes():
            if box.element is element:
                return box
        return None

    def hit_test(self, x: float, y: float) -> Optional["LayoutBox"]:
        """Deepest box containing the point — powers click-to-select in
        the admin tool."""
        if not self.rect.contains(x, y):
            return None
        for child in reversed(self.children):
            hit = child.hit_test(x, y)
            if hit is not None:
                return hit
        return self
