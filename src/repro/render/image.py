"""Image model: raster images, encoders, and the fidelity post-processor.

The paper's image-fidelity attribute passes rendered objects through a
post-processor: "when a full page is rendered into a high-fidelity png, it
can consume upwards of 600K ... a post-processor can produce a
reduced-fidelity jpg at 25-50k" (§3.3).

Encoders here are *real* in the sense that byte counts come from actually
compressing the pixel data:

* PNG: zlib over filtered scanlines (the real PNG recipe, minus chunking
  overhead we add back as a constant) — lossless, so busy pages are large.
* JPEG: modeled as chroma-subsampled, quality-quantized data compressed
  entropy-style; quality trades bytes for a recorded distortion level.

Both produce actual byte strings, so cache sizes, transfer times and the
600 KB → 25-50 KB shape are measured rather than asserted.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

_PNG_OVERHEAD = 57  # signature + IHDR + IEND + chunk headers
_JPEG_OVERHEAD = 623  # JFIF headers + quantization/huffman tables


@dataclass
class EncodedImage:
    """The output of an encoder: bytes plus format metadata."""

    format: str  # 'png' or 'jpeg'
    width: int
    height: int
    data: bytes
    quality: int = 100

    @property
    def size_bytes(self) -> int:
        return len(self.data)


class RasterImage:
    """An RGB raster image with the transforms the attribute system needs."""

    def __init__(self, pixels: np.ndarray) -> None:
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError("pixels must be HxWx3")
        self.pixels = np.ascontiguousarray(pixels, dtype=np.uint8)

    @classmethod
    def blank(
        cls, width: int, height: int, color: tuple[int, int, int] = (255, 255, 255)
    ) -> "RasterImage":
        pixels = np.empty((height, width, 3), dtype=np.uint8)
        pixels[:, :] = color
        return cls(pixels)

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    # -- transforms ------------------------------------------------------

    def scaled(self, factor: float) -> "RasterImage":
        """Box-filter downscale (or nearest-neighbour upscale)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        new_width = max(1, int(round(self.width * factor)))
        new_height = max(1, int(round(self.height * factor)))
        return self.resized(new_width, new_height)

    def resized(self, new_width: int, new_height: int) -> "RasterImage":
        """Box-filter resampling (area averaging when downscaling).

        Averaging matters: scaled-down snapshots smooth away fine detail,
        which is exactly why the paper's scaled overview images compress
        so well and still look fine "when displaying a zoomed-out overview
        page on a small device screen" (§3.3).
        """
        if new_width < 1 or new_height < 1:
            raise ValueError("target size must be at least 1x1")
        # Integral image for O(1) box sums.
        integral = np.zeros(
            (self.height + 1, self.width + 1, 3), dtype=np.float64
        )
        integral[1:, 1:] = np.cumsum(
            np.cumsum(self.pixels.astype(np.float32), axis=0), axis=1
        )
        row_edges = (
            np.arange(new_height + 1) * self.height / new_height
        ).astype(int)
        col_edges = (
            np.arange(new_width + 1) * self.width / new_width
        ).astype(int)
        r1 = row_edges[:-1]
        r2 = np.maximum(row_edges[1:], r1 + 1)
        c1 = col_edges[:-1]
        c2 = np.maximum(col_edges[1:], c1 + 1)
        r2 = np.clip(r2, 1, self.height)
        c2 = np.clip(c2, 1, self.width)
        r1 = np.minimum(r1, r2 - 1)
        c1 = np.minimum(c1, c2 - 1)
        sums = (
            integral[r2][:, c2]
            - integral[r1][:, c2]
            - integral[r2][:, c1]
            + integral[r1][:, c1]
        )
        areas = ((r2 - r1)[:, None] * (c2 - c1)[None, :])[:, :, None]
        return RasterImage(
            np.clip(sums / areas, 0, 255).astype(np.uint8)
        )

    def smoothed(self) -> "RasterImage":
        """Light 3x3 blur approximating the anti-aliasing a real text
        rasterizer produces.  Applied once per snapshot so encoded sizes
        match what a WebKit render would yield (crisp bitmap glyphs are
        an artifact of our raster font, not of real pages)."""
        pixels = self.pixels.astype(np.float32)
        out = 4.0 * pixels
        out[1:] += pixels[:-1]
        out[:-1] += pixels[1:]
        out[:, 1:] += pixels[:, :-1]
        out[:, :-1] += pixels[:, 1:]
        norm = np.full(self.pixels.shape[:2], 8.0, dtype=np.float32)
        norm[0, :] -= 1.0
        norm[-1, :] -= 1.0
        norm[:, 0] -= 1.0
        norm[:, -1] -= 1.0
        return RasterImage(
            np.clip(out / norm[:, :, None], 0, 255).astype(np.uint8)
        )

    def cropped(self, x: int, y: int, width: int, height: int) -> "RasterImage":
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + width)
        y1 = min(self.height, y + height)
        if x1 <= x0 or y1 <= y0:
            raise ValueError("crop region outside image")
        return RasterImage(self.pixels[y0:y1, x0:x1].copy())

    def quantized(self, levels: int) -> "RasterImage":
        """Reduce each channel to ``levels`` distinct values."""
        if not 2 <= levels <= 256:
            raise ValueError("levels must be in [2, 256]")
        step = 256 // levels
        quantized = (self.pixels.astype(np.int32) // step) * step + step // 2
        return RasterImage(np.clip(quantized, 0, 255).astype(np.uint8))

    def mean_absolute_error(self, other: "RasterImage") -> float:
        if self.pixels.shape != other.pixels.shape:
            raise ValueError("images differ in shape")
        return float(
            np.abs(
                self.pixels.astype(np.int32) - other.pixels.astype(np.int32)
            ).mean()
        )


# ---------------------------------------------------------------------------
# encoders


def encode_png(image: RasterImage) -> EncodedImage:
    """Losslessly encode with the PNG recipe (filter + deflate)."""
    pixels = image.pixels
    height = image.height
    # Sub filter (type 1): delta against the previous pixel in the row --
    # what real encoders pick for flat UI imagery.
    shifted = np.zeros_like(pixels)
    shifted[:, 1:] = pixels[:, :-1]
    filtered = (pixels.astype(np.int16) - shifted.astype(np.int16)) % 256
    scanlines = bytearray()
    filter_byte = bytes([1])
    row_bytes = filtered.astype(np.uint8).tobytes()
    stride = image.width * 3
    for row in range(height):
        scanlines += filter_byte
        scanlines += row_bytes[row * stride : (row + 1) * stride]
    compressed = zlib.compress(bytes(scanlines), level=6)
    data = b"\x89PNG\r\n\x1a\n" + compressed
    return EncodedImage(
        format="png",
        width=image.width,
        height=image.height,
        data=data + b"\x00" * _PNG_OVERHEAD,
    )


# The JPEG Annex K luminance and chrominance quantization tables.
_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float32,
)
_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float32,
)


def _quality_scale(quality: int) -> float:
    """The Annex K quality → table scaling law (IJG)."""
    if quality < 50:
        return 5000.0 / quality / 100.0
    return (200.0 - 2.0 * quality) / 100.0


def _block_dct_quantize(plane: np.ndarray, table: np.ndarray) -> bytes:
    """8x8 block DCT-II, quantize by ``table``, serialize coefficients.

    Smooth blocks collapse to a DC value and zero AC coefficients — the
    energy compaction real JPEG gets, which is what makes page snapshots
    small at low quality.
    """
    from scipy.fftpack import dctn

    height, width = plane.shape
    pad_h = (-height) % 8
    pad_w = (-width) % 8
    if pad_h or pad_w:
        plane = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    height, width = plane.shape
    blocks = plane.reshape(height // 8, 8, width // 8, 8).transpose(0, 2, 1, 3)
    coeffs = dctn(blocks - 128.0, axes=(2, 3), norm="ortho")
    quantized = np.round(coeffs / table[None, None, :, :])
    dc = quantized[:, :, 0, 0].astype(np.int16)
    ac = np.clip(quantized, -127, 127).astype(np.int8)
    ac[:, :, 0, 0] = 0
    # Differential DC coding across blocks, as the standard does.
    dc_flat = dc.reshape(-1)
    dc_diff = np.empty_like(dc_flat)
    dc_diff[0] = dc_flat[0]
    dc_diff[1:] = dc_flat[1:] - dc_flat[:-1]
    # Sparse AC serialization stands in for zigzag run-length + Huffman:
    # per-block nonzero count, then (position, value) streams.
    ac_blocks = ac.reshape(-1, 64)
    mask = ac_blocks != 0
    counts = np.minimum(mask.sum(axis=1), 255).astype(np.uint8)
    positions = np.nonzero(mask)[1].astype(np.uint8)
    values = ac_blocks[mask]
    return (
        dc_diff.tobytes()
        + counts.tobytes()
        + positions.tobytes()
        + values.tobytes()
    )


def encode_jpeg(image: RasterImage, quality: int = 75) -> EncodedImage:
    """Lossy encode: 4:2:0 subsampling, 8x8 DCT, Annex K quantization,
    entropy coding.

    ``quality`` follows the familiar 1-100 scale and drives the standard
    table scaling, so byte counts respond to quality and image business
    the way the paper's post-processor did.
    """
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in [1, 100]")
    pixels = image.pixels.astype(np.float32)
    # RGB -> YCbCr.
    y = 0.299 * pixels[:, :, 0] + 0.587 * pixels[:, :, 1] + 0.114 * pixels[:, :, 2]
    cb = 128 - 0.168736 * pixels[:, :, 0] - 0.331264 * pixels[:, :, 1] + 0.5 * pixels[:, :, 2]
    cr = 128 + 0.5 * pixels[:, :, 0] - 0.418688 * pixels[:, :, 1] - 0.081312 * pixels[:, :, 2]
    # 4:2:0 chroma subsampling.
    cb_sub = cb[::2, ::2]
    cr_sub = cr[::2, ::2]
    scale = _quality_scale(quality)
    luma_table = np.clip(_LUMA_QUANT * scale, 1, 255)
    chroma_table = np.clip(_CHROMA_QUANT * scale, 1, 255)
    payload = (
        _block_dct_quantize(y, luma_table)
        + _block_dct_quantize(cb_sub, chroma_table)
        + _block_dct_quantize(cr_sub, chroma_table)
    )
    compressed = zlib.compress(payload, level=7)
    return EncodedImage(
        format="jpeg",
        width=image.width,
        height=image.height,
        data=compressed + b"\x00" * _JPEG_OVERHEAD,
        quality=quality,
    )


def reencode_for_mobile(
    image: RasterImage, quality: int = 40, scale: float = 1.0
) -> EncodedImage:
    """The image-fidelity post-processor: optional scale, then lossy encode."""
    target = image if scale == 1.0 else image.scaled(scale)
    return encode_jpeg(target, quality=quality)
