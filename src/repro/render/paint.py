"""Display-list construction: turn a layout tree into paint commands."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.render.box import LayoutBox, Rect, TextRun


@dataclass(frozen=True)
class FillCommand:
    rect: Rect
    color: tuple[int, int, int]
    gradient: bool = False


@dataclass(frozen=True)
class StrokeCommand:
    rect: Rect
    color: tuple[int, int, int]
    width: int


@dataclass(frozen=True)
class TextCommand:
    run: TextRun


@dataclass(frozen=True)
class PlaceholderCommand:
    rect: Rect
    texture_seed: int = 0


PaintCommand = Union[FillCommand, StrokeCommand, TextCommand, PlaceholderCommand]


def build_display_list(root: LayoutBox) -> list[PaintCommand]:
    """Paint order: each box's background and border, then its text, then
    children — a pre-order walk, which matches stacking of non-positioned
    content."""
    commands: list[PaintCommand] = []
    _paint_box(root, commands)
    return commands


def _paint_box(box: LayoutBox, commands: list[PaintCommand]) -> None:
    if box.rect.width <= 0 or box.rect.height <= 0:
        pass  # zero-size boxes still paint children (e.g. collapsed rows)
    else:
        if box.background is not None:
            commands.append(
                FillCommand(box.rect, box.background, gradient=box.gradient)
            )
        if box.border_width > 0 and box.border_color is not None:
            commands.append(
                StrokeCommand(
                    box.rect, box.border_color, max(1, int(box.border_width))
                )
            )
        if box.box_type == "image":
            commands.append(
                PlaceholderCommand(box.rect, texture_seed=box.texture_seed)
            )
    for run in box.text_runs:
        commands.append(TextCommand(run))
    for child in box.children:
        _paint_box(child, commands)


def paint_onto(canvas, commands: list[PaintCommand]) -> None:
    """Execute a display list against a :class:`Canvas`."""
    from repro.render.raster import Canvas

    assert isinstance(canvas, Canvas)
    for command in commands:
        if isinstance(command, FillCommand):
            if command.gradient:
                canvas.fill_gradient(command.rect, command.color)
            else:
                canvas.fill_rect(command.rect, command.color)
        elif isinstance(command, StrokeCommand):
            canvas.stroke_rect(command.rect, command.color, command.width)
        elif isinstance(command, PlaceholderCommand):
            canvas.draw_photo_placeholder(command.rect, command.texture_seed)
        elif isinstance(command, TextCommand):
            run = command.run
            canvas.draw_text(
                run.rect.x,
                run.rect.y,
                run.text,
                run.font_size,
                run.color,
                run.bold,
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown paint command {command!r}")
