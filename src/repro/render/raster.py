"""Numpy rasterizer: paints display lists into RGB pixel buffers."""

from __future__ import annotations

import numpy as np

from repro.render import fonts
from repro.render.box import Rect

Color = tuple[int, int, int]


class Canvas:
    """A mutable RGB raster surface."""

    def __init__(self, width: int, height: int, background: Color = (255, 255, 255)):
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:, :] = background

    # ------------------------------------------------------------------

    def _clip(self, x: int, y: int, w: int, h: int) -> tuple[int, int, int, int]:
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + w)
        y1 = min(self.height, y + h)
        return x0, y0, x1, y1

    def fill_rect(self, rect: Rect, color: Color) -> None:
        x, y, w, h = rect.rounded()
        x0, y0, x1, y1 = self._clip(x, y, w, h)
        if x1 > x0 and y1 > y0:
            self.pixels[y0:y1, x0:x1] = color

    def stroke_rect(self, rect: Rect, color: Color, width: int = 1) -> None:
        x, y, w, h = rect.rounded()
        for offset in range(width):
            self._hline(x, y + offset, w, color)
            self._hline(x, y + h - 1 - offset, w, color)
            self._vline(x + offset, y, h, color)
            self._vline(x + w - 1 - offset, y, h, color)

    def _hline(self, x: int, y: int, length: int, color: Color) -> None:
        if 0 <= y < self.height:
            x0 = max(0, x)
            x1 = min(self.width, x + length)
            if x1 > x0:
                self.pixels[y, x0:x1] = color

    def _vline(self, x: int, y: int, length: int, color: Color) -> None:
        if 0 <= x < self.width:
            y0 = max(0, y)
            y1 = min(self.height, y + length)
            if y1 > y0:
                self.pixels[y0:y1, x] = color

    def draw_text(
        self,
        x: float,
        y: float,
        text: str,
        font_size: float,
        color: Color,
        bold: bool = False,
    ) -> None:
        """Draw text with the 5x7 bitmap font scaled to ``font_size``."""
        scale = max(1, int(round(font_size / 8.0)))
        glyph_height = fonts.GLYPH_ROWS * scale
        baseline_y = int(round(y + (fonts.line_height(font_size) - glyph_height) / 2))
        cursor = x
        for char in text:
            advance = fonts.char_width(char, font_size, bold)
            if char != " ":
                self._draw_glyph(
                    int(round(cursor)), baseline_y, char, scale, color, bold
                )
            cursor += advance

    def _draw_glyph(
        self, x: int, y: int, char: str, scale: int, color: Color, bold: bool
    ) -> None:
        bitmap = fonts.glyph_bitmap(char)
        thickness = scale + (1 if bold else 0)
        for row_index, row_bits in enumerate(bitmap):
            for col_index in range(fonts.GLYPH_COLUMNS):
                if row_bits & (1 << (fonts.GLYPH_COLUMNS - 1 - col_index)):
                    px = x + col_index * scale
                    py = y + row_index * scale
                    x0, y0, x1, y1 = self._clip(px, py, thickness, scale)
                    if x1 > x0 and y1 > y0:
                        self.pixels[y0:y1, x0:x1] = color

    def draw_placeholder(self, rect: Rect, color: Color = (180, 180, 190)) -> None:
        """Image placeholder: filled box with an X, like a missing image."""
        self.fill_rect(rect, (230, 230, 235))
        self.stroke_rect(rect, color)
        x, y, w, h = rect.rounded()
        steps = max(2, min(w, h))
        for step in range(steps):
            px = x + int(step * (w - 1) / max(1, steps - 1))
            py = y + int(step * (h - 1) / max(1, steps - 1))
            if 0 <= px < self.width and 0 <= py < self.height:
                self.pixels[py, px] = color
            py2 = y + h - 1 - int(step * (h - 1) / max(1, steps - 1))
            if 0 <= px < self.width and 0 <= py2 < self.height:
                self.pixels[py2, px] = color

    def fill_gradient(self, rect: Rect, base: Color, spread: int = 55) -> None:
        """Vertical gradient fill — how ``background: url(...) repeat-x``
        chrome actually paints (lighter top, darker bottom)."""
        x, y, w, h = rect.rounded()
        x0, y0, x1, y1 = self._clip(x, y, w, h)
        if x1 <= x0 or y1 <= y0:
            return
        rows = y1 - y0
        # Per-row brightness ramp from +spread/2 to -spread/2.
        ramp = np.linspace(spread / 2.0, -spread / 2.0, rows)
        base_arr = np.array(base, dtype=np.float32)
        block = np.clip(
            base_arr[None, :] + ramp[:, None], 0, 255
        ).astype(np.uint8)
        self.pixels[y0:y1, x0:x1] = block[:, None, :]

    def draw_photo_placeholder(self, rect: Rect, seed: int = 0) -> None:
        """Continuous-tone stand-in for a real image: smooth 2D noise.

        Rendered pages spend most of their entropy in photographs and
        anti-aliased imagery; a deterministic low-frequency noise field
        gives the encoders honestly incompressible content to chew on.
        """
        x, y, w, h = rect.rounded()
        x0, y0, x1, y1 = self._clip(x, y, w, h)
        if x1 <= x0 or y1 <= y0:
            return
        height = y1 - y0
        width = x1 - x0
        rng = np.random.default_rng(seed & 0xFFFFFFFF or 0xA11CE)
        # Low-res noise grid upsampled: smooth patches like a photo.
        grid_h = max(2, height // 6 + 1)
        grid_w = max(2, width // 6 + 1)
        grid = rng.integers(40, 216, size=(grid_h, grid_w, 3))
        rows = (np.arange(height) * (grid_h - 1) / max(1, height - 1))
        cols = (np.arange(width) * (grid_w - 1) / max(1, width - 1))
        row_lo = rows.astype(int)
        col_lo = cols.astype(int)
        row_frac = (rows - row_lo)[:, None, None]
        col_frac = (cols - col_lo)[None, :, None]
        row_hi = np.minimum(row_lo + 1, grid_h - 1)
        col_hi = np.minimum(col_lo + 1, grid_w - 1)
        top = (
            grid[row_lo][:, col_lo] * (1 - col_frac)
            + grid[row_lo][:, col_hi] * col_frac
        )
        bottom = (
            grid[row_hi][:, col_lo] * (1 - col_frac)
            + grid[row_hi][:, col_hi] * col_frac
        )
        patch = top * (1 - row_frac) + bottom * row_frac
        # Fine grain on top, like sensor noise / dithering.
        patch = patch + rng.normal(0, 3, size=patch.shape)
        self.pixels[y0:y1, x0:x1] = np.clip(patch, 0, 255).astype(np.uint8)
        self.stroke_rect(rect, (120, 120, 130))
