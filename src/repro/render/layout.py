"""Block / inline / table layout.

Turns a styled DOM into a tree of :class:`LayoutBox` objects with absolute
page geometry.  The model is the CSS 2.1 visual formatting subset that
table-era sites (the paper's vBulletin test site is "a nearly unmodified
default template", §4.2) actually exercise:

* block formatting contexts stack children vertically,
* inline formatting contexts flow text runs with greedy wrapping,
* tables distribute their width across equal columns (with colspan),
* replaced elements (images, form controls) have intrinsic sizes,
* ``display: none`` subtrees are skipped entirely.

Floats and absolute positioning are out of scope — the layouts the paper
adapts are table-driven — but the geometry produced is complete enough to
drive image maps, hit-testing, and snapshot painting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.css.cascade import ComputedStyle, StyleResolver
from repro.css.values import parse_color, parse_font_size, parse_length
from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Node, Text
from repro.render import fonts
from repro.render.box import Edges, LayoutBox, Rect, TextRun

_BLOCK_DISPLAYS = frozenset(
    {"block", "table", "list-item", "table-row", "table-cell", "table-row-group"}
)
_SKIP_TAGS = frozenset({"head", "script", "style", "meta", "link", "title", "base"})

# Intrinsic sizes for replaced/control elements (CSS px).
_CONTROL_SIZES: dict[str, tuple[float, float]] = {
    "select": (140.0, 22.0),
    "textarea": (250.0, 70.0),
    "button": (80.0, 24.0),
}
_DEFAULT_IMAGE_SIZE = (24.0, 24.0)


@dataclass(frozen=True)
class _TextStyle:
    """Resolved inline text styling carried through the flow."""

    font_size: float = 16.0
    bold: bool = False
    color: tuple[int, int, int] = (0, 0, 0)
    is_link: bool = False


class LayoutEngine:
    """Lays out documents at a fixed viewport width."""

    def __init__(
        self,
        resolver: Optional[StyleResolver] = None,
        viewport_width: int = 1024,
    ) -> None:
        if viewport_width < 32:
            raise ValueError("viewport too narrow to lay out")
        self.resolver = resolver or StyleResolver()
        self.viewport_width = viewport_width

    # ------------------------------------------------------------------

    def layout(self, document: Document) -> LayoutBox:
        """Lay out the document body; returns the root layout box."""
        body = document.body
        if body is None:
            return LayoutBox(None, Rect(0, 0, self.viewport_width, 0))
        self.resolver.invalidate()
        style = self.resolver.computed_style(body)
        margin = _edges(style, "margin", 16.0, self.viewport_width)
        # _layout_block subtracts the element's own margins from the
        # available width; the caller only positions by them.
        box = self._layout_block(
            body, margin.left, margin.top, self.viewport_width, _TextStyle()
        )
        total = Rect(
            0,
            0,
            self.viewport_width,
            box.rect.bottom + margin.bottom,
        )
        root = LayoutBox(None, total, box_type="viewport")
        root.background = (255, 255, 255)
        root.children.append(box)
        return root

    # ------------------------------------------------------------------
    # block layout

    def _layout_block(
        self,
        element: Element,
        x: float,
        y: float,
        available_width: float,
        inherited: _TextStyle,
    ) -> LayoutBox:
        style = self.resolver.computed_style(element)
        text_style = self._text_style(element, style, inherited)
        margin = _edges(style, "margin", text_style.font_size, available_width)
        padding = _edges(style, "padding", text_style.font_size, available_width)
        border = _border_width(style, element)

        width = self._resolve_width(element, style, text_style, available_width)
        if width is None:
            width = max(0.0, available_width - margin.horizontal)
        content_width = max(
            1.0, width - padding.horizontal - 2 * border
        )

        box = LayoutBox(element, Rect(x, y, width, 0.0))
        box.background = _background(element, style)
        box.gradient = _has_background_image(style)
        box.border_width = border
        if border:
            box.border_color = (128, 128, 128)

        if element.tag == "table" or style.display == "table":
            content_height = self._layout_table(
                element, box, x + border + padding.left,
                y + border + padding.top, content_width, text_style,
            )
        else:
            content_height = self._layout_children(
                element, box, x + border + padding.left,
                y + border + padding.top, content_width, text_style,
            )

        explicit = _explicit_height(element, style, text_style)
        height = (
            explicit
            if explicit is not None
            else content_height + padding.vertical + 2 * border
        )
        if element.tag == "hr" and explicit is None:
            height = 2.0
        box.rect = Rect(x, y, width, height)
        return box

    def _layout_children(
        self,
        element: Element,
        box: LayoutBox,
        x: float,
        y: float,
        width: float,
        text_style: _TextStyle,
    ) -> float:
        """Lay out mixed children; returns content height."""
        alignment = _alignment_of(element, self.resolver)
        cursor_y = y
        pending_inline: list[Node] = []
        for child in element.children:
            if self._is_block_child(child):
                if pending_inline:
                    cursor_y += self._flow_inline(
                        pending_inline, box, x, cursor_y, width, text_style,
                        alignment,
                    )
                    pending_inline = []
                child_el = child  # type: ignore[assignment]
                style = self.resolver.computed_style(child_el)
                if not style.visible and style.display == "none":
                    continue
                margin = _edges(style, "margin", text_style.font_size, width)
                child_box = self._layout_block(
                    child_el, x + margin.left, cursor_y + margin.top,
                    width, text_style,
                )
                box.children.append(child_box)
                cursor_y = child_box.rect.bottom + margin.bottom
            else:
                if _is_renderable_inline(child):
                    pending_inline.append(child)
        if pending_inline:
            cursor_y += self._flow_inline(
                pending_inline, box, x, cursor_y, width, text_style,
                alignment,
            )
        return cursor_y - y

    def _is_block_child(self, node: Node) -> bool:
        if not isinstance(node, Element):
            return False
        if node.tag in _SKIP_TAGS:
            return False
        display = self.resolver.computed_style(node).display
        return display in _BLOCK_DISPLAYS

    # ------------------------------------------------------------------
    # inline layout

    def _flow_inline(
        self,
        nodes: list[Node],
        parent_box: LayoutBox,
        x: float,
        y: float,
        width: float,
        text_style: _TextStyle,
        alignment: str = "left",
    ) -> float:
        flow = _InlineFlow(x, y, width)
        for node in nodes:
            self._flow_node(node, flow, text_style)
        flow.finish_line()
        if alignment in ("center", "right"):
            flow.apply_alignment(alignment)
        parent_box.text_runs.extend(flow.runs)
        parent_box.children.extend(flow.atomic_boxes)
        # Wrap each inline element's contributions in an inline layout box
        # so image maps and hit tests can find links and spans.
        for element, rects in flow.contributions:
            if not rects:
                continue
            union = _union_rects(rects)
            parent_box.children.append(
                LayoutBox(element, union, box_type="inline")
            )
        return flow.total_height()

    def _flow_node(
        self, node: Node, flow: "_InlineFlow", text_style: _TextStyle
    ) -> None:
        if isinstance(node, Text):
            data = _collapse_whitespace(node.data)
            if data.strip():
                flow.add_text(data.strip(), text_style, node.parent)
            return
        if not isinstance(node, Element):
            return
        if node.tag in _SKIP_TAGS:
            return
        style = self.resolver.computed_style(node)
        if not style.visible:
            return
        if node.tag == "br":
            flow.finish_line()
            return
        child_style = self._text_style(node, style, text_style)
        if node.tag == "img":
            width, height = _image_size(node, style, child_style)
            flow.add_atomic(node, width, height, "image")
            return
        if node.tag == "input":
            width, height = _input_size(node)
            flow.add_atomic(node, width, height, "control")
            return
        if node.tag in _CONTROL_SIZES:
            width, height = _CONTROL_SIZES[node.tag]
            flow.add_atomic(node, width, height, "control")
            return
        flow.open_element(node)
        for child in node.children:
            if self._is_block_child(child):
                # A block inside an inline context: lay it out as an
                # atomic chunk (approximation of anonymous-box rules).
                flow.finish_line()
                child_box = self._layout_block(
                    child, flow.x, flow.next_y(), flow.width, child_style
                )
                flow.add_block(child_box)
            else:
                self._flow_node(child, flow, child_style)
        flow.close_element(node)

    # ------------------------------------------------------------------
    # tables

    def _layout_table(
        self,
        table: Element,
        box: LayoutBox,
        x: float,
        y: float,
        width: float,
        text_style: _TextStyle,
    ) -> float:
        rows = _table_rows(table)
        if not rows:
            return self._layout_children(table, box, x, y, width, text_style)
        spacing = _int_attr(table, "cellspacing", 2)
        padding = _int_attr(table, "cellpadding", 2)
        column_count = max(
            (sum(_colspan(cell) for cell in _row_cells(row)) for row in rows),
            default=1,
        )
        column_count = max(1, column_count)
        column_width = (width - spacing * (column_count + 1)) / column_count
        cursor_y = y + spacing
        for row in rows:
            row_style = self.resolver.computed_style(row)
            if not row_style.visible:
                continue
            row_box = LayoutBox(
                row, Rect(x, cursor_y, width, 0.0), box_type="row"
            )
            row_box.background = _background(row, row_style)
            cell_x = x + spacing
            row_height = 0.0
            for cell in _row_cells(row):
                span = _colspan(cell)
                cell_width = column_width * span + spacing * (span - 1)
                cell_box = self._layout_cell(
                    cell, cell_x, cursor_y, cell_width, padding, text_style
                )
                row_box.children.append(cell_box)
                row_height = max(row_height, cell_box.rect.height)
                cell_x += cell_width + spacing
            # Stretch cells to the row height so backgrounds fill.
            for cell_box in row_box.children:
                cell_box.rect = replace(cell_box.rect, height=row_height)
            row_box.rect = Rect(x, cursor_y, width, row_height)
            box.children.append(row_box)
            cursor_y += row_height + spacing
        return cursor_y - y

    def _layout_cell(
        self,
        cell: Element,
        x: float,
        y: float,
        width: float,
        padding: int,
        text_style: _TextStyle,
    ) -> LayoutBox:
        style = self.resolver.computed_style(cell)
        cell_style = self._text_style(cell, style, text_style)
        box = LayoutBox(cell, Rect(x, y, width, 0.0), box_type="cell")
        box.background = _background(cell, style)
        content_width = max(1.0, width - 2 * padding)
        content_height = self._layout_children(
            cell, box, x + padding, y + padding, content_width, cell_style
        )
        box.rect = Rect(x, y, width, content_height + 2 * padding)
        return box

    # ------------------------------------------------------------------
    # style resolution helpers

    def _text_style(
        self, element: Element, style: ComputedStyle, inherited: _TextStyle
    ) -> _TextStyle:
        font_size = inherited.font_size
        raw_size = style.get("font-size")
        if raw_size:
            font_size = parse_font_size(raw_size, inherited.font_size)
        bold = inherited.bold
        weight = style.get("font-weight")
        if weight:
            if weight in ("bold", "bolder") or weight.isdigit() and int(weight) >= 600:
                bold = True
            elif weight in ("normal", "lighter"):
                bold = False
        color = inherited.color
        raw_color = style.get("color")
        if raw_color:
            parsed = parse_color(raw_color)
            if parsed is not None:
                color = parsed
        is_link = inherited.is_link or element.tag == "a"
        return _TextStyle(font_size=font_size, bold=bold, color=color, is_link=is_link)

    def _resolve_width(
        self,
        element: Element,
        style: ComputedStyle,
        text_style: _TextStyle,
        available: float,
    ) -> Optional[float]:
        raw = style.get("width")
        if raw:
            resolved = parse_length(
                raw, font_size=text_style.font_size, percent_base=available
            )
            if resolved is not None:
                return min(resolved, available)
        attr = element.get("width")
        if attr:
            resolved = _html_size_attr(attr, available)
            if resolved is not None:
                return min(resolved, available)
        return None


# ---------------------------------------------------------------------------
# the inline flow


class _InlineFlow:
    """Greedy line-filling of text runs and atomic inline boxes."""

    def __init__(self, x: float, y: float, width: float) -> None:
        self.x = x
        self.y = y
        self.width = max(1.0, width)
        self.cursor_x = x
        self.cursor_y = y
        self.current_line_height = 0.0
        self.runs: list[TextRun] = []
        self.atomic_boxes: list[LayoutBox] = []
        self.contributions: list[tuple[Element, list[Rect]]] = []
        self._open: list[list[Rect]] = []

    # -- element tracking ------------------------------------------------

    def open_element(self, element: Element) -> None:
        rects: list[Rect] = []
        self.contributions.append((element, rects))
        self._open.append(rects)

    def close_element(self, element: Element) -> None:
        if self._open:
            self._open.pop()

    def _contribute(self, rect: Rect) -> None:
        for rects in self._open:
            rects.append(rect)

    # -- placement ----------------------------------------------------------

    def add_text(self, text: str, style: _TextStyle, element) -> None:
        words = text.split()
        space = fonts.char_width(" ", style.font_size, style.bold)
        line_h = fonts.line_height(style.font_size)
        run_words: list[str] = []
        run_start = self.cursor_x
        run_width = 0.0

        def flush_run() -> None:
            nonlocal run_words, run_start, run_width
            if not run_words:
                return
            rect = Rect(run_start, self.cursor_y, run_width, line_h)
            self.runs.append(
                TextRun(
                    text=" ".join(run_words),
                    rect=rect,
                    font_size=style.font_size,
                    bold=style.bold,
                    color=style.color,
                    is_link=style.is_link,
                )
            )
            self._contribute(rect)
            run_words, run_width = [], 0.0
            run_start = self.cursor_x

        for word in words:
            word_width = fonts.text_width(word, style.font_size, style.bold)
            needed = word_width if self.cursor_x == self.x else word_width + space
            if self.cursor_x + needed > self.x + self.width and self.cursor_x > self.x:
                flush_run()
                self.finish_line()
                run_start = self.cursor_x
                needed = word_width
            advance = needed
            if run_words:
                run_width += space
            run_words.append(word)
            run_width += word_width
            self.cursor_x += advance
            self.current_line_height = max(self.current_line_height, line_h)
        flush_run()

    def add_atomic(
        self, element: Element, width: float, height: float, box_type: str
    ) -> None:
        if (
            self.cursor_x + width > self.x + self.width
            and self.cursor_x > self.x
        ):
            self.finish_line()
        rect = Rect(self.cursor_x, self.cursor_y, width, height)
        box = LayoutBox(element, rect, box_type=box_type)
        if box_type == "image":
            import zlib as _zlib

            box.background = (204, 204, 204)
            box.border_width = 1.0
            box.border_color = (150, 150, 150)
            src = element.get("src") or element.tag
            box.texture_seed = _zlib.crc32(src.encode("utf-8"))
        else:
            box.background = (240, 240, 240)
            box.border_width = 1.0
            box.border_color = (118, 118, 118)
        self.atomic_boxes.append(box)
        self._contribute(rect)
        self.cursor_x += width
        self.current_line_height = max(self.current_line_height, height)

    def add_block(self, box: LayoutBox) -> None:
        """A block box interrupting the inline flow."""
        self.atomic_boxes.append(box)
        self.cursor_y = box.rect.bottom
        self.cursor_x = self.x
        self.current_line_height = 0.0

    def finish_line(self) -> None:
        if self.cursor_x > self.x or self.current_line_height > 0:
            self.cursor_y += self.current_line_height or fonts.line_height(16.0)
        self.cursor_x = self.x
        self.current_line_height = 0.0

    def next_y(self) -> float:
        return self.cursor_y

    def total_height(self) -> float:
        return self.cursor_y - self.y

    def apply_alignment(self, alignment: str) -> None:
        """Shift finished lines for ``text-align: center`` / ``right``.

        Runs and atomic boxes sharing a baseline y form one line; each
        line shifts by the leftover horizontal space (or half of it).
        """
        from collections import defaultdict
        from dataclasses import replace as _replace

        lines: dict[float, list] = defaultdict(list)
        for run in self.runs:
            lines[round(run.rect.y, 1)].append(run)
        for box in self.atomic_boxes:
            if box.box_type in ("image", "control"):
                lines[round(box.rect.y, 1)].append(box)
        shifts: dict[float, float] = {}
        for line_y, items in lines.items():
            right = max(item.rect.right for item in items)
            slack = (self.x + self.width) - right
            if slack <= 0:
                continue
            shift = slack / 2 if alignment == "center" else slack
            shifts[line_y] = shift
            for item in items:
                item.rect = _replace(item.rect, x=item.rect.x + shift)
        # Keep the inline-element bounding boxes (built from these
        # contribution rects afterwards) in agreement with the shift.
        for __, rects in self.contributions:
            for index, rect in enumerate(rects):
                shift = shifts.get(round(rect.y, 1))
                if shift:
                    rects[index] = _replace(rect, x=rect.x + shift)


# ---------------------------------------------------------------------------
# helpers


def _alignment_of(element: Element, resolver: StyleResolver) -> str:
    """text-align from CSS, falling back to the HTML align attribute."""
    style_value = resolver.computed_style(element).get("text-align")
    if style_value in ("center", "right", "left"):
        return style_value
    attr = (element.get("align") or "").lower()
    if attr in ("center", "right", "left"):
        return attr
    return "left"


def _collapse_whitespace(text: str) -> str:
    return " ".join(text.split()) if text.strip() else ""


def _is_renderable_inline(node: Node) -> bool:
    if isinstance(node, Text):
        return bool(node.data.strip())
    return isinstance(node, Element)


def _edges(
    style: ComputedStyle, prefix: str, font_size: float, base: float
) -> Edges:
    values = {}
    for side in ("top", "right", "bottom", "left"):
        raw = style.get(f"{prefix}-{side}")
        resolved = 0.0
        if raw:
            parsed = parse_length(raw, font_size=font_size, percent_base=base)
            if parsed is not None:
                resolved = max(0.0, parsed)
        values[side] = resolved
    return Edges(**values)


def _border_width(style: ComputedStyle, element: Element) -> float:
    raw = style.get("border-top-width") or style.get("border-width")
    if raw:
        parsed = parse_length(raw)
        if parsed is not None:
            return max(0.0, parsed)
    attr = element.get("border")
    if attr and attr.isdigit():
        return float(attr)
    return 0.0


def _background(element: Element, style: ComputedStyle):
    raw = style.get("background-color") or style.get("background")
    if raw:
        color = parse_color(raw.split()[0])
        if color is not None:
            return color
    attr = element.get("bgcolor")
    if attr:
        return parse_color(attr)
    return None


def _has_background_image(style: ComputedStyle) -> bool:
    raw = style.get("background") or style.get("background-image") or ""
    return "url(" in raw


def _explicit_height(element: Element, style: ComputedStyle, text_style):
    raw = style.get("height")
    if raw:
        parsed = parse_length(raw, font_size=text_style.font_size)
        if parsed is not None:
            return parsed
    attr = element.get("height")
    if attr and attr.rstrip("px").isdigit():
        return float(attr.rstrip("px"))
    return None


def _html_size_attr(value: str, base: float) -> Optional[float]:
    value = value.strip()
    if value.endswith("%"):
        try:
            return float(value[:-1]) * base / 100.0
        except ValueError:
            return None
    try:
        return float(value.rstrip("px"))
    except ValueError:
        return None


def _image_size(element: Element, style: ComputedStyle, text_style) -> tuple[float, float]:
    width = None
    height = None
    raw_w = style.get("width") or element.get("width")
    raw_h = style.get("height") or element.get("height")
    if raw_w:
        width = _html_size_attr(raw_w, 1024) or parse_length(raw_w)
    if raw_h:
        height = _html_size_attr(raw_h, 768) or parse_length(raw_h)
    if width is None and height is None:
        return _DEFAULT_IMAGE_SIZE
    if width is None:
        width = height
    if height is None:
        height = width
    return float(width), float(height)


def _input_size(element: Element) -> tuple[float, float]:
    kind = (element.get("type") or "text").lower()
    if kind in ("submit", "button", "reset"):
        label = element.get("value") or "Submit"
        return max(60.0, fonts.text_width(label, 13.0) + 24.0), 24.0
    if kind in ("checkbox", "radio"):
        return 14.0, 14.0
    if kind == "hidden":
        return 0.0, 0.0
    size = _int_attr(element, "size", 20)
    return max(40.0, size * 7.5), 22.0


def _int_attr(element: Element, name: str, default: int) -> int:
    raw = element.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _table_rows(table: Element) -> list[Element]:
    rows: list[Element] = []
    for child in table.child_elements():
        if child.tag == "tr":
            rows.append(child)
        elif child.tag in ("thead", "tbody", "tfoot"):
            rows.extend(
                grandchild
                for grandchild in child.child_elements()
                if grandchild.tag == "tr"
            )
    return rows


def _row_cells(row: Element) -> list[Element]:
    return [
        child for child in row.child_elements() if child.tag in ("td", "th")
    ]


def _colspan(cell: Element) -> int:
    raw = cell.get("colspan")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def _union_rects(rects: list[Rect]) -> Rect:
    x1 = min(rect.x for rect in rects)
    y1 = min(rect.y for rect in rects)
    x2 = max(rect.right for rect in rects)
    y2 = max(rect.bottom for rect in rects)
    return Rect(x1, y1, x2 - x1, y2 - y1)
