"""Clickable image-map overlays for pre-rendered snapshots.

§4.3: "All of the defined subpage attributes contribute to an image map
overlay, which is automatically generated for the main page snapshot. ...
The queried coordinates map to the original-size document, but since the
snapshot is scaled down, the m.Site framework implicitly translates the
coordinates as well."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render.box import Rect


@dataclass(frozen=True)
class MapRegion:
    """One clickable rectangle linking a snapshot area to a subpage."""

    rect: Rect
    href: str
    alt: str = ""


def build_image_map(
    regions: list[MapRegion],
    snapshot_src: str,
    scale: float = 1.0,
    map_name: str = "msite-menu",
    width: int | None = None,
    height: int | None = None,
) -> str:
    """HTML for a scaled snapshot image with clickable regions.

    ``scale`` translates original-document coordinates into snapshot-image
    coordinates (the implicit translation the paper describes).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    areas = []
    for region in regions:
        scaled = region.rect.scaled(scale)
        x, y, w, h = scaled.rounded()
        coords = f"{x},{y},{x + w},{y + h}"
        alt = region.alt.replace('"', "&quot;")
        areas.append(
            f'<area shape="rect" coords="{coords}" '
            f'href="{region.href}" alt="{alt}" />'
        )
    size_attrs = ""
    if width is not None:
        size_attrs += f' width="{width}"'
    if height is not None:
        size_attrs += f' height="{height}"'
    areas_html = "\n    ".join(areas)
    return (
        f'<map name="{map_name}">\n    {areas_html}\n</map>\n'
        f'<img src="{snapshot_src}" usemap="#{map_name}"'
        f'{size_attrs} alt="site snapshot" border="0" />'
    )
