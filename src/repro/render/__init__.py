"""Server-side rendering engine (the WebKit analog's drawing half).

The m.Site proxy uses an embedded browser "as one of several pre-rendering
engines" (§1) to produce snapshots, and queries element coordinates from
the DOM to build image maps (§4.3).  This package provides that pipeline
from scratch:

* :mod:`repro.render.fonts` — proportional font metrics + a bitmap font,
* :mod:`repro.render.layout` — block/inline/table layout producing a box
  tree with absolute geometry,
* :mod:`repro.render.paint` — display-list construction,
* :mod:`repro.render.raster` — numpy rasterizer,
* :mod:`repro.render.image` — image model with PNG/JPEG encoders and the
  fidelity post-processor,
* :mod:`repro.render.snapshot` — page → image + geometry,
* :mod:`repro.render.imagemap` — clickable overlay generation,
* :mod:`repro.render.engines` — pluggable HTML/image/PDF/text outputs.
"""

from repro.render.box import Rect, Edges, LayoutBox
from repro.render.layout import LayoutEngine
from repro.render.image import RasterImage, encode_png, encode_jpeg
from repro.render.snapshot import render_snapshot, PageSnapshot
from repro.render.imagemap import build_image_map

__all__ = [
    "Rect",
    "Edges",
    "LayoutBox",
    "LayoutEngine",
    "RasterImage",
    "encode_png",
    "encode_jpeg",
    "render_snapshot",
    "PageSnapshot",
    "build_image_map",
]
