"""Page snapshots: full pipeline from document to raster image + geometry.

This is the heavyweight render path the paper reserves for "when absolutely
necessary" (§2): parse → cascade → layout → paint → rasterize.  The
returned :class:`PageSnapshot` carries the element geometry that the
subpage image maps are generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.css.cascade import StyleResolver
from repro.css.parser import parse_stylesheet
from repro.dom.document import Document
from repro.dom.element import Element
from repro.render.box import LayoutBox, Rect
from repro.render.image import RasterImage
from repro.render.layout import LayoutEngine
from repro.render.paint import build_display_list, paint_onto
from repro.render.raster import Canvas


@dataclass
class PageSnapshot:
    """A rendered page: pixels plus the layout geometry behind them."""

    image: RasterImage
    layout_root: LayoutBox
    viewport_width: int
    page_height: int
    stylesheet_count: int = 0
    element_geometry: dict[int, Rect] = field(default_factory=dict)

    def geometry_of(self, element: Element) -> Optional[Rect]:
        """Border-box rect of ``element`` in page coordinates."""
        return self.element_geometry.get(id(element))

    def hit_test(self, x: float, y: float) -> Optional[Element]:
        """Element at page coordinates — powers the admin tool's
        point-and-click object selection.

        Pre-order iteration visits parents before children, so the last
        containing box is the deepest element under the point.
        """
        best: Optional[Element] = None
        for box in self.layout_root.iter_boxes():
            if box.element is not None and box.rect.contains(x, y):
                best = box.element
        return best


def collect_stylesheets(
    document: Document, external_css: Optional[dict[str, str]] = None
):
    """Stylesheets from <style> blocks plus fetched <link rel=stylesheet>.

    ``external_css`` maps href → CSS text for stylesheets the proxy has
    downloaded alongside the page.
    """
    sheets = []
    external_css = external_css or {}
    for element in document.all_elements():
        if element.tag == "style":
            sheets.append(parse_stylesheet(element.text_content))
        elif (
            element.tag == "link"
            and (element.get("rel") or "").lower() == "stylesheet"
        ):
            href = element.get("href") or ""
            css_text = external_css.get(href)
            if css_text is not None:
                sheets.append(parse_stylesheet(css_text, href=href))
    return sheets


def render_snapshot(
    document: Document,
    viewport_width: int = 1024,
    external_css: Optional[dict[str, str]] = None,
    max_height: int = 8192,
) -> PageSnapshot:
    """Render a full-page snapshot at the given viewport width."""
    resolver = StyleResolver(collect_stylesheets(document, external_css))
    engine = LayoutEngine(resolver, viewport_width)
    root = engine.layout(document)
    page_height = min(max_height, max(1, int(round(root.rect.height))))
    canvas = Canvas(viewport_width, page_height)
    paint_onto(canvas, build_display_list(root))
    # Anti-alias once, matching what a real rasterizer's text looks like.
    antialiased = RasterImage(canvas.pixels).smoothed()
    geometry: dict[int, Rect] = {}
    for box in root.iter_boxes():
        if box.element is not None and id(box.element) not in geometry:
            geometry[id(box.element)] = box.rect
    return PageSnapshot(
        image=antialiased,
        layout_root=root,
        viewport_width=viewport_width,
        page_height=page_height,
        stylesheet_count=len(resolver.stylesheets),
        element_geometry=geometry,
    )
