"""Pluggable content-output engines.

The paper's framework is "a pluggable content adaptation system that can
be extended with multiple rendering engines to produce HTML, static
images, PDF, plain text, or Flash content at any point in the rendering
process" (§1).  Each engine turns a document (plus optional snapshot) into
a byte payload with a MIME type; the registry lets deployments add more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Text
from repro.errors import RenderError
from repro.html.serializer import serialize
from repro.render.image import encode_jpeg, encode_png
from repro.render.snapshot import render_snapshot


@dataclass
class RenderedOutput:
    """One engine's product."""

    content_type: str
    data: bytes
    engine: str


class RenderingEngine:
    """Base class: subclass and implement render()."""

    name = "abstract"

    def render(self, document: Document, **options) -> RenderedOutput:
        raise NotImplementedError


class HtmlEngine(RenderingEngine):
    """Pass-through serialization (optionally XHTML)."""

    name = "html"

    def render(self, document: Document, **options) -> RenderedOutput:
        xhtml = bool(options.get("xhtml", False))
        markup = serialize(document, xhtml=xhtml)
        content_type = (
            "application/xhtml+xml" if xhtml else "text/html; charset=utf-8"
        )
        return RenderedOutput(content_type, markup.encode("utf-8"), self.name)


class ImageEngine(RenderingEngine):
    """Full graphical render to PNG or JPEG."""

    name = "image"

    def render(self, document: Document, **options) -> RenderedOutput:
        viewport = int(options.get("viewport_width", 1024))
        fmt = options.get("format", "png")
        snapshot = options.get("snapshot") or render_snapshot(
            document, viewport_width=viewport
        )
        if fmt == "png":
            encoded = encode_png(snapshot.image)
            return RenderedOutput("image/png", encoded.data, self.name)
        if fmt == "jpeg":
            quality = int(options.get("quality", 75))
            encoded = encode_jpeg(snapshot.image, quality=quality)
            return RenderedOutput("image/jpeg", encoded.data, self.name)
        raise RenderError(f"image engine cannot produce format {fmt!r}")


class TextEngine(RenderingEngine):
    """Plain-text extraction with block-level line breaks."""

    name = "text"

    _BLOCKS = frozenset(
        {"p", "div", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6",
         "br", "table", "ul", "ol", "form", "hr"}
    )

    def render(self, document: Document, **options) -> RenderedOutput:
        lines: list[str] = []
        body = document.body
        if body is not None:
            self._walk(body, lines)
        text = "\n".join(line for line in (l.strip() for l in lines) if line)
        return RenderedOutput(
            "text/plain; charset=utf-8", text.encode("utf-8"), self.name
        )

    def _walk(self, element: Element, lines: list[str]) -> None:
        current: list[str] = []
        for node in element.children:
            if isinstance(node, Text):
                collapsed = " ".join(node.data.split())
                if collapsed:
                    current.append(collapsed)
            elif isinstance(node, Element):
                if node.tag in ("script", "style", "head", "title"):
                    continue
                if node.tag in self._BLOCKS:
                    if current:
                        lines.append(" ".join(current))
                        current = []
                    self._walk(node, lines)
                else:
                    inner: list[str] = []
                    self._walk_inline(node, inner)
                    if inner:
                        current.append(" ".join(inner))
        if current:
            lines.append(" ".join(current))

    def _walk_inline(self, element: Element, out: list[str]) -> None:
        for node in element.children:
            if isinstance(node, Text):
                collapsed = " ".join(node.data.split())
                if collapsed:
                    out.append(collapsed)
            elif isinstance(node, Element):
                if node.tag in ("script", "style"):
                    continue
                self._walk_inline(node, out)


class PdfEngine(RenderingEngine):
    """Minimal but valid single-page PDF with the page's text content."""

    name = "pdf"

    def render(self, document: Document, **options) -> RenderedOutput:
        text_output = TextEngine().render(document)
        lines = text_output.data.decode("utf-8").split("\n")
        data = _build_pdf(document.title or "Untitled", lines[:120])
        return RenderedOutput("application/pdf", data, self.name)


def _pdf_escape(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace("(", r"\(").replace(")", r"\)")
    )


def _build_pdf(title: str, lines: list[str]) -> bytes:
    """Assemble a one-page PDF 1.4 file with Helvetica text."""
    content_parts = ["BT /F1 10 Tf 36 756 Td 12 TL"]
    for line in lines:
        content_parts.append(f"({_pdf_escape(line[:110])}) Tj T*")
    content_parts.append("ET")
    content = "\n".join(content_parts).encode("latin-1", errors="replace")

    objects: list[bytes] = [
        b"<< /Type /Catalog /Pages 2 0 R >>",
        b"<< /Type /Pages /Kids [3 0 R] /Count 1 >>",
        b"<< /Type /Page /Parent 2 0 R /MediaBox [0 0 612 792] "
        b"/Contents 4 0 R /Resources << /Font << /F1 5 0 R >> >> >>",
        b"<< /Length " + str(len(content)).encode() + b" >>\nstream\n"
        + content + b"\nendstream",
        b"<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>",
    ]
    out = bytearray(b"%PDF-1.4\n")
    offsets = [0]
    for index, body in enumerate(objects, start=1):
        offsets.append(len(out))
        out += f"{index} 0 obj\n".encode() + body + b"\nendobj\n"
    xref_offset = len(out)
    out += f"xref\n0 {len(objects) + 1}\n".encode()
    out += b"0000000000 65535 f \n"
    for offset in offsets[1:]:
        out += f"{offset:010d} 00000 n \n".encode()
    out += (
        f"trailer\n<< /Size {len(objects) + 1} /Root 1 0 R >>\n"
        f"startxref\n{xref_offset}\n%%EOF\n"
    ).encode()
    return bytes(out)


class EngineRegistry:
    """Named registry of rendering engines; extensible by deployments."""

    def __init__(self) -> None:
        self._engines: dict[str, RenderingEngine] = {}
        for engine in (HtmlEngine(), ImageEngine(), TextEngine(), PdfEngine()):
            self.register(engine)

    def register(self, engine: RenderingEngine) -> None:
        self._engines[engine.name] = engine

    def get(self, name: str) -> RenderingEngine:
        engine = self._engines.get(name)
        if engine is None:
            raise RenderError(f"no rendering engine named {name!r}")
        return engine

    @property
    def names(self) -> list[str]:
        return sorted(self._engines)
