"""Small shared utilities: deterministic text and identifier generation."""

from repro.util.text import TextGenerator
from repro.util.names import USERNAMES, FIRST_NAMES

__all__ = ["TextGenerator", "USERNAMES", "FIRST_NAMES"]
