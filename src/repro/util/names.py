"""Name pools for the synthetic community generator."""

FIRST_NAMES = [
    "Aaron", "Alice", "Andy", "Beth", "Bill", "Bruce", "Carl", "Cathy",
    "Chuck", "Dan", "Dave", "Dennis", "Diane", "Don", "Doug", "Ed",
    "Ellen", "Frank", "Fred", "Gary", "George", "Glenn", "Hank", "Harold",
    "Howard", "Jack", "James", "Jerry", "Jim", "Joe", "John", "Karen",
    "Keith", "Ken", "Kevin", "Larry", "Lee", "Linda", "Lloyd", "Mark",
    "Marty", "Matt", "Mike", "Nancy", "Neil", "Norm", "Paul", "Pete",
    "Phil", "Ralph", "Randy", "Ray", "Rich", "Rick", "Rob", "Roger",
    "Ron", "Roy", "Russ", "Sam", "Scott", "Stan", "Steve", "Ted",
    "Terry", "Tom", "Tony", "Vern", "Walt", "Wayne",
]

LAST_NAMES = [
    "Anderson", "Baker", "Barnes", "Bennett", "Brooks", "Brown", "Carter",
    "Clark", "Collins", "Cook", "Cooper", "Davis", "Edwards", "Evans",
    "Fisher", "Foster", "Garcia", "Gray", "Green", "Hall", "Harris",
    "Hill", "Howard", "Hughes", "Jackson", "James", "Johnson", "Jones",
    "Kelly", "King", "Lee", "Lewis", "Long", "Martin", "Miller",
    "Mitchell", "Moore", "Morgan", "Morris", "Murphy", "Nelson", "Parker",
    "Peterson", "Phillips", "Powell", "Price", "Reed", "Richardson",
    "Roberts", "Robinson", "Rogers", "Ross", "Russell", "Sanders",
    "Scott", "Smith", "Stewart", "Taylor", "Thomas", "Thompson",
    "Turner", "Walker", "Ward", "Watson", "White", "Williams", "Wilson",
    "Wood", "Wright", "Young",
]

# Handle fragments for forum usernames like "SawdustSteve" or "OakRidge42".
HANDLE_PREFIXES = [
    "Sawdust", "Oak", "Maple", "Walnut", "Cherry", "Pine", "Cedar",
    "Birch", "Lathe", "Chisel", "Plane", "Router", "Dovetail", "Tenon",
    "Mortise", "Grain", "Timber", "Lumber", "Shaving", "Spindle",
    "Bandsaw", "Jointer", "Veneer", "Burl", "Knot", "Rasp", "Gouge",
]

HANDLE_SUFFIXES = [
    "Worker", "Turner", "Smith", "Wright", "Maker", "Carver", "Shop",
    "Ridge", "Creek", "Mill", "Bench", "Hands", "Craft", "Guy", "Gal",
    "Pro", "Fan", "Nut", "Hound", "Whisperer",
]

USERNAMES = [prefix + suffix for prefix in HANDLE_PREFIXES for suffix in HANDLE_SUFFIXES]
