"""Deterministic filler-text generation with a woodworking lexicon.

The synthetic forum needs realistic-looking thread titles, forum
descriptions and post bodies whose byte volumes match the paper's test
site.  All output is a pure function of the seed.
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRandom

_NOUNS = [
    "table", "bench", "dovetail", "jointer", "planer", "bandsaw", "lathe",
    "chisel", "walnut", "cherry", "maple", "oak", "plywood", "veneer",
    "finish", "glue", "clamp", "mortise", "tenon", "router", "blade",
    "fence", "jig", "sander", "grain", "board", "panel", "drawer",
    "cabinet", "shelf", "miter", "spline", "dado", "rabbet", "scraper",
    "burnisher", "shellac", "lacquer", "stain", "sawdust", "workbench",
    "vise", "mallet", "gouge", "spokeshave", "template", "pattern",
]

_VERBS = [
    "cutting", "gluing", "sanding", "finishing", "turning", "carving",
    "joining", "planing", "routing", "clamping", "measuring", "marking",
    "sharpening", "fitting", "assembling", "staining", "sealing",
    "ripping", "crosscutting", "resawing", "flattening", "squaring",
]

_ADJECTIVES = [
    "quartersawn", "figured", "curly", "spalted", "rough", "smooth",
    "straight", "warped", "cupped", "twisted", "kiln-dried", "air-dried",
    "reclaimed", "antique", "custom", "heavy", "light", "simple",
    "complex", "sturdy", "delicate", "affordable", "premium",
]

_CONNECTIVES = [
    "with", "for", "on", "about", "using", "without", "versus", "from",
    "before", "after", "during", "instead of",
]

_QUESTIONS = [
    "Best way to", "Help with", "Question about", "Advice needed:",
    "First attempt at", "Problems with", "Tips for", "Review:",
    "Show and tell:", "How do you handle", "What happened to my",
    "Is it worth", "Finally finished my",
]


class TextGenerator:
    """Seeded generator for titles, sentences, and paragraphs."""

    def __init__(self, seed: int = 0x57EE1) -> None:
        self._rng = DeterministicRandom(seed)

    def word(self) -> str:
        return self._rng.choice(_NOUNS)

    def title(self, max_words: int = 7) -> str:
        rng = self._rng
        parts = [rng.choice(_QUESTIONS)]
        count = rng.randint(2, max_words)
        for index in range(count):
            pool = (_ADJECTIVES, _NOUNS, _VERBS, _CONNECTIVES)[
                rng.randint(0, 3)
            ]
            parts.append(rng.choice(pool))
        return " ".join(parts)

    def sentence(self, min_words: int = 6, max_words: int = 18) -> str:
        rng = self._rng
        count = rng.randint(min_words, max_words)
        words = []
        for index in range(count):
            pool = (_NOUNS, _VERBS, _ADJECTIVES, _CONNECTIVES)[
                rng.randint(0, 3)
            ]
            words.append(rng.choice(pool))
        text = " ".join(words)
        return text[0].upper() + text[1:] + "."

    def paragraph(self, sentences: int = 4) -> str:
        return " ".join(self.sentence() for __ in range(sentences))

    def description(self) -> str:
        """A one-to-two sentence forum description."""
        return self.sentence(8, 16) + " " + self.sentence(5, 12)
