"""Page-load timing model.

Wall-clock time from initial request to browsable page is composed of

* network time — radio wakeup + RTT batches + bytes / bandwidth — from
  the device's :class:`NetworkLink`, and
* CPU time — parse + style + layout + paint + script execution — in
  *megacycles of browser work* divided by the device's effective clock.

The megacycle constants below are calibrated jointly against the paper's
published anchors (desktop 1.5 s, iPhone 4 WiFi 4.5 s, BlackBerry Tour
20 s over 3G for the 224 KB entry page) and are deliberately era-correct:
2012 mobile JavaScript engines really did spend seconds on a vBulletin
page's ~12 external scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.profiles import DeviceProfile
from repro.dom.document import Document

# Megacycles of browser work per unit.
CYCLES_PER_HTML_KB = 0.9
CYCLES_PER_CSS_KB = 1.1
CYCLES_PER_SCRIPT_KB = 26.0
CYCLES_PER_ELEMENT = 0.35
CYCLES_PER_KPIXEL_PAINT = 0.16
CYCLES_PER_IMAGE_DECODE_KPIXEL = 0.30
CYCLES_PER_REQUEST_OVERHEAD = 1.2  # connection + cache bookkeeping


@dataclass(frozen=True)
class PageStats:
    """Resource census of a page, as a client browser sees it."""

    html_bytes: int
    css_bytes: int = 0
    script_bytes: int = 0
    image_bytes: int = 0
    resource_count: int = 1  # total HTTP requests including the page
    element_count: int = 0
    image_count: int = 0
    image_pixels: int = 0  # decoded pixels across all images

    @property
    def total_bytes(self) -> int:
        return (
            self.html_bytes
            + self.css_bytes
            + self.script_bytes
            + self.image_bytes
        )


@dataclass(frozen=True)
class LoadBreakdown:
    """Where the wall-clock time of one page load went."""

    network_s: float
    parse_s: float
    style_s: float
    script_s: float
    layout_paint_s: float
    image_decode_s: float

    @property
    def cpu_s(self) -> float:
        return (
            self.parse_s
            + self.style_s
            + self.script_s
            + self.layout_paint_s
            + self.image_decode_s
        )

    @property
    def total_s(self) -> float:
        return self.network_s + self.cpu_s


def estimate_load_time(
    device: DeviceProfile,
    stats: PageStats,
    page_height: float | None = None,
) -> LoadBreakdown:
    """Wall-clock page-load breakdown for ``stats`` on ``device``.

    ``page_height`` (CSS px at the device's layout viewport) sizes the
    paint workload; when omitted, a density heuristic derives it from
    content volume.
    """
    link = device.link
    network_s = link.page_load_time(stats.total_bytes, stats.resource_count)

    if page_height is None:
        # ~55 bytes of HTML per vertical CSS pixel at 1024 wide, scaled
        # to the device's layout viewport (narrower viewport → taller page).
        page_height = (stats.html_bytes / 55.0) * (1024.0 / device.layout_viewport)
    paint_kpixels = device.layout_viewport * max(0.0, page_height) / 1000.0

    mcycles_parse = (stats.html_bytes / 1024.0) * CYCLES_PER_HTML_KB
    mcycles_style = (stats.css_bytes / 1024.0) * CYCLES_PER_CSS_KB
    mcycles_script = (stats.script_bytes / 1024.0) * CYCLES_PER_SCRIPT_KB
    mcycles_layout_paint = (
        stats.element_count * CYCLES_PER_ELEMENT
        + paint_kpixels * CYCLES_PER_KPIXEL_PAINT
        + stats.resource_count * CYCLES_PER_REQUEST_OVERHEAD
    )
    mcycles_images = (
        stats.image_pixels / 1000.0
    ) * CYCLES_PER_IMAGE_DECODE_KPIXEL

    effective = device.effective_mhz
    return LoadBreakdown(
        network_s=network_s,
        parse_s=mcycles_parse / effective,
        style_s=mcycles_style / effective,
        script_s=mcycles_script / effective,
        layout_paint_s=mcycles_layout_paint / effective,
        image_decode_s=mcycles_images / effective,
    )


def census_document(
    document: Document,
    html_bytes: int,
    css_bytes: int = 0,
    script_bytes: int = 0,
    image_bytes: int = 0,
    resource_count: int | None = None,
    image_pixels: int | None = None,
) -> PageStats:
    """Build :class:`PageStats` from a parsed document plus byte counts."""
    elements = document.all_elements()
    unique_sources = {
        el.get("src") for el in elements if el.tag == "img" and el.get("src")
    }
    image_count = len(unique_sources)
    if resource_count is None:
        # Repeated images (status icons) are fetched once and cached.
        scripts = sum(
            1 for el in elements if el.tag == "script" and el.get("src")
        )
        links = sum(
            1
            for el in elements
            if el.tag == "link"
            and (el.get("rel") or "").lower() == "stylesheet"
        )
        resource_count = 1 + scripts + links + image_count
    if image_pixels is None:
        # Assume modest decorative images when sizes are not declared.
        image_pixels = image_count * 32 * 32
        seen: set[str] = set()
        for element in elements:
            if element.tag == "img" and element.get("src") not in seen:
                seen.add(element.get("src") or "")
                try:
                    width = int(element.get("width") or 0)
                    height = int(element.get("height") or 0)
                except ValueError:
                    continue
                if width and height:
                    image_pixels += width * height
    return PageStats(
        html_bytes=html_bytes,
        css_bytes=css_bytes,
        script_bytes=script_bytes,
        image_bytes=image_bytes,
        resource_count=resource_count,
        element_count=len(elements),
        image_count=image_count,
        image_pixels=image_pixels,
    )
