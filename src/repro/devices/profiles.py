"""Device profiles for the paper's evaluation hardware.

Clock rates are the published figures (BlackBerry Tour 528 MHz and iPod
Touch 3G 600 MHz appear in §4.2 of the paper directly).  The
``engine_efficiency`` factor captures how much useful rendering work a
browser extracts per clock: the BlackBerry 4.x browser predates modern
mobile WebKit and is substantially less efficient than Safari on the same
clock, which is what makes the Tour's 20-second page load possible at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.network import (
    LINK_3G,
    LINK_HSPA,
    LINK_LAN,
    LINK_WIFI,
    NetworkLink,
)


@dataclass(frozen=True)
class DeviceProfile:
    """A client device with its browser and default network link."""

    name: str
    cpu_mhz: float
    engine_efficiency: float  # useful work per clock vs. mobile WebKit = 1.0
    link: NetworkLink
    screen_width: int
    screen_height: int
    layout_viewport: int  # width desktop pages are laid out at
    supports_ajax: bool = True

    @property
    def effective_mhz(self) -> float:
        return self.cpu_mhz * self.engine_efficiency

    def with_link(self, link: NetworkLink) -> "DeviceProfile":
        from dataclasses import replace

        return replace(self, link=link)


BLACKBERRY_TOUR = DeviceProfile(
    name="blackberry-tour",
    cpu_mhz=528.0,
    engine_efficiency=0.58,  # BlackBerry 4.7 browser
    link=LINK_3G,
    screen_width=480,
    screen_height=360,
    layout_viewport=480,  # no virtual-viewport zoom: 480x325 browser area
    supports_ajax=False,
)

BLACKBERRY_STORM = DeviceProfile(
    name="blackberry-storm",
    cpu_mhz=528.0,
    engine_efficiency=0.66,
    link=LINK_3G,
    screen_width=480,
    screen_height=360,
    layout_viewport=480,
    supports_ajax=False,
)

IPHONE_4 = DeviceProfile(
    name="iphone-4",
    cpu_mhz=800.0,  # A4 underclocked from 1 GHz
    engine_efficiency=1.0,
    link=LINK_3G,
    screen_width=320,
    screen_height=480,
    layout_viewport=980,  # Mobile Safari virtual viewport
)

IPOD_TOUCH_3G = DeviceProfile(
    name="ipod-touch-3g",
    cpu_mhz=600.0,
    engine_efficiency=1.35,  # same Safari, lighter OS background load
    link=LINK_WIFI,
    screen_width=320,
    screen_height=480,
    layout_viewport=980,
)

IPAD_1 = DeviceProfile(
    name="ipad-1",
    cpu_mhz=1000.0,
    engine_efficiency=1.05,
    link=LINK_WIFI,
    screen_width=768,
    screen_height=1024,
    layout_viewport=980,
)

DESKTOP = DeviceProfile(
    name="desktop",
    cpu_mhz=2400.0,
    engine_efficiency=1.0,
    link=LINK_LAN,
    screen_width=1280,
    screen_height=1024,
    layout_viewport=1024,
)

DEVICE_PROFILES = {
    profile.name: profile
    for profile in (
        BLACKBERRY_TOUR,
        BLACKBERRY_STORM,
        IPHONE_4,
        IPOD_TOUCH_3G,
        IPAD_1,
        DESKTOP,
    )
}

# Link shorthands re-exported for sweep configuration.
LINKS = {
    "3g": LINK_3G,
    "hspa": LINK_HSPA,
    "wifi": LINK_WIFI,
    "lan": LINK_LAN,
}
