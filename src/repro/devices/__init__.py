"""Mobile-device simulation: profiles and page-load timing models.

Reproduces the measurement side of the paper's Table 1: wall-clock time
from initial request to browsable page across a BlackBerry Tour, iPhone 4,
iPod Touch (3rd gen), and a desktop browser, over 3G / WiFi / LAN links.

Hardware is simulated (no handsets available); the model composes network
transfer (bytes, round trips, 3G radio wakeup) with on-device CPU work
(parse, style, layout, paint, script execution) scaled by clock rate and
browser-engine efficiency.  Constants are documented in
:mod:`repro.devices.timing`.
"""

from repro.devices.profiles import (
    DeviceProfile,
    BLACKBERRY_TOUR,
    BLACKBERRY_STORM,
    IPHONE_4,
    IPOD_TOUCH_3G,
    IPAD_1,
    DESKTOP,
    DEVICE_PROFILES,
)
from repro.devices.timing import PageStats, LoadBreakdown, estimate_load_time

__all__ = [
    "DeviceProfile",
    "BLACKBERRY_TOUR",
    "BLACKBERRY_STORM",
    "IPHONE_4",
    "IPOD_TOUCH_3G",
    "IPAD_1",
    "DESKTOP",
    "DEVICE_PROFILES",
    "PageStats",
    "LoadBreakdown",
    "estimate_load_time",
]
