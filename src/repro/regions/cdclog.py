"""The event-sourced invalidation log (change-data-capture style).

Point invalidations don't survive a partition: a region that missed the
bus while disconnected has no way to know *what* it missed, so its only
safe move on heal would be dropping everything.  The CDC log replaces
fire-and-forget events with an **append-only, monotonically sequenced
stream**: every origin-content change, ``?refresh=1``, explicit
invalidation, and TTL purge appends one :class:`ChangeEvent`; each
region remembers the last sequence number it applied (its *acked
offset*) and replays everything after it — catch-up after a partition
is deterministic, ordered, and idempotent.

Retention is bounded.  A region so far behind that its offset has been
truncated out of the log gets ``truncated=True`` from
:meth:`InvalidationLog.events_after` and must full-resync (drop derived
state, re-copy the snapshot store) instead of replaying a gap it cannot
see.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.observability.metrics import MetricsRegistry


@dataclass(frozen=True)
class ChangeEvent:
    """One entry in the invalidation log."""

    seq: int
    kind: str  # refresh | invalidate | expire | clear
    key: Optional[str]  # routing key (refresh) or cache key; None = all
    origin: str  # region that generated the change
    ts: float = 0.0


class InvalidationLog:
    """Append-only, bounded, monotonically-sequenced change stream."""

    def __init__(
        self,
        retention: int = 4096,
        clock=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if retention < 1:
            raise ValueError("retention must be at least 1 event")
        self.retention = retention
        self.clock = clock
        self._lock = threading.Lock()
        self._events: deque[ChangeEvent] = deque()
        self._seq = 0
        registry = metrics or MetricsRegistry()
        self._registry = registry
        self._head_gauge = registry.gauge(
            "msite_cdclog_head_seq",
            "Highest sequence number appended to the invalidation log.",
        )
        self._retained_gauge = registry.gauge(
            "msite_cdclog_retained_events",
            "Events currently retained by the invalidation log.",
        )
        self._dropped = registry.counter(
            "msite_cdclog_dropped_total",
            "Events aged out of the log by the retention bound.",
        )
        self._truncated_replays = registry.counter(
            "msite_cdclog_truncated_replays_total",
            "Replay attempts from an offset older than retention "
            "(forces a full resync).",
        )
        self._replayed = registry.counter(
            "msite_cdclog_replayed_total",
            "Events handed out to replaying consumers.",
        )

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def append(
        self, kind: str, key: Optional[str], origin: str = ""
    ) -> ChangeEvent:
        with self._lock:
            self._seq += 1
            event = ChangeEvent(
                seq=self._seq,
                kind=kind,
                key=key,
                origin=origin,
                ts=self._now,
            )
            self._events.append(event)
            while len(self._events) > self.retention:
                self._events.popleft()
                self._dropped.inc()
            self._head_gauge.set(self._seq)
            self._retained_gauge.set(len(self._events))
        self._registry.counter(
            "msite_cdclog_appends_total",
            "Change events appended to the invalidation log.",
            labels={"kind": kind},
        ).inc()
        return event

    @property
    def head_seq(self) -> int:
        with self._lock:
            return self._seq

    @property
    def earliest_seq(self) -> Optional[int]:
        """Sequence of the oldest retained event, or ``None`` if empty."""
        with self._lock:
            return self._events[0].seq if self._events else None

    def events_after(
        self, offset: int
    ) -> tuple[list[ChangeEvent], bool]:
        """``(events with seq > offset, truncated)``.

        ``truncated=True`` means events between ``offset`` and the
        oldest retained one have been aged out: the consumer cannot
        catch up by replay and must full-resync instead.  The returned
        list is always seq-ascending, and replaying it is idempotent —
        applying an invalidation twice is a no-op.
        """
        with self._lock:
            earliest = self._events[0].seq if self._events else self._seq + 1
            truncated = offset < earliest - 1
            events = [e for e in self._events if e.seq > offset]
        if truncated:
            self._truncated_replays.inc()
        if events:
            self._replayed.inc(len(events))
        return events, truncated

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def status(self) -> dict:
        with self._lock:
            return {
                "head_seq": self._seq,
                "retained": len(self._events),
                "earliest_seq": (
                    self._events[0].seq if self._events else None
                ),
                "retention": self.retention,
            }

    def __repr__(self) -> str:
        return (
            f"InvalidationLog(head={self.head_seq}, "
            f"retained={len(self)}/{self.retention})"
        )
