"""Multi-region deployment: replicated snapshot fleets with CDC
invalidation replay and warm failover.

See :mod:`repro.regions.cdclog` for the event-sourced invalidation log,
:mod:`repro.regions.deployment` for :class:`RegionalDeployment`, and
:mod:`repro.regions.chaos` for the ``msite chaos --region-faults``
harness.  docs/REGIONS.md walks the whole design.
"""

from repro.regions.cdclog import ChangeEvent, InvalidationLog
from repro.regions.chaos import (
    RegionChaosReport,
    format_region_report,
    run_region_chaos,
)
from repro.regions.deployment import Region, RegionalDeployment

__all__ = [
    "ChangeEvent",
    "InvalidationLog",
    "Region",
    "RegionalDeployment",
    "RegionChaosReport",
    "format_region_report",
    "run_region_chaos",
]
