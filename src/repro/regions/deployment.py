"""Two-plus regions, each a full :class:`ClusterDeployment
<repro.cluster.deployment.ClusterDeployment>`, behind one front end.

Each region owns its own worker fleet and its own three-tier cache
stack (:class:`TieredSharedCache <repro.cluster.tiers.TieredSharedCache>`
over a private snapshot directory).  The front end routes by
**region affinity** — the same rendezvous hashing the cluster uses for
workers, so a ``site:path:device`` key keeps one home region — and
fails over to the next region in preference order whenever the owner's
health probe fails.  Because snapshot persists are replicated into
connected peers' stores, the failover is *warm*: the "wrong" region
serves the already-rendered snapshot from its own disk tier instead of
re-rendering, and the response is marked with the ``remote_region``
degradation rung (fully-adapted content, just not from the owner).

Invalidation is event-sourced (:mod:`repro.regions.cdclog`): every
region's bus pumps its original (non-replayed) events into one
:class:`InvalidationLog`, and every connected region replays the log
from its last acked offset.  A partitioned region buffers its local
changes, serves what it has, and on heal (a) publishes its buffered
changes into the log and (b) replays everything it missed — after
which it serves zero stale content.  A region whose offset has aged
out of the log full-resyncs (drop derived state, recopy a healthy
peer's store) instead of replaying a gap it cannot see.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.cluster.deployment import ClusterDeployment
from repro.cluster.rollup import fleet_rollup
from repro.cluster.router import ShardRouter, request_shard_key
from repro.cluster.sharedcache import (
    CLEAR,
    REFRESH,
    InvalidationEvent,
)
from repro.cluster.tiers import TieredSharedCache
from repro.core.cache import CacheEntry
from repro.core.pipeline import ProxyServices
from repro.core.sessions import SessionManager
from repro.core.spec import AdaptationSpec
from repro.core.storage import VirtualFileSystem
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.observability import Observability
from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import activate, span
from repro.ops import (
    REGION_FAILOVER,
    REGION_HEALED,
    REGION_KILLED,
    REGION_PARTITIONED,
    REGION_RESYNC,
    REGION_REVIVED,
    OpsEventLog,
    ops_events_response,
)
from repro.regions.cdclog import ChangeEvent, InvalidationLog
from repro.resilience.policy import DEFAULT_RETRY_AFTER_S, REMOTE_REGION


class Region:
    """One region: a cluster fleet plus its tiered cache stack."""

    def __init__(
        self,
        name: str,
        cluster: ClusterDeployment,
        backend: TieredSharedCache,
    ) -> None:
        self.name = name
        self.cluster = cluster
        self.backend = backend
        #: Process state: a killed region serves nothing.
        self.alive = True
        #: Network state: a partitioned region serves (possibly stale)
        #: local content but neither hears nor contributes CDC events.
        self.connected = True
        #: Last invalidation-log sequence this region has applied.
        self.acked_seq = 0
        #: Original events generated while partitioned, published into
        #: the log on heal.
        self.pending: list[tuple[str, Optional[str]]] = []

    @property
    def healthy(self) -> bool:
        """The health probe: alive with at least one healthy worker."""
        return self.alive and any(
            worker.healthy for worker in self.cluster.workers
        )

    def __repr__(self) -> str:
        state = (
            "down" if not self.alive
            else "partitioned" if not self.connected
            else "up"
        )
        return f"Region({self.name!r}, {state}, acked={self.acked_seq})"


class RegionalDeployment(Application):
    """Region-affinity routing + warm failover over N region fleets."""

    def __init__(
        self,
        regions: Iterable[str] = ("east", "west"),
        snapshot_root: Optional[str] = None,
        spec: Optional[AdaptationSpec] = None,
        origins: Optional[dict[str, Any]] = None,
        make_app: Optional[Callable[[ProxyServices], Application]] = None,
        workers_per_region: int = 2,
        worker_threads: int = 4,
        queue_limit: int = 64,
        clock: Any = None,
        site: Optional[str] = None,
        proxy_base: str = "proxy.php",
        key_fn: Optional[Callable[[Request], str]] = None,
        cache_bytes: int = 64 * 1024 * 1024,
        memo_entries: int = 128,
        log_retention: int = 4096,
        preload: bool = True,
        write_behind: bool = True,
    ) -> None:
        region_names = list(regions)
        if len(region_names) < 2:
            raise ValueError("a regional deployment needs two+ regions")
        if len(set(region_names)) != len(region_names):
            raise ValueError("region names must be unique")
        self.site = site or (spec.site if spec is not None else "regional")
        self.clock = clock
        obs_clock = (lambda: clock.now) if clock is not None else None
        self.registry = MetricsRegistry()
        self.observability = Observability(
            registry=self.registry, clock=obs_clock
        )
        self.log = InvalidationLog(
            retention=log_retention, clock=clock, metrics=self.registry
        )
        # One ops event log across every region's fleet: worker and
        # breaker events from all regions interleave in one sequence
        # space (worker ids are region-prefixed, so they stay
        # attributable), and region lifecycle events land beside them.
        self.ops = OpsEventLog(clock=clock, metrics=self.registry)
        if snapshot_root is None:
            snapshot_root = tempfile.mkdtemp(prefix="msite-regions-")
        self.snapshot_root = snapshot_root
        # One session universe and file store across regions: a user who
        # fails over mid-session keeps their cookies and artifacts.
        self.storage = VirtualFileSystem()
        self.sessions = SessionManager(self.storage, clock=clock)
        self.router = ShardRouter()
        self._key_fn = key_fn or (
            lambda request: request_shard_key(self.site, request)
        )
        # Serializes CDC replay so every region applies events in log
        # order.  Bus publishes never run under a cache/store lock (see
        # tiers.py), so taking peer store locks inside is deadlock-free.
        self._drain_lock = threading.Lock()
        self._regions: dict[str, Region] = {}
        for name in region_names:
            backend = TieredSharedCache(
                os.path.join(snapshot_root, name),
                clock=clock,
                max_bytes=cache_bytes,
                memo_entries=memo_entries,
                write_behind=write_behind,
                name=name,
                preload=preload,
            )
            cluster = ClusterDeployment(
                spec=spec,
                origins=origins,
                workers=workers_per_region,
                worker_threads=worker_threads,
                queue_limit=queue_limit,
                clock=clock,
                proxy_base=proxy_base,
                site=self.site,
                shared_cache=backend,
                make_app=make_app,
                key_fn=key_fn,
                storage=self.storage,
                sessions=self.sessions,
                worker_prefix=f"{name}-",
                ops=self.ops,
            )
            region = Region(name, cluster, backend)
            self._regions[name] = region
            self.router.add_worker(name)
            backend.bus.subscribe(self._make_pump(region))
            backend.on_persist = self._make_replicator(region)

    # -- introspection ---------------------------------------------------

    @property
    def regions(self) -> list[Region]:
        return [self._regions[name] for name in sorted(self._regions)]

    @property
    def region_names(self) -> list[str]:
        return sorted(self._regions)

    def region(self, name: str) -> Region:
        return self._regions[name]

    def owner_of(self, request: Request) -> str:
        """The home region for one request's routing key."""
        return self.router.route(self._key_fn(request))

    def rollup(self) -> MetricsRegistry:
        """Fresh deployment-wide registry, identity-deduplicated across
        the front end, every region's tier stack, and every worker."""
        registries = [self.registry]
        for region in self.regions:
            registries.append(region.backend.metrics)
            registries.append(region.cluster.registry)
            registries.extend(
                worker.registry for worker in region.cluster.workers
            )
        return fleet_rollup(registries)

    def region_rollup(self, name: str) -> MetricsRegistry:
        region = self._regions[name]
        return fleet_rollup(
            [region.backend.metrics, region.cluster.registry]
            + [worker.registry for worker in region.cluster.workers]
        )

    def _counter(self, name: str, help_text: str, **labels: str):
        return self.registry.counter(name, help_text, labels=labels or None)

    # -- CDC: pump, replication, replay ----------------------------------

    def _make_pump(self, region: Region):
        """Subscribe a region's bus into the invalidation log.

        Only *original* events are pumped; replayed ones are the log
        talking back and must not re-append (that loop would never
        converge).  A partitioned region buffers locally and publishes
        on heal.
        """

        def pump(event: InvalidationEvent) -> None:
            if event.replayed:
                return
            if not region.connected:
                region.pending.append((event.kind, event.key))
                return
            self.log.append(event.kind, event.key, origin=region.name)
            self._drain()

        return pump

    def _make_replicator(self, region: Region):
        """Copy every persisted snapshot into connected peers' stores,
        making their failover warm."""

        def replicate(entry: CacheEntry) -> None:
            if not region.connected:
                return
            for peer in self._regions.values():
                if peer is region or not peer.alive or not peer.connected:
                    continue
                peer.backend.store.put(entry)
                self._counter(
                    "msite_region_replications_total",
                    "Snapshot entries replicated into a peer region's "
                    "store.",
                    region=peer.name,
                ).inc()

        return replicate

    def _drain(self) -> None:
        """Bring every connected region up to the log head."""
        with self._drain_lock:
            for region in self._regions.values():
                if region.alive and region.connected:
                    self._catch_up(region)

    def _catch_up(self, region: Region) -> None:
        """Caller holds ``_drain_lock``."""
        events, truncated = self.log.events_after(region.acked_seq)
        if truncated:
            self._full_resync(region)
            region.acked_seq = self.log.head_seq
            return
        for event in events:
            if event.origin != region.name:
                self._apply(region, event)
            region.acked_seq = event.seq

    def _apply(self, region: Region, event: ChangeEvent) -> None:
        """Apply one replayed change to a region's whole tier stack.

        The purge itself is silent (``invalidate_matching`` publishes
        nothing), then one *replayed-marked* event is announced on the
        region's bus so hot memos and worker session memos drop too —
        without the pump re-appending it.
        """
        cache = region.backend.cache
        kind, key = event.kind, event.key
        if kind == CLEAR or key is None:
            cache.invalidate_matching(lambda k: True)
        elif kind == REFRESH:
            # REFRESH carries a routing key (``site:path|resource:dev``),
            # not a cache key; remote regions cannot point-invalidate.
            # Purge the whole site's derived keys — every fastpath/
            # snapshot key embeds ``:{site}:`` or starts with the site.
            site = key.split(":", 1)[0]
            cache.invalidate_matching(
                lambda k: f":{site}:" in k or k.startswith(f"{site}:")
            )
        else:  # invalidate / expire: point events carrying cache keys
            cache.invalidate_matching(lambda k: k == key)
        region.backend.bus.publish(
            InvalidationEvent(kind, key, replayed=True)
        )
        self._counter(
            "msite_region_applied_total",
            "Replayed invalidation-log events applied per region.",
            region=region.name,
            kind=kind,
        ).inc()

    def _full_resync(self, region: Region) -> None:
        """The offset aged out of the log: drop everything derived and
        recopy a healthy connected peer's snapshot store."""
        cache = region.backend.cache
        cache.invalidate_matching(lambda k: True)
        region.backend.bus.publish(InvalidationEvent(CLEAR, replayed=True))
        for peer in self._regions.values():
            if peer is region or not peer.alive or not peer.connected:
                continue
            for entry in peer.backend.store.entries():
                region.backend.store.put(entry)
            break
        self._counter(
            "msite_region_resyncs_total",
            "Full resyncs forced by invalidation-log truncation.",
            region=region.name,
        ).inc()
        self.ops.emit(
            REGION_RESYNC,
            region=region.name,
            log_head=self.log.head_seq,
        )

    # -- region lifecycle (fault injection surface) ----------------------

    def kill(self, name: str) -> None:
        """A region dies mid-run: workers down, link down."""
        region = self._regions[name]
        region.alive = False
        region.connected = False
        for worker in region.cluster.workers:
            worker.mark_down()
        self._counter(
            "msite_region_kills_total",
            "Regions killed by fault injection.",
            region=name,
        ).inc()
        self.ops.emit(REGION_KILLED, region=name)

    def revive(self, name: str, heal: bool = True) -> None:
        """Bring a killed region back; by default heal immediately so it
        replays the log before taking traffic."""
        region = self._regions[name]
        region.alive = True
        for worker in region.cluster.workers:
            worker.mark_up()
        self.ops.emit(REGION_REVIVED, region=name)
        if heal:
            self.heal(name)

    def partition(self, name: str) -> None:
        """Cut a region's link: it keeps serving local (possibly stale)
        content and buffers its own changes."""
        self._regions[name].connected = False
        self._counter(
            "msite_region_partitions_total",
            "Region network partitions injected.",
            region=name,
        ).inc()
        self.ops.emit(REGION_PARTITIONED, region=name)

    def heal(self, name: str) -> None:
        """Reconnect: publish changes buffered while away, then replay
        everything missed from the last acked offset."""
        region = self._regions[name]
        region.connected = True
        pending, region.pending = region.pending, []
        for kind, key in pending:
            self.log.append(kind, key, origin=region.name)
        self._counter(
            "msite_region_heals_total",
            "Region partition heals (buffered events published, log "
            "replayed).",
            region=name,
        ).inc()
        self._drain()
        # Emitted after the drain: acked_seq here is the post-replay
        # offset, so the event itself proves replay-to-live — the
        # chaos suites assert acked_seq == log_head off this payload.
        self.ops.emit(
            REGION_HEALED,
            region=name,
            published=len(pending),
            acked_seq=region.acked_seq,
            log_head=self.log.head_seq,
        )

    # -- dispatch --------------------------------------------------------

    def handle(self, request: Request) -> Response:
        path = request.url.path.strip("/")
        if path == "regions":
            return self._regions_response()
        if path == "metrics":
            return Response.binary(
                render_prometheus(self.rollup()).encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
            )
        if path.startswith("metrics/"):
            name = path.removeprefix("metrics/")
            if name not in self._regions:
                return Response.not_found(f"no region {name!r}")
            return Response.binary(
                render_prometheus(self.region_rollup(name)).encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
            )
        if path == "traces":
            return Response.binary(
                self.observability.traces.dump_json().encode("utf-8"),
                "application/json; charset=utf-8",
            )
        if path in ("ops/events", "ops/events.ndjson"):
            return ops_events_response(self.ops, request)
        return self._route(request)

    def _route(self, request: Request) -> Response:
        trace = self.observability.start_trace("region-route")
        started = time.perf_counter()
        try:
            with activate(trace):
                with span("region-route"):
                    key = self._key_fn(request)
                    preference = self.router.preference(key)
                response = self._dispatch(request, preference)
        finally:
            self.observability.finish_trace(trace)
        self._counter(
            "msite_region_frontend_requests_total",
            "Requests routed through the regional front end.",
        ).inc()
        self.registry.histogram(
            "msite_region_request_seconds",
            "Front-end latency of regionally-routed requests.",
        ).observe(time.perf_counter() - started)
        return response

    def _dispatch(
        self, request: Request, preference: list[str]
    ) -> Response:
        owner = preference[0]
        for position, name in enumerate(preference):
            region = self._regions[name]
            if not region.healthy:
                # The health probe failed: fail over down the
                # preference order.
                self._counter(
                    "msite_region_reroutes_total",
                    "Requests skipped past an unhealthy region.",
                    region=name,
                ).inc()
                continue
            with span("region") as record:
                response = region.cluster.handle(request)
                if record is not None and response.status >= 500:
                    record.status = "error"
                    record.error = f"{name}: {response.status}"
            self._counter(
                "msite_region_requests_total",
                "Requests served per region.",
                region=name,
            ).inc()
            response.headers.set("X-MSite-Region", name)
            if position > 0:
                # Warm failover: served off-owner from a replicated
                # snapshot — the remote_region rung of the ladder.
                self._counter(
                    "msite_region_failovers_total",
                    "Requests failed over from their owner region.",
                    region=owner,
                ).inc()
                response.headers.set("X-MSite-Failover-From", owner)
                if not response.headers.get("X-MSite-Degraded"):
                    response.headers.set("X-MSite-Degraded", REMOTE_REGION)
                self.ops.emit(
                    REGION_FAILOVER, region=name, owner=owner
                )
            return response
        self._counter(
            "msite_region_unrouteable_total",
            "Requests refused because every region was down.",
        ).inc()
        response = Response.text(
            f"regional deployment unavailable: all "
            f"{len(self._regions)} regions down",
            status=503,
        )
        response.headers.set(
            "Retry-After", str(max(1, round(DEFAULT_RETRY_AFTER_S)))
        )
        return response

    def _regions_response(self) -> Response:
        head = self.log.head_seq
        status = {
            "site": self.site,
            "log": self.log.status(),
            "regions": {
                region.name: {
                    "alive": region.alive,
                    "connected": region.connected,
                    "healthy": region.healthy,
                    "acked_seq": region.acked_seq,
                    "behind": head - region.acked_seq,
                    "pending_events": len(region.pending),
                    "cache_entries": len(region.backend.cache),
                    "preloaded": region.backend.preloaded,
                    "store": region.backend.store.status(),
                    "workers": {
                        worker.worker_id: worker.healthy
                        for worker in region.cluster.workers
                    },
                }
                for region in self.regions
            },
        }
        return Response.binary(
            json.dumps(status, indent=2, sort_keys=True).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Shut down every region, flushing dirty snapshots to disk so
        the next deployment over the same root warm-starts."""
        for region in self.regions:
            region.cluster.close(wait=wait)
            region.backend.close()

    def __enter__(self) -> "RegionalDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
