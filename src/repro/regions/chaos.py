"""The region-fault chaos harness behind ``msite chaos --region-faults``.

Stands up the built-in forum mobilization on a two-region deployment,
warms it, then kills the region that owns the entry page a third of the
way through the workload and revives (and heals) it at two thirds.  The
acceptance bar: **every** response across the whole run is either a
non-5xx or a degraded-marked 5xx — the kill must be absorbed by warm
failover to the surviving region, and after the heal the revived
region's acked offset must equal the live log head (it replayed every
invalidation it missed).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from typing import Optional

#: The deterministic request mix, cycled.  ``?refresh=1`` keeps the
#: invalidation log busy so the healed region has real events to replay.
WORKLOAD = (
    "",
    "?page=forums",
    "?file=snapshot.jpg",
    "?refresh=1",
    "?page=login",
    "",
)


@dataclass
class RegionChaosReport:
    """What one seeded region-fault run did to the deployment."""

    seed: int
    requests: int
    regions: tuple[str, ...] = ()
    workers_per_region: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    degraded_responses: dict[str, int] = field(default_factory=dict)
    non_degraded_5xx: int = 0
    killed_region: str = ""
    killed_at: int = 0
    revived_at: int = 0
    failovers: int = 0
    reroutes: int = 0
    replications: int = 0
    events_applied: int = 0
    log_head: int = 0
    acked: dict[str, int] = field(default_factory=dict)
    store_entries: dict[str, int] = field(default_factory=dict)
    metrics_exposition_lines: int = 0
    # Ops event log: the kill/failover/revive/heal story in emission
    # order.  ``heal_*`` comes from the ``region_healed`` event payload,
    # which records the replay-to-live offsets *at the moment the heal
    # finished* — not a later poll that could mask a lagging replay.
    ops_events: list = field(default_factory=list, repr=False)
    ops_event_count: int = 0
    heal_published: int = 0
    heal_acked_seq: int = -1
    heal_log_head: int = -1

    @property
    def total(self) -> int:
        return sum(self.statuses.values())

    @property
    def ok_fraction(self) -> float:
        ok = sum(
            count for status, count in self.statuses.items()
            if status < 500
        )
        return ok / self.total if self.total else 0.0

    @property
    def replay_caught_up(self) -> bool:
        """Did every region ack the live head after the heal?"""
        return all(seq == self.log_head for seq in self.acked.values())

    @property
    def heal_caught_up(self) -> bool:
        """Did the heal event itself record acked == live head?"""
        return (
            self.heal_acked_seq >= 0
            and self.heal_acked_seq == self.heal_log_head
        )

    @property
    def failed(self) -> bool:
        return bool(self.non_degraded_5xx) or not self.replay_caught_up


def run_region_chaos(
    seed: int = 11,
    requests: int = 240,
    workers_per_region: int = 2,
    region_names: tuple[str, ...] = ("east", "west"),
    snapshot_root: Optional[str] = None,
) -> RegionChaosReport:
    """Kill one of two regions mid-workload; assert failover + replay.

    Deterministic in ``seed`` (it seeds nothing random today — the kill
    schedule is positional — but keeps the chaos CLI surface uniform
    and reserves the knob for randomized schedules).  When
    ``snapshot_root`` is ``None`` a temporary directory is used and
    removed afterwards.
    """
    # Imported here like the resilience harness: the regions package
    # must not put the whole proxy stack on its import-time graph.
    from repro.cli import _build_forum_spec
    from repro.net.client import HttpClient
    from repro.net.cookies import CookieJar
    from repro.regions.deployment import RegionalDeployment

    spec, origins = _build_forum_spec()
    owns_root = snapshot_root is None
    deployment = RegionalDeployment(
        regions=region_names,
        snapshot_root=snapshot_root,
        spec=spec,
        origins=origins,
        workers_per_region=workers_per_region,
    )
    mobile = HttpClient(
        {"m.sawmillcreek.org": deployment}, jar=CookieJar()
    )
    base = "http://m.sawmillcreek.org/proxy.php"

    report = RegionChaosReport(
        seed=seed,
        requests=requests,
        regions=tuple(deployment.region_names),
        workers_per_region=workers_per_region,
    )
    try:
        # Warm every workload path; the entry response names the region
        # that owns the hot key — that is the one we will kill.
        victim = None
        for suffix in ("", "?page=forums", "?page=login",
                       "?file=snapshot.jpg"):
            response = mobile.get(base + suffix)
            if suffix == "":
                victim = response.headers.get("X-MSite-Region")
        assert victim is not None
        report.killed_region = victim
        # Steady state: the write-behind queues drained long ago in
        # wall-clock terms; make that explicit before the crash so the
        # survivor's replicated store is warm.
        deployment.region(victim).backend.flush()

        kill_at = max(1, requests // 3)
        revive_at = max(kill_at + 1, (2 * requests) // 3)
        report.killed_at = kill_at
        report.revived_at = revive_at
        for index in range(max(1, requests)):
            if index == kill_at:
                deployment.kill(victim)
            elif index == revive_at:
                deployment.revive(victim)  # heals: replays the log
            response = mobile.get(
                base + WORKLOAD[index % len(WORKLOAD)]
            )
            report.statuses[response.status] = (
                report.statuses.get(response.status, 0) + 1
            )
            mode = response.headers.get("X-MSite-Degraded")
            if mode:
                report.degraded_responses[mode] = (
                    report.degraded_responses.get(mode, 0) + 1
                )
            if response.status >= 500 and not mode:
                report.non_degraded_5xx += 1

        report.log_head = deployment.log.head_seq
        report.acked = {
            region.name: region.acked_seq
            for region in deployment.regions
        }
        report.store_entries = {
            region.name: len(region.backend.store)
            for region in deployment.regions
        }
        registry = deployment.rollup()

        def _sum(name: str) -> int:
            return sum(
                int(metric.value)
                for family in registry.collect()
                if family.name == name
                for metric in family.sorted_children()
            )

        report.failovers = _sum("msite_region_failovers_total")
        report.reroutes = _sum("msite_region_reroutes_total")
        report.replications = _sum("msite_region_replications_total")
        report.events_applied = _sum("msite_region_applied_total")
        events, _ = deployment.ops.events_after(0)
        report.ops_events = events
        report.ops_event_count = deployment.ops.head_seq
        for event in events:
            if (
                event.type == "region_healed"
                and event.payload.get("region") == victim
            ):
                report.heal_published = event.payload.get("published", 0)
                report.heal_acked_seq = event.payload.get("acked_seq", -1)
                report.heal_log_head = event.payload.get("log_head", -1)
        metrics_page = mobile.get("http://m.sawmillcreek.org/metrics")
        report.metrics_exposition_lines = len(
            metrics_page.text_body.splitlines()
        )
    finally:
        deployment.close()
        if owns_root:
            shutil.rmtree(deployment.snapshot_root, ignore_errors=True)
    return report


def format_region_report(report: RegionChaosReport) -> str:
    """The human-readable report ``msite chaos --region-faults`` prints."""
    lines = [
        f"m.Site region-fault chaos: seed {report.seed}, "
        f"{report.total} requests across regions "
        f"{', '.join(report.regions)} "
        f"({report.workers_per_region} workers each)",
        "",
        f"  killed {report.killed_region!r} at request "
        f"{report.killed_at}, revived+healed at {report.revived_at}",
        "",
        "  statuses served:",
    ]
    for status in sorted(report.statuses):
        lines.append(f"    {status}: {report.statuses[status]:>6}")
    lines.append(
        f"  non-5xx rate: {report.ok_fraction * 100:.1f}%  "
        f"(non-degraded 5xx: {report.non_degraded_5xx})"
    )
    lines.append("")
    lines.append("  failover:")
    for mode in sorted(report.degraded_responses):
        lines.append(
            f"    responses marked {mode}: "
            f"{report.degraded_responses[mode]:>6}"
        )
    lines.append(f"    failovers: {report.failovers:>6}")
    lines.append(f"    reroutes past dead region: {report.reroutes:>6}")
    lines.append("")
    lines.append("  CDC replay:")
    lines.append(f"    log head seq: {report.log_head:>6}")
    for name in sorted(report.acked):
        lines.append(
            f"    {name} acked: {report.acked[name]:>6}  "
            f"(store entries: {report.store_entries.get(name, 0)})"
        )
    lines.append(
        f"    caught up: {'yes' if report.replay_caught_up else 'NO'}"
    )
    lines.append(f"    events applied cross-region: {report.events_applied}")
    lines.append(f"    snapshot replications: {report.replications}")
    lines.append(
        f"    heal event: published {report.heal_published}, acked "
        f"{report.heal_acked_seq} of log head {report.heal_log_head} "
        f"({'live' if report.heal_caught_up else 'LAGGING'})"
    )
    lines.append(f"    ops event log: {report.ops_event_count} events")
    lines.append("")
    lines.append(
        f"  /metrics exposition: {report.metrics_exposition_lines} lines"
    )
    return "\n".join(lines)
