"""URL parsing, joining, and query-string handling."""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ParseError

_URL_RE = re.compile(
    r"^(?:(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*):)?"
    r"(?://(?P<authority>[^/?#]*))?"
    r"(?P<path>[^?#]*)"
    r"(?:\?(?P<query>[^#]*))?"
    r"(?:#(?P<fragment>.*))?$"
)

_SAFE = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


def quote(text: str, safe: str = "/") -> str:
    """Percent-encode ``text``; ``safe`` characters pass through."""
    out = []
    allowed = _SAFE | set(safe)
    for char in text:
        if char in allowed:
            out.append(char)
        else:
            out.extend(f"%{byte:02X}" for byte in char.encode("utf-8"))
    return "".join(out)


def unquote(text: str) -> str:
    """Decode percent-encoding (and ``+`` as space, form style)."""
    out = bytearray()
    index = 0
    while index < len(text):
        char = text[index]
        if char == "%" and index + 2 < len(text) + 1:
            try:
                out.append(int(text[index + 1 : index + 3], 16))
                index += 3
                continue
            except ValueError:
                pass
        if char == "+":
            out.append(0x20)
        else:
            out.extend(char.encode("utf-8"))
        index += 1
    return out.decode("utf-8", errors="replace")


def parse_query(query: str) -> dict[str, str]:
    """Parse a query string into an ordered name → value mapping.

    Repeated names keep the last value, which matches how PHP's ``$_GET``
    (the paper's proxy environment) resolves duplicates.
    """
    result: dict[str, str] = {}
    if not query:
        return result
    for pair in query.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        result[unquote(name)] = unquote(value)
    return result


def encode_query(params: dict[str, str]) -> str:
    return "&".join(
        f"{quote(str(name), safe='')}={quote(str(value), safe='')}"
        for name, value in params.items()
    )


@dataclass(frozen=True)
class URL:
    """An immutable parsed URL."""

    scheme: str = "http"
    host: str = ""
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = ""

    @classmethod
    def parse(cls, text: str) -> "URL":
        match = _URL_RE.match(text.strip())
        if match is None:  # pragma: no cover - regex matches everything
            raise ParseError(f"unparseable URL {text!r}")
        scheme = (match.group("scheme") or "").lower()
        authority = match.group("authority")
        host = ""
        port: Optional[int] = None
        if authority:
            # Strip userinfo if present.
            if "@" in authority:
                authority = authority.rsplit("@", 1)[1]
            if ":" in authority:
                host, _, port_text = authority.partition(":")
                try:
                    port = int(port_text)
                except ValueError:
                    raise ParseError(f"bad port in URL {text!r}")
            else:
                host = authority
        path = match.group("path") or ""
        if authority is not None and not path:
            path = "/"
        return cls(
            scheme=scheme or "http",
            host=host.lower(),
            port=port,
            path=path,
            query=match.group("query") or "",
            fragment=match.group("fragment") or "",
        )

    # -- derived ------------------------------------------------------------

    @property
    def params(self) -> dict[str, str]:
        return parse_query(self.query)

    @property
    def origin(self) -> str:
        port = f":{self.port}" if self.port else ""
        return f"{self.scheme}://{self.host}{port}"

    @property
    def request_target(self) -> str:
        target = self.path or "/"
        if self.query:
            target += f"?{self.query}"
        return target

    def with_params(self, **params: str) -> "URL":
        """A copy with query parameters merged in."""
        merged = self.params
        merged.update({name: str(value) for name, value in params.items()})
        return replace(self, query=encode_query(merged))

    def with_path(self, path: str) -> "URL":
        return replace(self, path=path)

    def join(self, reference: str) -> "URL":
        """Resolve ``reference`` against this URL (RFC 3986 subset)."""
        ref = URL.parse(reference)
        if ref.host:
            # Protocol-relative references inherit the base scheme.
            if reference.lstrip().startswith("//"):
                return replace(ref, scheme=self.scheme)
            return ref
        if not ref.path:
            query = ref.query if ref.query else self.query
            return replace(self, query=query, fragment=ref.fragment)
        if ref.path.startswith("/"):
            path = _normalize_path(ref.path)
        else:
            base_dir = self.path.rsplit("/", 1)[0]
            path = _normalize_path(f"{base_dir}/{ref.path}")
        return replace(
            self, path=path, query=ref.query, fragment=ref.fragment
        )

    def __str__(self) -> str:
        out = self.origin + self.path
        if self.query:
            out += f"?{self.query}"
        if self.fragment:
            out += f"#{self.fragment}"
        return out


def _normalize_path(path: str) -> str:
    segments: list[str] = []
    for segment in path.split("/"):
        if segment == "..":
            if segments and segments[-1]:
                segments.pop()
        elif segment != ".":
            segments.append(segment)
    normalized = "/".join(segments)
    if not normalized.startswith("/"):
        normalized = "/" + normalized
    return normalized
