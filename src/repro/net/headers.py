"""Case-insensitive HTTP header multimap."""

from __future__ import annotations

from typing import Iterator, Optional


class Headers:
    """Ordered, case-insensitive header collection allowing repeats."""

    def __init__(self, items: Optional[list[tuple[str, str]]] = None) -> None:
        self._items: list[tuple[str, str]] = []
        for name, value in items or []:
            self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, preserving existing values of the same name."""
        self._items.append((name.strip(), str(value).strip()))

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single value."""
        lowered = name.lower()
        self._items = [
            (key, val) for key, val in self._items if key.lower() != lowered
        ]
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        lowered = name.lower()
        return [value for key, value in self._items if key.lower() == lowered]

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [
            (key, value) for key, value in self._items if key.lower() != lowered
        ]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    def wire_size(self) -> int:
        """Bytes these headers occupy on the wire (name: value CRLF)."""
        return sum(len(name) + len(value) + 4 for name, value in self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
