"""In-process origin servers.

An :class:`Application` is anything that turns a :class:`Request` into a
:class:`Response`.  :class:`Router` provides the path-pattern dispatch the
synthetic sites and the generated proxy both build on.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Optional

from repro.net.messages import Request, Response

Handler = Callable[[Request], Response]


class Application:
    """Base class for origin applications; subclasses override handle()."""

    def handle(self, request: Request) -> Response:
        raise NotImplementedError

    def __call__(self, request: Request) -> Response:
        return self.handle(request)


_PARAM_RE = re.compile(r"<([a-zA-Z_][a-zA-Z0-9_]*)>")


def _compile_pattern(pattern: str) -> re.Pattern:
    """Turn ``/forum/<forum_id>`` into a named-group regex."""
    regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(pattern).replace(r"\<", "<").replace(r"\>", ">"))
    return re.compile(f"^{regex}$")


class Route:
    """One registered route."""

    def __init__(self, pattern: str, handler: Handler, methods: tuple[str, ...]):
        self.pattern = pattern
        self.regex = _compile_pattern(pattern)
        self.handler = handler
        self.methods = tuple(method.upper() for method in methods)

    def match(self, method: str, path: str) -> Optional[dict[str, str]]:
        if method.upper() not in self.methods:
            return None
        match = self.regex.match(path)
        if match is None:
            return None
        return match.groupdict()


class Router(Application):
    """Path-pattern request dispatcher.

    Handlers receive the request plus any path parameters as keyword
    arguments::

        router = Router()

        @router.route("/thread/<thread_id>")
        def show_thread(request, thread_id):
            ...
    """

    def __init__(self) -> None:
        self._routes: tuple[Route, ...] = ()
        self._routes_lock = threading.Lock()
        self.not_found_handler: Handler = lambda request: Response.not_found(
            f"no route for {request.url.path}"
        )

    def route(
        self, pattern: str, methods: tuple[str, ...] = ("GET", "POST")
    ) -> Callable[[Callable], Callable]:
        def decorator(fn: Callable) -> Callable:
            self.add_route(pattern, fn, methods)
            return fn

        return decorator

    def add_route(
        self,
        pattern: str,
        handler: Callable,
        methods: tuple[str, ...] = ("GET", "POST"),
    ) -> None:
        # Copy-on-write: ``handle`` iterates an immutable snapshot, so
        # routes can be added while other threads are dispatching.
        with self._routes_lock:
            self._routes = self._routes + (Route(pattern, handler, methods),)

    def handle(self, request: Request) -> Response:
        for registered in self._routes:
            params = registered.match(request.method, request.url.path)
            if params is not None:
                return registered.handler(request, **params)
        return self.not_found_handler(request)


def route(pattern: str, methods: tuple[str, ...] = ("GET", "POST")):
    """Mark a method for registration by :func:`collect_routes`."""

    def decorator(fn):
        fn._route_pattern = pattern
        fn._route_methods = methods
        return fn

    return decorator


def collect_routes(instance, router: Router) -> None:
    """Register every method of ``instance`` decorated with :func:`route`."""
    for name in dir(instance):
        member = getattr(instance, name)
        pattern = getattr(member, "_route_pattern", None)
        if pattern is not None:
            router.add_route(pattern, member, member._route_methods)
