"""HTTP request and response messages."""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.net.headers import Headers
from repro.net.status import reason
from repro.net.url import URL, parse_query


@dataclass
class Request:
    """An HTTP request bound for an in-process origin application."""

    method: str = "GET"
    url: URL = field(default_factory=lambda: URL.parse("http://localhost/"))
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    @classmethod
    def get(cls, url: Union[str, URL], **headers: str) -> "Request":
        parsed = url if isinstance(url, URL) else URL.parse(url)
        request = cls(method="GET", url=parsed)
        for name, value in headers.items():
            request.headers.set(name.replace("_", "-"), value)
        return request

    @classmethod
    def post(
        cls, url: Union[str, URL], form: Optional[dict[str, str]] = None
    ) -> "Request":
        from repro.net.url import encode_query

        parsed = url if isinstance(url, URL) else URL.parse(url)
        body = encode_query(form or {}).encode("ascii")
        request = cls(method="POST", url=parsed, body=body)
        request.headers.set("Content-Type", "application/x-www-form-urlencoded")
        return request

    # -- convenience --------------------------------------------------------

    @property
    def params(self) -> dict[str, str]:
        """Query-string parameters (the proxy's ``$_GET`` analog)."""
        return self.url.params

    @property
    def form(self) -> dict[str, str]:
        """Posted form fields (the proxy's ``$_POST`` analog)."""
        content_type = self.headers.get("Content-Type", "")
        if "application/x-www-form-urlencoded" not in (content_type or ""):
            return {}
        return parse_query(self.body.decode("ascii", errors="replace"))

    @property
    def cookies(self) -> dict[str, str]:
        header = self.headers.get("Cookie")
        result: dict[str, str] = {}
        if not header:
            return result
        for pair in header.split(";"):
            name, _, value = pair.strip().partition("=")
            if name:
                result[name] = value
        return result

    def basic_auth(self) -> Optional[tuple[str, str]]:
        """Decode ``Authorization: Basic`` credentials if present."""
        header = self.headers.get("Authorization", "")
        if not header or not header.lower().startswith("basic "):
            return None
        try:
            decoded = base64.b64decode(header[6:].strip()).decode("utf-8")
        except Exception:
            return None
        user, _, password = decoded.partition(":")
        return user, password

    def with_basic_auth(self, user: str, password: str) -> "Request":
        token = base64.b64encode(f"{user}:{password}".encode("utf-8")).decode()
        self.headers.set("Authorization", f"Basic {token}")
        return self

    def wire_size(self) -> int:
        """Approximate bytes on the wire for the request."""
        request_line = len(self.method) + len(self.url.request_target) + 12
        return request_line + self.headers.wire_size() + 2 + len(self.body)

    def __repr__(self) -> str:
        return f"Request({self.method} {self.url})"


@dataclass
class Response:
    """An HTTP response from an origin application or the proxy."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""

    @classmethod
    def html(cls, markup: str, status: int = 200) -> "Response":
        response = cls(status=status, body=markup.encode("utf-8"))
        response.headers.set("Content-Type", "text/html; charset=utf-8")
        return response

    @classmethod
    def text(cls, content: str, status: int = 200) -> "Response":
        response = cls(status=status, body=content.encode("utf-8"))
        response.headers.set("Content-Type", "text/plain; charset=utf-8")
        return response

    @classmethod
    def json(cls, payload, status: int = 200) -> "Response":
        import json as json_module

        response = cls(
            status=status,
            body=json_module.dumps(payload).encode("utf-8"),
        )
        response.headers.set("Content-Type", "application/json")
        return response

    @classmethod
    def binary(
        cls, data: bytes, content_type: str, status: int = 200
    ) -> "Response":
        response = cls(status=status, body=data)
        response.headers.set("Content-Type", content_type)
        return response

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "Response":
        response = cls(status=status)
        response.headers.set("Location", location)
        return response

    @classmethod
    def not_found(cls, message: str = "not found") -> "Response":
        return cls.text(message, status=404)

    @classmethod
    def unauthorized(cls, realm: str = "restricted") -> "Response":
        response = cls.text("authentication required", status=401)
        response.headers.set("WWW-Authenticate", f'Basic realm="{realm}"')
        return response

    # -- convenience ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307) and "Location" in self.headers

    @property
    def reason(self) -> str:
        return reason(self.status)

    @property
    def content_type(self) -> str:
        return (self.headers.get("Content-Type") or "").split(";")[0].strip()

    @property
    def text_body(self) -> str:
        return self.body.decode("utf-8", errors="replace")

    def set_cookie(
        self,
        name: str,
        value: str,
        path: str = "/",
        max_age: Optional[int] = None,
        http_only: bool = False,
    ) -> None:
        parts = [f"{name}={value}", f"Path={path}"]
        if max_age is not None:
            parts.append(f"Max-Age={max_age}")
        if http_only:
            parts.append("HttpOnly")
        self.headers.add("Set-Cookie", "; ".join(parts))

    def wire_size(self) -> int:
        """Approximate bytes on the wire for the response."""
        status_line = 17
        return status_line + self.headers.wire_size() + 2 + len(self.body)

    def __repr__(self) -> str:
        return f"Response({self.status} {self.reason}, {len(self.body)} bytes)"
