"""HTTP substrate: URLs, messages, cookies, origin servers, link models.

The m.Site proxy downloads originating pages on demand, manages per-user
cookie jars, performs HTTP authentication on behalf of clients, and serves
generated subpages (§3.2).  Everything here runs in-process: origin sites
are :class:`Application` objects wired to a host name, and the
:class:`HttpClient` routes requests to them while accounting for bytes
moved (which the device timing models turn into wall-clock time).
"""

from repro.net.url import URL
from repro.net.headers import Headers
from repro.net.cookies import Cookie, CookieJar, parse_set_cookie
from repro.net.messages import Request, Response
from repro.net.status import STATUS_REASONS
from repro.net.server import Application, Router, route
from repro.net.client import HttpClient
from repro.net.network import (
    NetworkLink,
    LINK_3G,
    LINK_HSPA,
    LINK_WIFI,
    LINK_LAN,
)

__all__ = [
    "URL",
    "Headers",
    "Cookie",
    "CookieJar",
    "parse_set_cookie",
    "Request",
    "Response",
    "STATUS_REASONS",
    "Application",
    "Router",
    "route",
    "HttpClient",
    "NetworkLink",
    "LINK_3G",
    "LINK_HSPA",
    "LINK_WIFI",
    "LINK_LAN",
]
