"""Cookies and per-user cookie jars.

The proxy "manages cookie jars and multiple users" (§1) and "must be
authenticated on behalf of the user to view content privy to that user"
(§3.2).  Jars are keyed by m.Site session, store origin-site cookies, and
honour domain/path scoping plus max-age expiry against simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.url import URL


@dataclass
class Cookie:
    """One cookie with its scoping attributes."""

    name: str
    value: str
    domain: str = ""
    path: str = "/"
    expires_at: Optional[float] = None  # simulated-time deadline
    secure: bool = False
    http_only: bool = False

    def matches(self, url: URL, now: float) -> bool:
        """Should this cookie be sent on a request to ``url``?"""
        if self.expires_at is not None and now >= self.expires_at:
            return False
        if self.domain and not _domain_match(url.host, self.domain):
            return False
        if not url.path.startswith(self.path):
            return False
        if self.secure and url.scheme != "https":
            return False
        return True

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.name, self.domain, self.path)


def _domain_match(host: str, domain: str) -> bool:
    domain = domain.lstrip(".")
    return host == domain or host.endswith("." + domain)


def parse_set_cookie(header: str, default_domain: str, now: float) -> Cookie:
    """Parse a ``Set-Cookie`` header value."""
    parts = [part.strip() for part in header.split(";")]
    name, _, value = parts[0].partition("=")
    cookie = Cookie(name=name.strip(), value=value.strip(), domain=default_domain)
    for attribute in parts[1:]:
        attr_name, _, attr_value = attribute.partition("=")
        attr_name = attr_name.strip().lower()
        attr_value = attr_value.strip()
        if attr_name == "domain" and attr_value:
            cookie.domain = attr_value.lstrip(".").lower()
        elif attr_name == "path" and attr_value:
            cookie.path = attr_value
        elif attr_name == "max-age":
            try:
                cookie.expires_at = now + int(attr_value)
            except ValueError:
                pass
        elif attr_name == "secure":
            cookie.secure = True
        elif attr_name == "httponly":
            cookie.http_only = True
    return cookie


@dataclass
class CookieJar:
    """All cookies held on behalf of one m.Site user session."""

    cookies: dict[tuple[str, str, str], Cookie] = field(default_factory=dict)

    def set(self, cookie: Cookie) -> None:
        self.cookies[cookie.key] = cookie

    def store_response_cookies(
        self, headers, url: URL, now: float
    ) -> list[Cookie]:
        """Ingest every ``Set-Cookie`` from a response; returns them."""
        stored = []
        for header in headers.get_all("Set-Cookie"):
            cookie = parse_set_cookie(header, url.host, now)
            self.set(cookie)
            stored.append(cookie)
        return stored

    def cookie_header(self, url: URL, now: float) -> Optional[str]:
        """Build the ``Cookie`` header for a request, or ``None``."""
        sendable = [
            cookie
            for cookie in self.cookies.values()
            if cookie.matches(url, now)
        ]
        if not sendable:
            return None
        # Longest path first, per RFC 6265 ordering.
        sendable.sort(key=lambda cookie: (-len(cookie.path), cookie.name))
        return "; ".join(f"{cookie.name}={cookie.value}" for cookie in sendable)

    def get(self, name: str) -> Optional[Cookie]:
        for cookie in self.cookies.values():
            if cookie.name == name:
                return cookie
        return None

    def delete(self, name: str) -> int:
        """Remove every cookie called ``name``; the logout-button attribute
        uses this to clear proxy-held credentials (§3.3)."""
        doomed = [key for key, cookie in self.cookies.items() if cookie.name == name]
        for key in doomed:
            del self.cookies[key]
        return len(doomed)

    def clear(self) -> None:
        self.cookies.clear()

    def expire_stale(self, now: float) -> int:
        doomed = [
            key
            for key, cookie in self.cookies.items()
            if cookie.expires_at is not None and now >= cookie.expires_at
        ]
        for key in doomed:
            del self.cookies[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self.cookies)
