"""In-process HTTP client.

Routes requests to registered origin :class:`Application` objects by host
name, follows redirects, sends/stores cookies through an optional
:class:`CookieJar`, and keeps a transfer ledger (bytes and request counts)
that the device timing models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import FetchError
from repro.net.cookies import CookieJar
from repro.net.messages import Request, Response
from repro.net.server import Application
from repro.net.url import URL


@dataclass
class TransferLedger:
    """Accounting of traffic moved through a client."""

    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    responses_by_status: dict[int, int] = field(default_factory=dict)

    def record(self, request: Request, response: Response) -> None:
        self.requests += 1
        self.bytes_sent += request.wire_size()
        self.bytes_received += response.wire_size()
        self.responses_by_status[response.status] = (
            self.responses_by_status.get(response.status, 0) + 1
        )

    def reset(self) -> None:
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.responses_by_status.clear()


class HttpClient:
    """Client bound to a map of host name → origin application."""

    def __init__(
        self,
        origins: Optional[dict[str, Application]] = None,
        jar: Optional[CookieJar] = None,
        clock=None,
        max_redirects: int = 5,
    ) -> None:
        self.origins: dict[str, Application] = dict(origins or {})
        self.jar = jar
        self.clock = clock
        self.max_redirects = max_redirects
        self.ledger = TransferLedger()

    def register(self, host: str, application: Application) -> None:
        self.origins[host.lower()] = application

    @property
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def send(self, request: Request) -> Response:
        """Dispatch one request (no redirect following)."""
        application = self.origins.get(request.url.host)
        if application is None:
            raise FetchError(f"no origin registered for host {request.url.host!r}")
        if self.jar is not None:
            header = self.jar.cookie_header(request.url, self._now)
            if header is not None and "Cookie" not in request.headers:
                request.headers.set("Cookie", header)
        request.headers.set("Host", request.url.host)
        response = application.handle(request)
        if self.jar is not None:
            self.jar.store_response_cookies(
                response.headers, request.url, self._now
            )
        self.ledger.record(request, response)
        return response

    def request(self, request: Request) -> Response:
        """Dispatch a request, following redirects."""
        response = self.send(request)
        redirects = 0
        while response.is_redirect:
            redirects += 1
            if redirects > self.max_redirects:
                raise FetchError(
                    f"redirect loop fetching {request.url} "
                    f"(>{self.max_redirects} hops)"
                )
            location = response.headers.get("Location") or "/"
            target = request.url.join(location)
            method = request.method
            body = request.body
            if response.status == 303 or (
                response.status in (301, 302) and method == "POST"
            ):
                method = "GET"
                body = b""
            request = Request(method=method, url=target, body=body)
            response = self.send(request)
        return response

    def get(self, url: Union[str, URL], **headers: str) -> Response:
        return self.request(Request.get(url, **headers))

    def post(
        self, url: Union[str, URL], form: Optional[dict[str, str]] = None
    ) -> Response:
        return self.request(Request.post(url, form))
