"""Network link models.

The paper's wall-clock comparisons (Table 1) span 3G, WiFi and wired
desktop links.  A :class:`NetworkLink` converts bytes moved and request
counts into seconds of simulated transfer time:

* each HTTP round trip pays one RTT (connection reuse assumed),
* payload bytes stream at the link bandwidth,
* a device can only hold ``concurrent_connections`` parallel fetches, so a
  page with many subresources pays ceil(n / connections) RTT batches —
  which is what makes 3G page loads dominated by round trips, as the paper
  observes for the 12-script entry page.

Bandwidth figures follow the 2010-2012 era the paper measured: ~1 Mbps
effective 3G downlink with ~350 ms RTT, ~8 Mbps WiFi with ~40 ms RTT, and
a fast campus LAN for the desktop row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkLink:
    """A client-to-server network path.

    ``wakeup_s`` models cellular radio state promotion (idle → DCH), paid
    once at the start of a page load — the reason even tiny transfers over
    3G take seconds.
    """

    name: str
    bandwidth_bytes_per_s: float
    rtt_s: float
    concurrent_connections: int = 4
    wakeup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_s < 0:
            raise ValueError("RTT cannot be negative")
        if self.concurrent_connections < 1:
            raise ValueError("need at least one connection")

    def transfer_time(self, total_bytes: int, requests: int = 1) -> float:
        """Seconds to move ``total_bytes`` across ``requests`` round trips
        (radio wakeup excluded; see :meth:`page_load_time`)."""
        if total_bytes < 0:
            raise ValueError("bytes cannot be negative")
        if requests < 0:
            raise ValueError("requests cannot be negative")
        if requests < 1:
            requests = 1  # zero requests still costs one round trip
        batches = math.ceil(requests / self.concurrent_connections)
        return batches * self.rtt_s + total_bytes / self.bandwidth_bytes_per_s

    def page_load_time(self, total_bytes: int, requests: int = 1) -> float:
        """Transfer time for a fresh page visit, radio wakeup included."""
        return self.wakeup_s + self.transfer_time(total_bytes, requests)

    def time_to_first_byte(self) -> float:
        """Connection setup latency for the first request."""
        return self.wakeup_s + self.rtt_s


# Calibrated link profiles.  The 3G numbers are *effective goodput* on a
# loaded 2012 cellular network (nominal 3G peak rates were never reached
# by handset HTTP traffic; the paper's own 20-second page loads imply
# ~20 KB/s effective).  HSPA models the better-case cellular data the
# paper's iPod-Touch in-text measurement reflects.
LINK_3G = NetworkLink(
    name="3g",
    bandwidth_bytes_per_s=24_000,
    rtt_s=0.35,
    concurrent_connections=4,
    wakeup_s=1.5,
)

LINK_HSPA = NetworkLink(
    name="hspa",
    bandwidth_bytes_per_s=80_000,
    rtt_s=0.25,
    concurrent_connections=4,
    wakeup_s=1.2,
)

LINK_WIFI = NetworkLink(
    name="wifi",
    bandwidth_bytes_per_s=1_000_000,  # ~8 Mbps effective
    rtt_s=0.04,
    concurrent_connections=6,
    wakeup_s=0.1,
)

LINK_LAN = NetworkLink(
    name="lan",
    bandwidth_bytes_per_s=10_000_000,  # fast wired campus network
    rtt_s=0.005,
    concurrent_connections=6,
)

LINK_PROFILES = {
    link.name: link for link in (LINK_3G, LINK_HSPA, LINK_WIFI, LINK_LAN)
}
