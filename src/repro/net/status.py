"""HTTP status codes used by the substrate."""

STATUS_REASONS: dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

REDIRECT_STATUSES = frozenset({301, 302, 303, 307})


def reason(status: int) -> str:
    """Reason phrase for a status code."""
    return STATUS_REASONS.get(status, "Unknown")
