"""One prerender/fastpath cache shared by every worker in the fleet.

m.Site's economics rest on "render once, serve many" (§3.3, §5).  A
cluster of workers each holding a private :class:`PrerenderCache` would
re-render every snapshot once *per worker*; sharing one cache object —
single-flight semantics included — keeps the fleet-wide render count at
one per key no matter which worker fields the cold request.

Two pieces live here:

* :class:`SharedPrerenderCache` — a :class:`PrerenderCache` that
  announces every invalidation (explicit, ``clear``, or TTL expiry) on
  an :class:`InvalidationBus`, so workers holding derived state (the
  per-session adapted-page memo in :class:`MSiteProxy
  <repro.core.proxy.MSiteProxy>`) can drop it fleet-wide.  Events are
  always published *after* the cache lock is released; a subscriber may
  freely call back into the cache or take its own locks.
* :class:`InProcessSharedCache` — the :class:`SharedCacheBackend`
  implementation for a single-process fleet: every ``attach`` returns
  the same cache object.  A network-backed implementation would return
  a per-worker client speaking to the same store; the protocol is what
  the cluster deployment codes against.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.core.cache import CacheEntry, PrerenderCache
from repro.observability.metrics import MetricsRegistry

#: Event kinds carried by the bus.
REFRESH = "refresh"  # a client sent ?refresh=1 somewhere in the fleet
INVALIDATE = "invalidate"  # an explicit single-key invalidation
EXPIRE = "expire"  # a TTL lapsed and the entry was retired
CLEAR = "clear"  # the whole cache was dropped

#: Kinds that should make workers forget derived (memoized) state.
#: TTL expiry deliberately does not: a single proxy keeps serving its
#: session memo past snapshot expiry, and the cluster must byte-match
#: single-proxy output.
DERIVED_STATE_KINDS = frozenset({REFRESH, INVALIDATE, CLEAR})


@dataclass(frozen=True)
class InvalidationEvent:
    """One fleet-wide cache invalidation announcement.

    ``replayed`` marks events re-delivered from the multi-region CDC
    :class:`InvalidationLog <repro.regions.cdclog.InvalidationLog>`
    during catch-up.  The regional pump appends only original events to
    the log and ignores replayed ones, so a heal never re-appends (and
    re-replays) its own catch-up traffic.
    """

    kind: str
    key: Optional[str] = None  # None = the whole cache (``clear``)
    replayed: bool = False


class InvalidationBus:
    """Synchronous fan-out of :class:`InvalidationEvent` to subscribers.

    Delivery is in-line with :meth:`publish` (no background thread — the
    in-process fleet shares an address space, so propagation is just a
    call).  A subscriber exception is counted and swallowed: one broken
    worker must not stop the rest of the fleet from hearing about an
    invalidation.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[InvalidationEvent], None]] = []
        self._registry = metrics or MetricsRegistry()
        self._errors = self._registry.counter(
            "msite_cluster_bus_errors_total",
            "Invalidation-bus subscriber callbacks that raised.",
        )

    def subscribe(
        self, callback: Callable[[InvalidationEvent], None]
    ) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(
        self, callback: Callable[[InvalidationEvent], None]
    ) -> None:
        """Remove a subscriber (a drained worker); absent is a no-op."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, event: InvalidationEvent) -> None:
        self._registry.counter(
            "msite_cluster_invalidations_total",
            "Cache invalidation events published on the fleet bus.",
            labels={"kind": event.kind},
        ).inc()
        with self._lock:
            subscribers = tuple(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                self._errors.inc()

    def published(self, kind: str) -> int:
        counter = self._registry.get(
            "msite_cluster_invalidations_total", labels={"kind": kind}
        )
        return int(counter.value) if counter is not None else 0


class SharedPrerenderCache(PrerenderCache):
    """A :class:`PrerenderCache` that announces invalidations on a bus.

    TTL expiries are detected inside lock-holding paths (:meth:`get`,
    :meth:`load_stale` via ``_retire``), so they are queued under the
    lock and flushed onto the bus once it is released — subscribers
    never run with the cache lock held.
    """

    def __init__(self, bus: InvalidationBus, **kwargs) -> None:
        self._bus = bus
        # _retire runs under the cache lock; queue events for a
        # post-release flush instead of publishing in place.
        self._pending_events: deque[InvalidationEvent] = deque()
        super().__init__(**kwargs)

    @property
    def bus(self) -> InvalidationBus:
        return self._bus

    # -- expiry propagation ---------------------------------------------

    def _retire(self, key: str) -> None:
        had_entry = key in self._entries
        super()._retire(key)
        if had_entry:
            self._pending_events.append(InvalidationEvent(EXPIRE, key))

    def _flush_events(self) -> None:
        while True:
            try:
                event = self._pending_events.popleft()
            except IndexError:
                return
            self._bus.publish(event)

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = super().get(key)
        self._flush_events()
        return entry

    def load_stale(
        self, key: str, max_stale_s: Optional[float] = None
    ) -> Optional[CacheEntry]:
        entry = super().load_stale(key, max_stale_s=max_stale_s)
        self._flush_events()
        return entry

    # -- explicit invalidation ------------------------------------------

    def invalidate(self, key: str) -> bool:
        removed = super().invalidate(key)
        if removed:
            self._bus.publish(InvalidationEvent(INVALIDATE, key))
        return removed

    def clear(self) -> None:
        super().clear()
        self._bus.publish(InvalidationEvent(CLEAR))


@runtime_checkable
class SharedCacheBackend(Protocol):
    """What the cluster deployment needs from a shared cache.

    ``attach`` hands a worker its view of the fleet cache — for the
    in-process backend that is literally the one shared object; a remote
    backend would return a client bound to the same store.  Single-flight
    semantics must hold across every attached view: a load started
    through worker A's view is joined, not repeated, through worker B's.
    """

    @property
    def bus(self) -> InvalidationBus: ...

    def attach(self, worker_id: str) -> PrerenderCache: ...

    def invalidate(self, key: str) -> bool: ...

    def clear(self) -> None: ...


@dataclass
class InProcessSharedCache:
    """:class:`SharedCacheBackend` for a one-process fleet.

    Owns the bus and one :class:`SharedPrerenderCache`; every worker
    attaches to the same object, so single-flight collapsing and the
    byte budget are fleet-global for free.
    """

    clock: Optional[object] = None
    max_bytes: int = 64 * 1024 * 1024
    metrics: Optional[MetricsRegistry] = None
    _attached: list[str] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._bus = InvalidationBus(metrics=self.metrics)
        self._cache = SharedPrerenderCache(
            self._bus,
            clock=self.clock,
            max_bytes=self.max_bytes,
            metrics=self.metrics,
        )

    @property
    def bus(self) -> InvalidationBus:
        return self._bus

    @property
    def cache(self) -> SharedPrerenderCache:
        return self._cache

    @property
    def attached_workers(self) -> tuple[str, ...]:
        return tuple(self._attached)

    def attach(self, worker_id: str) -> PrerenderCache:
        self._attached.append(worker_id)
        return self._cache

    def invalidate(self, key: str) -> bool:
        return self._cache.invalidate(key)

    def clear(self) -> None:
        self._cache.clear()
