"""Fleet-wide metric rollups that don't double-count shared instruments.

Per-worker registries are not disjoint: the shared cache's counters are
``bind``-ed into *every* worker registry (``ProxyServices`` wires
``cache.bind_metrics(registry)`` unconditionally), and the same happens
to any other instrument living on a shared object.  A naive
``merge_from`` over N worker registries therefore reports N× the true
value for every shared counter — the stampede-suppression numbers, for
one, looked twice as good as they were on a two-worker fleet.

:func:`merge_unique` folds each *instrument object* exactly once, by
identity: the first registry that carries a given Counter/Histogram
object contributes its value, every later appearance of the same object
is skipped.  Distinct objects with the same name+labels (genuinely
per-worker instruments merged into one fleet series) still sum, exactly
like ``merge_from``.

``merge`` semantics are cumulative, so callers must roll up into a
**fresh** registry per scrape (see :func:`fleet_rollup`) rather than
merging into a long-lived one.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def merge_unique(
    target: MetricsRegistry,
    sources: Iterable[MetricsRegistry],
    seen: Optional[set[int]] = None,
) -> MetricsRegistry:
    """Fold ``sources`` into ``target``, each instrument object once.

    ``seen`` carries instrument ids across calls for callers that roll
    up in several passes; by default it is scoped to this call.
    """
    if seen is None:
        seen = set()
    for source in sources:
        for family in source.collect():
            for metric in family.sorted_children():
                if id(metric) in seen:
                    continue
                seen.add(id(metric))
                labels = dict(metric.labels)
                if isinstance(metric, Counter):
                    target.counter(
                        family.name, family.help_text, labels
                    ).inc(metric.value)
                elif isinstance(metric, Gauge):
                    target.gauge(
                        family.name, family.help_text, labels
                    ).track_max(metric.value)
                elif isinstance(metric, Histogram):
                    target.histogram(
                        family.name, family.help_text, labels,
                        buckets=metric.buckets,
                    ).merge(metric)
    return target


def fleet_rollup(
    registries: Iterable[MetricsRegistry],
) -> MetricsRegistry:
    """A fresh point-in-time rollup of the fleet's registries.

    Build a new one per ``/metrics`` scrape; merging is cumulative, so
    reusing a rollup registry would double every series on the second
    scrape just as surely as the identity bug doubled shared ones.
    """
    return merge_unique(MetricsRegistry(), registries)
